"""Scaling ESSE out to the Grid and the Cloud (paper Secs 5.3-5.4).

Uses the calibrated infrastructure simulator to answer the paper's
operational questions for a 600-member ESSE campaign:

- how long does it take on the home cluster (SGE vs Condor, NFS vs
  prestaged inputs)?
- what do the TeraGrid sites of Table 1 contribute, given queue waits?
- what does an EC2 virtual cluster cost, on-demand vs reserved, and how do
  the instance types of Table 2 compare per dollar?
"""

import numpy as np

from repro.sched import (
    EC2_INSTANCE_TYPES,
    EC2CostModel,
    EnsembleCampaign,
    TERAGRID_SITES,
    ec2_virtual_cluster,
    mseas_cluster,
)
from repro.sched.iomodel import IOConfiguration, IOMode
from repro.sched.schedulers import CondorPolicy, SGEPolicy

N_MEMBERS = 600


def main() -> None:
    print(f"=== {N_MEMBERS}-member ESSE campaign on the home cluster ===")
    for label, policy, mode in [
        ("SGE,    prestaged", SGEPolicy(), IOMode.PRESTAGED),
        ("SGE,    NFS input", SGEPolicy(), IOMode.NFS),
        ("Condor, prestaged", CondorPolicy(), IOMode.PRESTAGED),
        ("Condor, NFS input", CondorPolicy(), IOMode.NFS),
    ]:
        campaign = EnsembleCampaign(
            mseas_cluster(), policy=policy, io_config=IOConfiguration(mode=mode)
        )
        stats = campaign.run(campaign.ensemble_specs(N_MEMBERS))
        print(f"  {label}: {stats.makespan_minutes:6.1f} min "
              f"(pert CPU util {100 * stats.cpu_utilization_by_kind['pert']:3.0f}%)")

    print("\n=== TeraGrid augmentation (Table 1 sites) ===")
    rng = np.random.default_rng(0)
    for name, site in TERAGRID_SITES.items():
        if name == "local":
            continue
        campaign = EnsembleCampaign(site.cluster())
        stats = campaign.run(campaign.ensemble_specs(100))
        wait = site.sample_queue_wait(rng)
        print(f"  {name:7s} ({site.processor}): 100 members in "
              f"{stats.makespan_minutes:6.1f} min after a "
              f"{wait / 60:.0f} min queue wait "
              f"(pemodel {site.pemodel_seconds():.0f} s/task)")

    print("\n=== EC2 virtual clusters (Table 2 types, 20 instances) ===")
    cost_model = EC2CostModel()
    for name, itype in EC2_INSTANCE_TYPES.items():
        cluster = ec2_virtual_cluster(name, 20)
        campaign = EnsembleCampaign(
            cluster,
            io_config=IOConfiguration(mode=IOMode.PRESTAGED),
            task_times={"pert": itype.pert_seconds,
                        "pemodel": itype.pemodel_seconds,
                        "acoustic": 180.0},
        )
        # scale member count to what 20 instances finish in a few hours
        n = 4 * cluster.total_cores
        stats = campaign.run(campaign.ensemble_specs(n))
        hours = stats.makespan_seconds / 3600.0
        cost = cost_model.campaign_cost(
            itype, 20, hours, input_gb=1.5, output_gb=n * 11.0 / 1000.0
        )
        print(f"  {name:10s} x20 ({cluster.total_cores:3d} cores): {n:4d} members "
              f"in {60 * hours:6.1f} min -> ${cost:7.2f} "
              f"(${cost / n:.3f}/member)")

    print("\n=== the paper's cost example (Sec 5.4.2) ===")
    print(f"  on demand: ${cost_model.paper_example():.2f}  (paper: $33.95)")
    print(f"  reserved:  ${cost_model.paper_example(reserved=True):.2f}  "
          f"(CPU cost cut by >3x)")


if __name__ == "__main__":
    main()
