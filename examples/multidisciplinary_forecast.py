"""A multidisciplinary forecast: physics, biology, acoustics, bulletin.

The paper's title promises *multidisciplinary* ocean science; this example
runs the full interdisciplinary chain of one forecast cycle:

1. ESSE physical uncertainty forecast (adaptive ensemble),
2. one-way-coupled phytoplankton bloom along the central forecast,
3. acoustic transmission loss through the forecast ocean,
4. ensemble verification against a twin truth,
5. the distributable forecast bulletin with candidate selection.
"""

import numpy as np

from repro.acoustics import extract_section, transmission_loss
from repro.core import (
    ESSEConfig,
    ESSEDriver,
    PerturbationGenerator,
    synthetic_initial_subspace,
    verify_ensemble,
)
from repro.obs.network import aosn2_network
from repro.ocean import PEModel, StochasticForcing
from repro.ocean.bathymetry import monterey_bathymetry, monterey_grid
from repro.ocean.biology import PhytoplanktonModel
from repro.realtime import generate_product


def main() -> None:
    grid = monterey_grid(nx=24, ny=20, nz=4)
    bathy = monterey_bathymetry(nx=24, ny=20)
    model = PEModel(grid=grid)
    layout = model.layout
    background = model.run(model.rest_state(), 3 * 86400.0)
    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=12, seed=1
    )

    # twin truth for verification
    perturber = PerturbationGenerator(layout, subspace, root_seed=31337)
    truth_model = PEModel(
        grid=grid, noise=StochasticForcing(grid, rng=np.random.default_rng(99))
    )
    duration = 86400.0
    truth = truth_model.run(
        model.from_vector(
            perturber.member_state(model.to_vector(background), 0),
            time=background.time,
        ),
        duration,
    )

    # 1. physical uncertainty forecast ------------------------------------
    driver = ESSEDriver(
        model,
        ESSEConfig(initial_ensemble_size=8, max_ensemble_size=24,
                   convergence_tolerance=0.93, max_subspace_rank=12),
        root_seed=42,
    )
    forecast = driver.forecast(background, subspace, duration=duration)
    print(f"physics: ensemble N={forecast.ensemble_size}, "
          f"converged={forecast.converged}")

    # 2. biology along the central forecast ---------------------------------
    bio = PhytoplanktonModel(model)
    phyto, _ = bio.run_along(background, duration)
    sfc = bio.surface_chlorophyll(phyto)[grid.mask]
    print(f"biology: surface chlorophyll {sfc.min():.2f}-{sfc.max():.2f} "
          f"mg/m^3 (mean {sfc.mean():.2f}) after {duration / 3600:.0f} h")

    # 3. acoustics through the forecast ocean --------------------------------
    lx, ly = grid.nx * grid.dx, grid.ny * grid.dy
    section = extract_section(
        grid, forecast.central, (0.65 * lx, 0.55 * ly), (0.1 * lx, 0.55 * ly),
        n_ranges=14, dz=4.0, max_depth=300.0, bathymetry=bathy.depth,
    )
    tl = transmission_loss(section, 200.0, source_depth=30.0)
    print(f"acoustics: TL over the {section.length / 1000:.0f} km section "
          f"spans {tl.tl.min():.0f}-{tl.tl.max():.0f} dB "
          f"(waveguide depth {section.water_depth.min():.0f}-"
          f"{section.water_depth.max():.0f} m)")

    # 4. ensemble verification vs the twin truth ------------------------------
    sst_members = np.stack(
        [layout.view(m, "temp")[0][grid.mask] for m in forecast.member_forecasts]
    )
    sst_truth = truth.temp[0][grid.mask]
    report = verify_ensemble(sst_members, sst_truth)
    print(f"verification (SST): {report.render()}")

    # 5. the bulletin ----------------------------------------------------------
    network = aosn2_network(grid, layout, rng=np.random.default_rng(7))
    batch = network.observe(truth)
    product = generate_product(model, forecast, batch.operator, cycle_index=1)
    print("\n" + product.render())


if __name__ == "__main__":
    main()
