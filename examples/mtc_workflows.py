"""Serial vs many-task ESSE workflows (paper Figs 3-4), side by side.

Runs the same adaptive ESSE ensemble through the paper's two
implementations and shows what the MTC transformation buys:

- the serial shepherd's phase breakdown (its four bottlenecks),
- the parallel pipeline's event timeline: members completing out of order,
  the continuously-running differ, decoupled SVD checks via the three-file
  protocol, and cancellation of superfluous members on convergence.
"""

import tempfile

from repro.core import (
    ESSEConfig,
    PerturbationGenerator,
    similarity_coefficient,
    synthetic_initial_subspace,
)
from repro.core.ensemble import EnsembleRunner
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.workflow import ParallelESSEWorkflow, SerialESSEWorkflow


def main() -> None:
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        model.layout, grid.shape2d, grid.nz, rank=8, seed=0
    )
    perturber = PerturbationGenerator(model.layout, subspace, root_seed=5)
    runner = EnsembleRunner(model, perturber, duration=12 * 400.0, root_seed=5)
    config = ESSEConfig(
        initial_ensemble_size=6,
        max_ensemble_size=24,
        convergence_tolerance=0.93,
        max_subspace_rank=8,
    )

    with tempfile.TemporaryDirectory() as workdir:
        print("=== serial shepherd (Fig 3) ===")
        serial = SerialESSEWorkflow(runner, config, workdir + "/serial").run(
            background
        )
        print(f"ensemble {serial.ensemble_size}, converged {serial.converged}, "
              f"wall {serial.timings.total:.2f} s")
        for phase, fraction in serial.timings.phase_fractions().items():
            print(f"  {phase:14s} {100 * fraction:5.1f}% of shepherd time")

        print("\n=== many-task pipeline (Fig 4) ===")
        parallel = ParallelESSEWorkflow(
            runner, config, workdir + "/parallel", n_workers=4
        ).run(background)
        print(f"ensemble {parallel.ensemble_size}, converged {parallel.converged}, "
              f"wall {parallel.wall_seconds:.2f} s")
        print(f"completed {parallel.n_completed}, cancelled "
              f"{parallel.n_cancelled}, failed {parallel.n_failed}")
        print(f"diff/forecast overlap: {100 * parallel.overlap_fraction():.0f}% "
              "(0% by construction in the serial case)")

        print("\nevent timeline (first 20 events):")
        for event in parallel.events[:20]:
            print(f"  t={event.time:6.2f}s  {event.kind:12s} {event.detail}")

        rho = similarity_coefficient(serial.subspace, parallel.subspace)
        print(f"\nsubspace agreement serial vs parallel: rho = {rho:.4f}")
        speedup = serial.timings.total / parallel.wall_seconds
        print(f"wall-clock speedup on this host: {speedup:.2f}x "
              f"(thread pool of 4 on Python-level tasks; the paper's gains "
              f"come from hundreds of cluster cores)")


if __name__ == "__main__":
    main()
