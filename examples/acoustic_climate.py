"""Coupled ocean-acoustics uncertainty (paper Secs 2.2 and 5.2.1).

Propagates ESSE ocean uncertainty into acoustic uncertainty: every
ensemble realization's (T, S) section is turned into a sound-speed section
and a normal-mode transmission-loss field, the coupled
physical-acoustical covariance is non-dimensionalized and factorized into
joint uncertainty modes, and a mini "acoustic climate" -- the paper's 6000+
independent short tasks, scaled down -- is executed over sources,
frequencies and slices.
"""

import time

import numpy as np

from repro.acoustics import (
    AcousticClimate,
    acoustic_climate_tasks,
    coupled_uncertainty_modes,
    extract_section,
    transmission_loss,
)
from repro.core import ESSEConfig, ESSEDriver, synthetic_initial_subspace
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid


def main() -> None:
    grid = monterey_grid(nx=24, ny=20, nz=5)
    model = PEModel(grid=grid)
    layout = model.layout
    background = model.run(model.rest_state(), 3 * 86400.0)
    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=12, seed=11
    )
    driver = ESSEDriver(
        model,
        ESSEConfig(initial_ensemble_size=10, max_ensemble_size=20,
                   convergence_tolerance=0.9, max_subspace_rank=12),
        root_seed=7,
    )
    print("running the ocean uncertainty ensemble...")
    forecast = driver.forecast(background, subspace, duration=0.5 * 86400.0)
    print(f"  {forecast.ensemble_size} ocean realizations")

    # -- TL ensemble along one section ---------------------------------
    lx, ly = grid.nx * grid.dx, grid.ny * grid.dy
    start, end = (0.55 * lx, 0.5 * ly), (0.1 * lx, 0.5 * ly)
    frequency, source_depth = 200.0, 30.0
    print(f"\nTL ensemble along one section ({frequency:.0f} Hz source at "
          f"{source_depth:.0f} m):")
    t0 = time.perf_counter()
    temp_sections, tl_fields = [], []
    for member in forecast.member_forecasts:
        state = model.from_vector(member)
        section = extract_section(grid, state, start, end, n_ranges=14,
                                  dz=4.0, max_depth=200.0)
        field = transmission_loss(section, frequency, source_depth=source_depth)
        temp_sections.append(section.temperature)
        tl_fields.append(field)
    print(f"  {len(tl_fields)} TL realizations in "
          f"{time.perf_counter() - t0:.1f} s")
    tl_stack = np.stack([f.tl for f in tl_fields])
    tl_sigma = tl_stack.std(axis=0, ddof=1)
    print(f"  TL std-dev: median {np.median(tl_sigma):.2f} dB, "
          f"max {tl_sigma.max():.2f} dB")

    # -- coupled physical-acoustical modes ---------------------------------
    coupled = coupled_uncertainty_modes(np.stack(temp_sections), tl_fields)
    frac = coupled.coupling_fraction()
    print(f"\ncoupled physical-acoustical covariance: rank {coupled.n_modes}")
    print(f"  dominant mode explains "
          f"{100 * coupled.variances[0] / coupled.variances.sum():.0f}% of joint "
          f"variance; acoustic share of mode 1: {100 * frac[0]:.0f}%")
    print(f"  mean T-TL cross-covariance sign: "
          f"{'negative (warm -> quieter)' if coupled.cross_covariance().mean() < 0 else 'positive'}")

    # -- acoustic climate: many independent short tasks ----------------------
    central = forecast.central
    tasks = acoustic_climate_tasks(
        grid, n_slices=6, frequencies=(100.0, 200.0), source_depths=(15.0, 60.0)
    )
    print(f"\nacoustic climate: {len(tasks)} independent tasks "
          f"(the paper ran 6000+ of these after each ESSE forecast)")
    t0 = time.perf_counter()
    climate = AcousticClimate(grid, tasks).run(
        central, n_ranges=12, max_depth=200.0
    )
    stats = climate.tl_statistics()
    print(f"  completed {climate.completed}/{len(tasks)} in "
          f"{time.perf_counter() - t0:.1f} s; "
          f"TL mean {stats['mean']:.1f} dB, spread {stats['std']:.1f} dB")


if __name__ == "__main__":
    main()
