"""Quickstart: one ESSE forecast/assimilation cycle in ~30 seconds.

Runs the full Fig 2 pipeline on a coarse synthetic Monterey Bay domain:

1. spin up a background ocean state,
2. build an initial error subspace and a twin-experiment "truth",
3. run an adaptive-size stochastic ensemble until the error subspace
   converges,
4. assimilate an AOSN-II-like observation batch,
5. report the uncertainty forecast and the analysis skill.
"""

import numpy as np

from repro.core import (
    ESSEConfig,
    ESSEDriver,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.obs.network import aosn2_network
from repro.ocean import PEModel, StochasticForcing
from repro.ocean.bathymetry import monterey_grid


def main() -> None:
    # 1. model + background state --------------------------------------
    grid = monterey_grid(nx=20, ny=16, nz=3)
    model = PEModel(grid=grid)
    layout = model.layout
    print(f"domain: {grid.ny}x{grid.nx}x{grid.nz}, state dim {layout.size}")
    background = model.run(model.rest_state(), 2 * 86400.0)

    # 2. initial uncertainty + twin truth --------------------------------
    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=12, seed=1
    )
    perturber = PerturbationGenerator(layout, subspace, root_seed=31337)
    truth0 = model.from_vector(
        perturber.member_state(model.to_vector(background), 0),
        time=background.time,
    )
    truth_model = PEModel(
        grid=grid, noise=StochasticForcing(grid, rng=np.random.default_rng(999))
    )
    duration = 0.5 * 86400.0
    truth = truth_model.run(truth0, duration)

    # 3. adaptive ensemble uncertainty forecast ----------------------------
    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=8,
            max_ensemble_size=32,
            convergence_tolerance=0.95,
            max_subspace_rank=12,
        ),
        root_seed=42,
    )
    forecast = driver.forecast(background, subspace, duration=duration)
    print(
        f"ensemble: N={forecast.ensemble_size}, converged={forecast.converged}, "
        f"failures={forecast.failure_count}"
    )
    for n, rho in forecast.convergence_history:
        print(f"  similarity rho at N={n:3d}: {rho:.4f}")

    # 4. assimilate one observation batch -----------------------------------
    network = aosn2_network(grid, layout, rng=np.random.default_rng(7))
    batch = network.observe(truth)
    print(f"observations: {batch.size} ({batch.operator.by_instrument()})")
    analysis = driver.assimilate(forecast, batch.operator)

    # 5. report ---------------------------------------------------------------
    x_truth = model.to_vector(truth)
    e_fc = np.linalg.norm(layout.normalize(model.to_vector(forecast.central) - x_truth))
    e_an = np.linalg.norm(layout.normalize(analysis.mean - x_truth))
    print(f"innovation RMS {analysis.innovation_rms:.4f} -> analysis RMS "
          f"{analysis.analysis_rms:.4f}")
    print(f"true state error {e_fc:.2f} -> {e_an:.2f} "
          f"({100 * (1 - e_an / e_fc):.0f}% reduction)")
    var = forecast.subspace.variance_field() * np.asarray(layout.scales) ** 2
    sst_sigma = np.sqrt(layout.view(var, "temp")[0])
    print(f"forecast SST uncertainty: {sst_sigma[grid.mask].min():.3f} - "
          f"{sst_sigma[grid.mask].max():.3f} degC over the domain")


if __name__ == "__main__":
    main()
