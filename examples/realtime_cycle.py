"""Real-time sequential assimilation over several observation periods.

The Fig 1 timeline in action: observations arrive in batches T_0, T_1, ...;
for each prediction the forecaster runs an adaptive ESSE ensemble forward,
assimilates the new batch and issues the next analysis -- tracking how the
true state error evolves across cycles.
"""

import numpy as np

from repro.core import (
    ESSEConfig,
    ESSEDriver,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.obs.network import aosn2_network
from repro.ocean import PEModel, StochasticForcing
from repro.ocean.bathymetry import monterey_grid
from repro.realtime import ExperimentTimeline, RealTimeForecastCycle


def main() -> None:
    grid = monterey_grid(nx=18, ny=16, nz=3)
    model = PEModel(grid=grid)
    layout = model.layout
    background = model.run(model.rest_state(), 2 * 86400.0)

    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=10, seed=2
    )
    perturber = PerturbationGenerator(layout, subspace, root_seed=777)
    truth0 = model.from_vector(
        perturber.member_state(model.to_vector(background), 0),
        time=background.time,
    )
    truth_model = PEModel(
        grid=grid, noise=StochasticForcing(grid, rng=np.random.default_rng(55))
    )

    timeline = ExperimentTimeline(
        t0=background.time, period_length=0.5 * 86400.0, n_periods=4
    )
    print("observation periods (ocean time, hours):")
    for period in timeline.periods():
        print(f"  T_{period.index}: {period.start / 3600:6.1f} -> "
              f"{period.end / 3600:6.1f}")
    window = timeline.simulation_window(k=timeline.n_periods - 1)
    print(f"final simulation assimilates {len(window.assimilation_periods)} "
          f"batches, nowcast at {window.nowcast_time / 3600:.1f} h, forecast to "
          f"{window.forecast_end / 3600:.1f} h")

    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=8,
            max_ensemble_size=16,
            convergence_tolerance=0.9,
            max_subspace_rank=10,
        ),
        root_seed=4,
    )
    network = aosn2_network(grid, layout, rng=np.random.default_rng(9))
    cycle = RealTimeForecastCycle(driver, truth_model, network, timeline)

    print("\nrunning the forecast/assimilation cycles...")
    records, _, final_subspace = cycle.run(background, truth0, subspace)
    print(f"{'k':>2s} {'N':>4s} {'conv':>5s} {'innov RMS':>10s} {'anal RMS':>9s} "
          f"{'fc err':>7s} {'an err':>7s} {'gain':>6s}")
    for r in records:
        print(f"{r.period_index:2d} {r.ensemble_size:4d} {str(r.converged):>5s} "
              f"{r.innovation_rms:10.4f} {r.analysis_rms:9.4f} "
              f"{r.forecast_error:7.2f} {r.analysis_error:7.2f} "
              f"{100 * r.error_reduction:5.0f}%")
    print(f"\nfinal posterior subspace: rank {final_subspace.rank}, total "
          f"variance {final_subspace.total_variance:.2f}")


if __name__ == "__main__":
    main()
