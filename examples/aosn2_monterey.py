"""AOSN-II Monterey Bay reanalysis (paper Sec 6, Figs 5-6), scaled down.

Repeats the structure of the paper's exercise: an error nowcast is used to
perturb the ocean fields, an ensemble of COAMPS-like-forced stochastic
simulations predicts the uncertainty two days ahead, and the ensemble
standard deviations of sea-surface temperature and 30 m temperature are
mapped -- the quantities shown in the paper's Figs 5 and 6.

Writes ``aosn2_uncertainty.npz`` with both fields and prints coarse ASCII
maps plus summary statistics.
"""

import numpy as np

from repro.core import ESSEConfig, ESSEDriver, synthetic_initial_subspace
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.ocean.diagnostics import ensemble_std


def ascii_map(field: np.ndarray, mask: np.ndarray, levels: str = " .:-=+*#%@") -> str:
    """Render a 2-D field as coarse ASCII art (land = blank)."""
    wet = field[mask]
    lo, hi = wet.min(), wet.max()
    span = hi - lo if hi > lo else 1.0
    rows = []
    for j in range(field.shape[0] - 1, -1, -1):  # north on top
        row = ""
        for i in range(field.shape[1]):
            if not mask[j, i]:
                row += " "
            else:
                q = int((field[j, i] - lo) / span * (len(levels) - 1))
                row += levels[q]
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    grid = monterey_grid(nx=30, ny=26, nz=6)
    model = PEModel(grid=grid)
    layout = model.layout
    print(f"AOSN-II-like domain: {grid.ny}x{grid.nx}x{grid.nz} "
          f"({grid.n_ocean} wet columns), state dim {layout.size}")

    # "The ESSE forecast ... was initialized from an error nowcast": here a
    # synthetic dominant-mode subspace plays that role.
    print("spinning up the background state (5 days)...")
    background = model.run(model.rest_state(), 5 * 86400.0)
    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=24, seed=3
    )

    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=12,
            max_ensemble_size=48,
            convergence_tolerance=0.95,
            max_subspace_rank=24,
        ),
        root_seed=2003,  # August-September 2003
    )
    print("running the uncertainty forecast (2 days ahead)...")
    forecast = driver.forecast(background, subspace, duration=2 * 86400.0)
    print(f"ensemble of {forecast.ensemble_size} members "
          f"(converged: {forecast.converged}); subspace rank {forecast.subspace.rank}")

    # ensemble standard deviations, as in Figs 5-6
    members = forecast.member_forecasts
    sst_stack = np.stack(
        [layout.view(m, "temp")[0] for m in members]
    )
    level30 = grid.level_index(30.0)
    t30_stack = np.stack(
        [layout.view(m, "temp")[level30] for m in members]
    )
    sst_sigma = grid.apply_mask(ensemble_std(sst_stack))
    t30_sigma = grid.apply_mask(ensemble_std(t30_stack))

    for name, sigma in (("SST", sst_sigma), ("30 m temperature", t30_sigma)):
        wet = sigma[grid.mask]
        print(f"\nESSE uncertainty forecast for {name} (degC):")
        print(f"  std-dev min {wet.min():.3f}, median {np.median(wet):.3f}, "
              f"max {wet.max():.3f}")
        print(ascii_map(sigma, grid.mask))

    np.savez(
        "aosn2_uncertainty.npz",
        sst_sigma=sst_sigma,
        t30_sigma=t30_sigma,
        mask=grid.mask,
    )
    print("\nwrote aosn2_uncertainty.npz")


if __name__ == "__main__":
    main()
