"""Adaptive sampling: where should the gliders go next?

During AOSN-II the ESSE system "provide[d] suggestions for adaptive
sampling" in real time (paper Sec 6; Sec 7 names the intelligent
coordination of sampling networks as a prime MTC application).  This
example closes that loop in a twin experiment: the forecast error subspace
suggests the most uncertain locations, a virtual asset samples them, and
the resulting analysis is compared against spending the same observation
budget on a fixed uniform grid.
"""

import numpy as np

from repro.core import (
    ESSEAnalysis,
    ESSEConfig,
    ESSEDriver,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.obs import AdaptiveSampler, ObservationNetwork, SamplingSuggestion
from repro.obs.adaptive import suggest_sampling_locations
from repro.ocean import PEModel, StochasticForcing
from repro.ocean.bathymetry import monterey_grid


def main() -> None:
    grid = monterey_grid(nx=20, ny=16, nz=3)
    model = PEModel(grid=grid)
    layout = model.layout
    background = model.run(model.rest_state(), 2 * 86400.0)
    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=12, seed=1
    )
    perturber = PerturbationGenerator(layout, subspace, root_seed=31337)
    truth_model = PEModel(
        grid=grid, noise=StochasticForcing(grid, rng=np.random.default_rng(999))
    )
    truth = truth_model.run(
        model.from_vector(
            perturber.member_state(model.to_vector(background), 0),
            time=background.time,
        ),
        0.5 * 86400.0,
    )

    driver = ESSEDriver(
        model,
        ESSEConfig(initial_ensemble_size=8, max_ensemble_size=32,
                   convergence_tolerance=0.95, max_subspace_rank=12),
        root_seed=42,
    )
    forecast = driver.forecast(background, subspace, duration=0.5 * 86400.0)
    print(f"forecast ensemble N={forecast.ensemble_size}")

    budget = 16
    picks = suggest_sampling_locations(
        forecast.subspace, layout, grid, field="temp", level=0, count=budget
    )
    print(f"\nESSE suggests sampling SST at (most informative first):")
    for p in picks:
        print(f"  (j={p.j:2d}, i={p.i:2d})  predicted sigma "
              f"{np.sqrt(p.predicted_variance):.3f} degC")

    # same budget, uniform placement for comparison
    wet_j, wet_i = np.nonzero(grid.mask)
    step = max(len(wet_j) // budget, 1)
    uniform = [
        SamplingSuggestion("temp", 0, int(wet_j[k]), int(wet_i[k]), 0.0)
        for k in range(0, budget * step, step)
    ][:budget]

    analysis = ESSEAnalysis(layout)
    x_fc = model.to_vector(forecast.central)
    x_truth = model.to_vector(truth)
    results = {}
    for label, suggestions in (("adaptive", picks), ("uniform", uniform)):
        net = ObservationNetwork(
            grid, layout, [AdaptiveSampler(list(suggestions))],
            rng=np.random.default_rng(7),
        )
        batch = net.observe(truth)
        post = analysis.update(x_fc, forecast.subspace, batch.operator)
        err = np.linalg.norm(layout.normalize(post.mean - x_truth))
        results[label] = (post.subspace.total_variance, err)

    e0 = np.linalg.norm(layout.normalize(x_fc - x_truth))
    print(f"\nprior:    state error {e0:6.2f}, subspace variance "
          f"{forecast.subspace.total_variance:8.2f}")
    for label, (variance, err) in results.items():
        print(f"{label:9s} state error {err:6.2f}, posterior variance "
              f"{variance:8.2f}")
    gain = (results['uniform'][1] - results['adaptive'][1])
    print(f"\nadaptive placement of {budget} SST samples beats uniform by "
          f"{gain:.2f} error units "
          f"({100 * gain / results['uniform'][1]:.0f}%)")


if __name__ == "__main__":
    main()
