#!/usr/bin/env python
"""Summarise a JSONL telemetry run log as per-kind latency tables.

Usage::

    PYTHONPATH=src python tools/trace_summary.py RUN.jsonl [--events] [--top N]

Reads a run log written by :func:`repro.telemetry.export.write_jsonl`
(e.g. by a benchmark or a task-pool run) and prints one row per span
name: count, total seconds, mean, p50/p90/p95/p99 and max -- the quick
answer to the paper's Sec 5.3.1 monitoring complaint without opening a
trace viewer.  ``--events`` appends a per-kind event count table.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict


def percentile(values: list[float], q: float) -> float:
    """Exact linear-interpolation percentile of a non-empty list."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width table rendering (matches the bench table style)."""
    widths = [
        max(len(headers[c]), max((len(r[c]) for r in rows), default=0))
        for c in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def span_rows(spans) -> list[list[str]]:
    """Aggregate spans by name into latency-table rows (by total desc)."""
    by_name: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        by_name[span.name].append(span.duration)
    rows = []
    for name, durations in sorted(
        by_name.items(), key=lambda item: -sum(item[1])
    ):
        rows.append(
            [
                name,
                str(len(durations)),
                f"{sum(durations):.3f}",
                f"{sum(durations) / len(durations):.4f}",
                f"{percentile(durations, 50):.4f}",
                f"{percentile(durations, 90):.4f}",
                f"{percentile(durations, 95):.4f}",
                f"{percentile(durations, 99):.4f}",
                f"{max(durations):.4f}",
            ]
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("logfile", help="JSONL run log (write_jsonl output)")
    parser.add_argument(
        "--events", action="store_true", help="also print per-kind event counts"
    )
    parser.add_argument(
        "--top", type=int, default=None, help="only the top N span kinds by total"
    )
    args = parser.parse_args(argv)

    from repro.telemetry.export import read_jsonl

    log = read_jsonl(args.logfile)
    if not log.spans and not log.events:
        print(f"{args.logfile}: no spans or events found", file=sys.stderr)
        return 1

    if log.spans:
        rows = span_rows(log.spans)
        if args.top is not None:
            rows = rows[: args.top]
        print(f"Span latency summary ({len(log.spans)} spans)")
        print(
            format_table(
                ["kind", "count", "total_s", "mean_s", "p50_s", "p90_s",
                 "p95_s", "p99_s", "max_s"],
                rows,
            )
        )
    if args.events and log.events:
        counts: dict[str, int] = defaultdict(int)
        for event in log.events:
            counts[event.kind] += 1
        print(f"\nEvent counts ({len(log.events)} events)")
        print(
            format_table(
                ["kind", "count"],
                [[k, str(n)] for k, n in sorted(counts.items(), key=lambda i: -i[1])],
            )
        )
    if log.metrics:
        counters = log.metrics.get("counters", {})
        if counters:
            print("\nCounters")
            print(
                format_table(
                    ["name", "value"],
                    [[k, str(v)] for k, v in sorted(counters.items())],
                )
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
