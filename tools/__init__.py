"""Developer tooling for the repro project (lint, docs checks, trace CLIs)."""
