"""REP012: array contracts -- ``# shape:`` / ``# dtype:`` comments, checked.

The batched ocean kernels, covfile column writers and tile payload
builders all live or die on array-layout conventions (``(state_dim,
n_members)`` column order, ``float64`` covariance columns, ``(tj, ti,
block*block)`` tile payloads).  A trailing contract comment documents
the convention *and* is verified by propagating shape/dtype facts
through the dataflow engine:

    out = np.empty((self.size, n_members))   # shape: (size, n_members)
    packed = arr.reshape(n_members, -1).T    # shape: (*, n_members)
    return out                               # shape: (size, n_members)

Propagation understands transposes (``.T`` / ``transpose``), ``reshape``
/ ``ravel``, axis reductions (``sum``/``mean``/``max``/... with a
constant ``axis``), elementwise arithmetic, ``astype`` / ``asarray``
dtype changes, the ``empty``/``zeros``/``ones``/``*_like`` constructors
and rank-2 ``@`` matmul.  Dimensions are compared leniently: a numeric
dim conflicts only with a different numeric dim, a symbolic dim (``n``)
only with a different symbol; anything unresolvable is a wildcard.  The
rule therefore only fires on *provable* contradictions -- a dropped
transpose, a reduction over the wrong axis, a dtype downcast -- not on
unknown shapes.

A contract on an assignment both checks the inferred fact of the value
and (re)declares the variable's fact from the comment; a contract on a
``return`` checks the returned expression.  Malformed contract comments
are flagged so typos do not silently disable checking.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Iterator

from tools.lint.core import (
    FileContext,
    Finding,
    ImportAliases,
    Rule,
    enclosing_symbols,
    register,
    resolve_dotted,
)
from tools.lint.dataflow import analyze_forward, build_cfg, iter_function_defs

_SHAPE_RE = re.compile(r"#\s*shape:\s*(\([^)#]*\))")
_SHAPE_MARK_RE = re.compile(r"#\s*shape:")
_DTYPE_RE = re.compile(r"#\s*dtype:\s*([A-Za-z_][A-Za-z0-9_.]*)")
_DTYPE_MARK_RE = re.compile(r"#\s*dtype:")

_WILD = "*"

#: Python scalar constructors normalized to numpy dtype names.
_DTYPE_NORMALIZE = {
    "float": "float64",
    "int": "int64",
    "bool": "bool_",
    "complex": "complex128",
}

#: Reductions accepting ``axis=`` that drop the reduced dimension.
_REDUCTIONS = {
    "sum", "mean", "max", "min", "std", "var", "prod", "any", "all",
    "amax", "amin", "nanmax", "nanmin", "nansum", "nanmean", "argmax",
    "argmin", "count_nonzero",
}

#: Elementwise numpy unaries that preserve shape and dtype.
_ELEMENTWISE = {
    "sqrt", "abs", "absolute", "exp", "log", "log10", "square", "sign",
    "clip", "nan_to_num", "negative", "maximum", "minimum", "where",
    "isfinite", "isnan", "tanh", "cos", "sin",
}


def _norm_dim(text: str) -> str:
    """Normalize one dimension token for comparison."""
    dim = text.strip().replace("self.", "")
    if dim in ("-1", "...", "?", ""):
        return _WILD
    return dim


def _dim_kind(dim: str) -> str:
    if dim == _WILD:
        return "wild"
    if re.fullmatch(r"\d+", dim):
        return "num"
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", dim):
        return "sym"
    return "wild"


def _dims_conflict(a: str, b: str) -> bool:
    ka, kb = _dim_kind(a), _dim_kind(b)
    if ka != kb or ka == "wild":
        return False
    return a != b


def _shapes_conflict(a: tuple | None, b: tuple | None) -> bool:
    if a is None or b is None:
        return False
    if len(a) != len(b):
        return True
    return any(_dims_conflict(x, y) for x, y in zip(a, b))


def _norm_dtype(text: str | None) -> str | None:
    if text is None:
        return None
    name = text.strip()
    for prefix in ("numpy.", "np."):
        if name.startswith(prefix):
            name = name[len(prefix):]
    return _DTYPE_NORMALIZE.get(name, name) or None


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """(lineno, text) of every real comment token in the source.

    Contract directives must live in comments -- ``# shape:`` inside a
    string literal (docstrings, rule explanations) is prose, not a
    contract.
    """
    out: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        pass  # unparseable files already fail in make_context
    return out


#: A fact is (shape tuple | None, dtype str | None); None = unknown.
Fact = tuple


def _fact(shape=None, dtype=None) -> Fact:
    return (tuple(shape) if shape is not None else None, dtype)


def _parse_contract(text: str) -> tuple[Fact | None, str | None]:
    """Parse a source line's contract; returns (fact, error)."""
    has_shape = bool(_SHAPE_MARK_RE.search(text))
    has_dtype = bool(_DTYPE_MARK_RE.search(text))
    if not has_shape and not has_dtype:
        return None, None
    shape = None
    if has_shape:
        m = _SHAPE_RE.search(text)
        if m is None:
            return None, "malformed # shape: contract (want `# shape: (a, b)`)"
        body = m.group(1).strip()[1:-1]
        dims = tuple(_norm_dim(d) for d in body.split(",") if d.strip() != "")
        shape = dims
    dtype = None
    if has_dtype:
        m = _DTYPE_RE.search(text)
        if m is None:
            return None, "malformed # dtype: contract (want `# dtype: float64`)"
        dtype = _norm_dtype(m.group(1))
    return _fact(shape, dtype), None


def _const_axis(call: ast.Call) -> int | None | str:
    """The constant ``axis`` argument: int, None (absent), or "?"."""
    for kw in call.keywords:
        if kw.arg == "axis":
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, int
            ):
                return kw.value.value
            return "?"
    return None


def _shape_from_expr(expr: ast.expr) -> tuple | None:
    """Shape tuple from a literal shape argument (tuple/list/scalar).

    A bare name or attribute (``np.full(counts.shape, ...)``) may itself
    be a tuple of any rank, so only literal ints pin the rank to 1.
    """
    if isinstance(expr, (ast.Tuple, ast.List)):
        return tuple(_norm_dim(ast.unparse(e)) for e in expr.elts)
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return (_norm_dim(ast.unparse(expr)),)
    return None


def _dtype_kw(call: ast.Call) -> str | None:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return _norm_dtype(ast.unparse(kw.value))
    return None


class _Inference:
    """Expression-level shape/dtype inference over a variable-fact env."""

    def __init__(self, aliases: dict[str, str]):
        self.aliases = aliases

    def infer(self, expr: ast.expr, env: dict) -> Fact:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _fact())
        if isinstance(expr, ast.Attribute):
            if expr.attr == "T":
                shape, dtype = self.infer(expr.value, env)
                return _fact(tuple(reversed(shape)) if shape else None, dtype)
            return _fact()
        if isinstance(expr, ast.BinOp):
            return self._binop(expr, env)
        if isinstance(expr, ast.UnaryOp):
            return self.infer(expr.operand, env)
        if isinstance(expr, ast.Call):
            return self._call(expr, env)
        return _fact()

    def _binop(self, expr: ast.BinOp, env: dict) -> Fact:
        left = self.infer(expr.left, env)
        right = self.infer(expr.right, env)
        if isinstance(expr.op, ast.MatMult):
            ls, rs = left[0], right[0]
            if ls is not None and rs is not None and len(ls) == 2 and len(rs) == 2:
                dtype = left[1] if left[1] == right[1] else None
                return _fact((ls[0], rs[1]), dtype)
            return _fact()
        l_known, r_known = left[0] is not None, right[0] is not None
        if l_known and not r_known:
            scalar = isinstance(expr.right, ast.Constant)
            return _fact(left[0], left[1] if scalar else None)
        if r_known and not l_known:
            scalar = isinstance(expr.left, ast.Constant)
            return _fact(right[0], right[1] if scalar else None)
        if l_known and r_known and not _shapes_conflict(left[0], right[0]):
            return _fact(left[0], left[1] if left[1] == right[1] else None)
        return _fact()

    def _call(self, call: ast.Call, env: dict) -> Fact:
        resolved = resolve_dotted(call.func, self.aliases)
        if resolved is not None and resolved.startswith("numpy."):
            return self._numpy_call(call, resolved.split(".")[-1], env)
        if isinstance(call.func, ast.Attribute):
            return self._method_call(call, env)
        return _fact()

    def _numpy_call(self, call: ast.Call, name: str, env: dict) -> Fact:
        args = call.args
        if name in ("empty", "zeros", "ones", "full") and args:
            shape = _shape_from_expr(args[0])
            dtype = _dtype_kw(call) or ("float64" if name != "full" else None)
            return _fact(shape, dtype)
        if name in ("empty_like", "zeros_like", "ones_like", "full_like") and args:
            shape, dtype = self.infer(args[0], env)
            return _fact(shape, _dtype_kw(call) or dtype)
        if name in ("asarray", "ascontiguousarray", "array") and args:
            shape, dtype = self.infer(args[0], env)
            return _fact(shape, _dtype_kw(call) or dtype)
        if name == "reshape" and len(args) >= 2:
            _, dtype = self.infer(args[0], env)
            return _fact(_shape_from_expr(args[1]), dtype)
        if name == "transpose" and args:
            return self._transpose(args[0], call.args[1:], env)
        if name in _REDUCTIONS and args:
            return self._reduce(call, args[0], env)
        if name in _ELEMENTWISE and args:
            return self.infer(args[0], env)
        return _fact()

    def _method_call(self, call: ast.Call, env: dict) -> Fact:
        recv = call.func.value
        name = call.func.attr
        if name == "reshape":
            _, dtype = self.infer(recv, env)
            if len(call.args) == 1:
                shape = _shape_from_expr(call.args[0])
            else:
                shape = tuple(_norm_dim(ast.unparse(a)) for a in call.args)
            return _fact(shape, dtype)
        if name == "transpose":
            return self._transpose(recv, call.args, env)
        if name in ("ravel", "flatten"):
            _, dtype = self.infer(recv, env)
            return _fact((_WILD,), dtype)
        if name == "astype" and call.args:
            shape, _ = self.infer(recv, env)
            return _fact(shape, _norm_dtype(ast.unparse(call.args[0])))
        if name == "copy":
            return self.infer(recv, env)
        if name in _REDUCTIONS:
            return self._reduce(call, recv, env)
        return _fact()

    def _transpose(self, src: ast.expr, axes_args: list, env: dict) -> Fact:
        shape, dtype = self.infer(src, env)
        if shape is None:
            return _fact(None, dtype)
        axes: list[int] | None
        if not axes_args:
            axes = list(reversed(range(len(shape))))
        else:
            elts = (
                axes_args[0].elts
                if len(axes_args) == 1
                and isinstance(axes_args[0], (ast.Tuple, ast.List))
                else axes_args
            )
            axes = []
            for e in elts:
                if isinstance(e, ast.Constant) and isinstance(e.value, int):
                    axes.append(e.value)
                else:
                    return _fact(None, dtype)
        if sorted(axes) != list(range(len(shape))):
            return _fact(None, dtype)
        return _fact(tuple(shape[a] for a in axes), dtype)

    def _reduce(self, call: ast.Call, src: ast.expr, env: dict) -> Fact:
        shape, dtype = self.infer(src, env)
        axis = _const_axis(call)
        name = (
            call.func.attr
            if isinstance(call.func, ast.Attribute)
            else getattr(call.func, "id", "")
        )
        if name in ("argmax", "argmin", "count_nonzero"):
            dtype = "int64"
        if name in ("any", "all", "isfinite", "isnan"):
            dtype = "bool_"
        if axis is None:
            return _fact((), dtype)
        if axis == "?" or shape is None:
            return _fact(None, dtype)
        if -len(shape) <= axis < len(shape):
            out = list(shape)
            out.pop(axis if axis >= 0 else len(shape) + axis)
            return _fact(tuple(out), dtype)
        return _fact(None, dtype)


@register
class ArrayContractRule(Rule):
    """Verify ``# shape:`` / ``# dtype:`` contract comments by dataflow."""

    id = "REP012"
    name = "array-contracts"
    summary = (
        "`# shape: (a, b)` / `# dtype: float64` contract comments on "
        "array code are checked by shape/dtype propagation; provable "
        "contradictions fail"
    )
    explanation = """\
Array-layout bugs (a dropped transpose, a reduction over the wrong axis,
a float32 downcast in a float64 pipeline) pass every type checker and
corrupt results silently.  A trailing contract comment states the
intended layout where it matters; the linter propagates shape/dtype
facts through the function and flags provable contradictions.

Bad:
    out = np.empty((self.size, n))
    out[:] = arr.reshape(n, -1)          # missing .T
    return out.sum(axis=0)               # shape: (size,)  <- conflicts

Good:
    out = np.empty((self.size, n))       # shape: (size, n)
    out[:] = arr.reshape(n, -1).T
    return out.sum(axis=1)               # shape: (size,)

Only *provable* conflicts fire: symbolic dims (`n`) conflict with other
symbols, numeric dims with other numerics; unknown shapes stay silent.
The comment also (re)declares the variable's fact, so downstream checks
build on it.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Check contract comments in every function that has any."""
        contract_lines: dict[int, tuple[Fact | None, str | None]] = {}
        for lineno, text in _comment_tokens(ctx.source):
            if _SHAPE_MARK_RE.search(text) or _DTYPE_MARK_RE.search(text):
                contract_lines[lineno] = _parse_contract(text)
        if not contract_lines:
            return
        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        symbols = enclosing_symbols(ctx.tree)
        covered: set[int] = set()
        for func in iter_function_defs(ctx.tree):
            span = range(func.lineno, (func.end_lineno or func.lineno) + 1)
            if not any(ln in contract_lines for ln in span):
                continue
            covered.update(ln for ln in span if ln in contract_lines)
            yield from self._check_function(
                ctx, func, aliases.aliases, symbols, contract_lines
            )
        # Malformed contracts outside any function still deserve a report.
        for lineno, (_, error) in sorted(contract_lines.items()):
            if error is not None and lineno not in covered:
                yield Finding(
                    rule=self.id,
                    path=ctx.relpath,
                    line=lineno,
                    message=error,
                    symbol=f"<module>:contract:{lineno}",
                )

    def _check_function(
        self,
        ctx: FileContext,
        func,
        aliases: dict[str, str],
        symbols,
        contract_lines: dict,
    ) -> Iterator[Finding]:
        qual = symbols.get(id(func), func.name)
        infer = _Inference(aliases)
        cfg = build_cfg(func)
        reported: dict[int, tuple[ast.AST, str]] = {}

        def contract_for(stmt: ast.AST) -> tuple[Fact | None, str | None]:
            end = getattr(stmt, "end_lineno", stmt.lineno)
            for lineno in range(stmt.lineno, end + 1):
                if lineno in contract_lines:
                    return contract_lines[lineno]
            return None, None

        def transfer(node, env: dict) -> dict:
            out = dict(env)
            stmt = node.stmt
            if stmt is None or node.kind not in ("stmt",):
                if node.kind == "loop_head" and isinstance(
                    stmt, (ast.For, ast.AsyncFor)
                ) and isinstance(stmt.target, ast.Name):
                    out.pop(stmt.target.id, None)
                return out
            declared, error = contract_for(stmt)
            if error is not None:
                reported.setdefault(stmt.lineno, (stmt, error))
                return out
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                inferred = infer.infer(stmt.value, out)
                if isinstance(target, ast.Name):
                    out[target.id] = inferred
                    if declared is not None:
                        self._compare(stmt, declared, inferred, reported)
                        # The comment is authoritative for propagation.
                        out[target.id] = self._refine(declared, inferred)
                elif declared is not None:
                    # Contract on a subscript/attribute store checks the rhs.
                    self._compare(stmt, declared, inferred, reported)
            elif isinstance(stmt, ast.AugAssign):
                pass  # shape-preserving; facts stay
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if declared is not None:
                    inferred = infer.infer(stmt.value, out)
                    self._compare(stmt, declared, inferred, reported)
            return out

        def merge(a: dict, b: dict) -> dict:
            out = {}
            for var in set(a) & set(b):
                fa, fb = a[var], b[var]
                shape = fa[0] if fa[0] == fb[0] else None
                dtype = fa[1] if fa[1] == fb[1] else None
                if shape is not None or dtype is not None:
                    out[var] = (shape, dtype)
            return out

        analyze_forward(cfg, {}, transfer, merge)
        for _, (stmt, message) in sorted(reported.items()):
            yield ctx.finding(
                self,
                stmt,
                message,
                symbol=f"{qual}:contract:{self._anchor(stmt)}",
            )

    @staticmethod
    def _anchor(stmt: ast.AST) -> str:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
            return stmt.targets[0].id
        if isinstance(stmt, ast.Return):
            return "return"
        return "stmt"

    @staticmethod
    def _refine(declared: Fact, inferred: Fact) -> Fact:
        shape = declared[0] if declared[0] is not None else inferred[0]
        dtype = declared[1] if declared[1] is not None else inferred[1]
        return (shape, dtype)

    @staticmethod
    def _compare(
        stmt: ast.AST, declared: Fact, inferred: Fact, reported: dict
    ) -> None:
        d_shape, d_dtype = declared
        i_shape, i_dtype = inferred
        if _shapes_conflict(d_shape, i_shape):
            reported.setdefault(
                stmt.lineno,
                (
                    stmt,
                    f"shape contract {_render_shape(d_shape)} conflicts with "
                    f"inferred {_render_shape(i_shape)}",
                ),
            )
            return
        if d_dtype is not None and i_dtype is not None and d_dtype != i_dtype:
            reported.setdefault(
                stmt.lineno,
                (
                    stmt,
                    f"dtype contract {d_dtype} conflicts with inferred "
                    f"{i_dtype}",
                ),
            )


def _render_shape(shape: tuple | None) -> str:
    if shape is None:
        return "(unknown)"
    return "(" + ", ".join(shape) + ("," if len(shape) == 1 else "") + ")"
