"""REP010: async discipline -- nothing blocks the event loop.

Three checks over ``async def`` bodies:

- **Direct blocking calls**: ``time.sleep``, synchronous file/socket IO
  (``open``, ``Path.read_text``, numpy file IO), ``subprocess``,
  ``lock.acquire()`` and blocking ``queue.get()/put()`` stall the whole
  event loop -- every connection the server is juggling waits.  The
  blocking vocabulary is shared with REP008 (no-blocking-under-lock).
- **``await`` while holding a synchronous lock** (dataflow over the CFG):
  parking the coroutine with a ``threading.Lock`` held can deadlock the
  loop -- the task that would release it may never be scheduled, and any
  other coroutine touching the lock blocks the loop itself.
- **Annotated-blocking calls** (cross-file): a synchronous function whose
  ``def`` line carries ``# repro-lint: blocking -- why`` must not be
  called directly from an ``async def`` anywhere in the linted tree; the
  call belongs behind ``loop.run_in_executor``.  Matching is by function
  name, collected during the per-file pass and reported in ``finish()``.
- **Transitively blocking calls** (interprocedural, when
  ``FileContext.project`` is set): a call from an ``async def`` into a
  synchronous project function whose *effect summary* blocks -- directly
  or through any chain of synchronous callees -- is flagged with the
  inferred chain (``handle -> _snapshot -> read_text``).  Manual
  ``# repro-lint: blocking`` annotations become optional overrides: an
  annotated function is always treated as blocking even when inference
  sees nothing, and the name-based ``finish()`` matching is kept only
  for the ``--no-summaries`` fallback.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.lint.core import (
    FileContext,
    Finding,
    ImportAliases,
    Rule,
    enclosing_symbols,
    register,
    resolve_dotted,
)
from tools.lint.dataflow import analyze_forward, build_cfg
from tools.lint.rules.concurrency import (
    _BLOCKING_RESOLVED,
    _IO_METHODS,
    _NUMPY_IO,
    NoBlockingUnderLockRule,
    _lock_token,
)
from tools.lint.rules.locks import LOCK_FACTORY_KINDS

#: ``def`` lines carrying this directive mark the function as blocking.
_BLOCKING_MARK_RE = re.compile(r"#\s*repro-lint:\s*blocking\b")

#: Suggested fixes keyed by what was flagged.
_SUGGESTIONS = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "acquire": "use an asyncio.Lock, or do the locked work in an executor",
}
_DEFAULT_SUGGESTION = "offload it with `await loop.run_in_executor(...)`"


def _is_async_lock_attr(cls: ast.ClassDef, aliases: dict[str, str]) -> set[str]:
    """``self.X`` attributes assigned an ``asyncio`` lock/semaphore."""
    out: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        resolved = resolve_dotted(node.value.func, aliases)
        if resolved is None or not resolved.startswith("asyncio."):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                out.add(f"self.{target.attr}")
    return out


def _sync_lock_tokens(
    func: ast.AST, cls: ast.ClassDef | None, aliases: dict[str, str]
) -> set[str]:
    """Lock tokens that are synchronous (threading/sanitizer) locks."""
    tokens: set[str] = set()
    if cls is not None:
        async_attrs = _is_async_lock_attr(cls, aliases)
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            if resolve_dotted(node.value.func, aliases) not in LOCK_FACTORY_KINDS:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    token = f"self.{target.attr}"
                    if token not in async_attrs:
                        tokens.add(token)
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and resolve_dotted(node.value.func, aliases) in LOCK_FACTORY_KINDS
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    tokens.add(target.id)
    args = getattr(func, "args", None)
    if args is not None:
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            for arg in group:
                if arg.arg == "lock" or arg.arg.endswith("_lock"):
                    tokens.add(arg.arg)
    return tokens


def _walk_skipping_defs(root: ast.AST) -> Iterator[ast.AST]:
    """Walk an async body without descending into nested ``def``s.

    A nested synchronous function does not run on the event loop when it
    is *defined*; flagging its body here would double-report it.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


@register
class AsyncDisciplineRule(Rule):
    """Flag event-loop-blocking constructs inside ``async def`` bodies."""

    id = "REP010"
    name = "async-discipline"
    summary = (
        "async def bodies must not call blocking functions (sleep, sync "
        "IO, subprocess, lock.acquire, queue.get) or await while holding "
        "a sync lock"
    )
    explanation = """\
One synchronous call inside a coroutine stalls the entire event loop:
every other connection, timer and task waits until it returns.  And
awaiting with a `threading.Lock` held parks the coroutine while the lock
stays locked -- other coroutines needing it then block the loop itself
(deadlock if the release depends on a task the loop can no longer run).

Bad:
    async def handle(self, request):
        data = self.service.fetch(request)      # sync disk IO + hashing
        time.sleep(0.01)                        # loop frozen
        with self._lock:
            await self.publish(data)            # await under sync lock

Good:
    async def handle(self, request):
        loop = asyncio.get_running_loop()
        data = await loop.run_in_executor(None, self.service.fetch, request)
        await asyncio.sleep(0.01)
        with self._lock:
            payload = self.render(data)         # no await inside
        await self.publish(payload)

Mark a synchronous API as off-limits for coroutines by annotating its
definition (`def fetch(...):  # repro-lint: blocking -- disk IO`); any
direct call from an `async def` anywhere in the tree is then flagged.
"""

    def __init__(self) -> None:
        self._annotated: dict[str, tuple[str, int]] = {}
        self._async_calls: list[tuple[str, int, str, str]] = []
        self._use_project = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Per-file pass: direct blocking + await-under-lock + collection."""
        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        symbols = enclosing_symbols(ctx.tree)
        project = getattr(ctx, "project", None)
        if project is not None:
            self._use_project = True
        else:
            self._collect_annotated(ctx)

        classes = {
            id(fn): node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
            for fn in node.body
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            qual = symbols.get(id(func), func.name)
            if project is None:
                self._collect_async_calls(ctx, func, qual)
            else:
                yield from self._transitive_blocking(
                    ctx, func, qual, aliases.aliases, project
                )
            yield from self._direct_blocking(ctx, func, qual, aliases.aliases)
            yield from self._await_under_lock(
                ctx, func, qual, classes.get(id(func)), aliases.aliases
            )

    # -- direct blocking calls ---------------------------------------------

    def _direct_blocking(
        self, ctx: FileContext, func, qual: str, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        queue_names = NoBlockingUnderLockRule._queue_locals(func, aliases)
        thread_names = NoBlockingUnderLockRule._thread_locals(func, aliases)
        lock_tokens = _sync_lock_tokens(func, None, aliases)
        for node in _walk_skipping_defs(func):
            if not isinstance(node, ast.Call):
                continue
            why = self._blocking_reason(
                node, thread_names, queue_names, lock_tokens, aliases
            )
            if why is None:
                continue
            head = why.split(" ")[0]
            suggestion = _SUGGESTIONS.get(
                "acquire" if ".acquire" in why else head, _DEFAULT_SUGGESTION
            )
            yield ctx.finding(
                self,
                node,
                f"{why} inside async def {func.name}; {suggestion}",
                symbol=f"{qual}:{head}",
            )

    @staticmethod
    def _blocking_reason(
        node: ast.Call,
        thread_names: set[str],
        queue_names: set[str],
        lock_tokens: set[str],
        aliases: dict[str, str],
    ) -> str | None:
        why = NoBlockingUnderLockRule._blocking_reason(
            node, thread_names, queue_names, aliases
        )
        if why is not None:
            # Rephrase for the event-loop context.
            return why.replace("while holding a lock", "").replace(
                " blocks", " blocks the event loop"
            )
        if isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
            token = _lock_token(node.func.value)
            if token is not None and (
                token in lock_tokens or token.lower().endswith("lock")
            ):
                nonblocking = any(
                    kw.arg == "blocking"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in node.keywords
                ) or any(
                    isinstance(a, ast.Constant) and a.value is False
                    for a in node.args
                )
                if not nonblocking:
                    return f"{token}.acquire() blocks the event loop"
        resolved = resolve_dotted(node.func, aliases)
        if resolved in _NUMPY_IO:
            return f"{resolved} does file I/O on the event loop"
        return None

    # -- await while holding a sync lock -----------------------------------

    def _await_under_lock(
        self,
        ctx: FileContext,
        func,
        qual: str,
        cls: ast.ClassDef | None,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        sync_tokens = _sync_lock_tokens(func, cls, aliases)
        if not sync_tokens:
            return
        cfg = build_cfg(func)
        flagged: dict[int, tuple[ast.AST, frozenset]] = {}

        def awaits_in(stmt: ast.AST) -> list[ast.Await]:
            return [
                n for n in _walk_skipping_defs(stmt) if isinstance(n, ast.Await)
            ]

        def transfer(node, held: frozenset) -> frozenset:
            stmt = node.stmt
            if node.kind == "with" and isinstance(stmt, ast.With):
                added = {
                    t
                    for item in stmt.items
                    if (t := _lock_token(item.context_expr)) in sync_tokens
                }
                return held | added
            if node.kind == "with_exit" and isinstance(stmt, ast.With):
                removed = {
                    t
                    for item in stmt.items
                    if (t := _lock_token(item.context_expr)) in sync_tokens
                }
                return held - removed
            if stmt is None:
                return held
            if held and (
                (node.kind == "with" and isinstance(stmt, ast.AsyncWith))
                or (node.kind == "loop_head" and isinstance(stmt, ast.AsyncFor))
            ):
                # `async with` / `async for` headers await implicitly.
                flagged.setdefault(node.index, (stmt, held))
            if held and node.kind in ("stmt", "branch", "loop_head"):
                shallow = stmt
                if node.kind in ("branch", "loop_head"):
                    # Only the header expression runs at this node.
                    shallow = getattr(stmt, "test", None) or getattr(
                        stmt, "iter", None
                    )
                if shallow is not None and awaits_in(shallow):
                    flagged.setdefault(node.index, (stmt, held))
            if isinstance(stmt, (ast.Expr, ast.Assign)):
                value = stmt.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "acquire"
                    and _lock_token(value.func.value) in sync_tokens
                ):
                    return held | {_lock_token(value.func.value)}
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "release"
                    and _lock_token(value.func.value) in sync_tokens
                ):
                    return held - {_lock_token(value.func.value)}
            return held

        def merge(a: frozenset, b: frozenset) -> frozenset:
            return a | b

        analyze_forward(cfg, frozenset(), transfer, merge)
        for _, (stmt, held) in sorted(flagged.items()):
            locks = ", ".join(sorted(held))
            yield ctx.finding(
                self,
                stmt,
                f"await while holding sync lock {locks}; release the lock "
                "before awaiting (or switch to asyncio.Lock)",
                symbol=f"{qual}:await-under-lock",
            )

    # -- interprocedural: calls into transitively blocking functions --------

    def _transitive_blocking(
        self, ctx: FileContext, func, qual: str, aliases: dict[str, str], project
    ) -> Iterator[Finding]:
        """Flag async calls whose resolved callee summary blocks.

        Direct-vocabulary blocking calls are skipped here -- they are
        already reported (with a better message) by ``_direct_blocking``.
        Unresolvable calls fall back to the project-wide annotated-name
        match so an annotation never loses power under inference.
        """
        queue_names = NoBlockingUnderLockRule._queue_locals(func, aliases)
        thread_names = NoBlockingUnderLockRule._thread_locals(func, aliases)
        lock_tokens = _sync_lock_tokens(func, None, aliases)
        for node in _walk_skipping_defs(func):
            if not isinstance(node, ast.Call):
                continue
            if (
                self._blocking_reason(
                    node, thread_names, queue_names, lock_tokens, aliases
                )
                is not None
            ):
                continue
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            else:
                continue
            key = project.callee_of(ctx.relpath, node)
            summ = project.summary(key)
            if summ is not None:
                if summ.is_async or summ.blocking is None:
                    continue
                where = project.graph.file_of[key]
                fir = project.graph.functions[key]
                if summ.annotated_blocking:
                    detail = f"annotated blocking at {where}:{fir.line}"
                else:
                    detail = (
                        "blocks the event loop transitively: "
                        f"{name} -> {summ.blocking}"
                    )
                yield ctx.finding(
                    self,
                    node,
                    f"call to {name}() from async def {func.name} "
                    f"({detail}); {_DEFAULT_SUGGESTION}",
                    symbol=f"{qual}:blocking-call:{name}",
                )
            else:
                mark = project.annotated_blocking.get(name)
                if mark is not None:
                    where, defline = mark
                    yield ctx.finding(
                        self,
                        node,
                        f"call to {name}() (annotated blocking at "
                        f"{where}:{defline}) from async code; "
                        f"{_DEFAULT_SUGGESTION}",
                        symbol=f"{qual}:blocking-call:{name}",
                    )

    # -- cross-file annotated-blocking calls -------------------------------

    def _collect_annotated(self, ctx: FileContext) -> None:
        lines = ctx.source.splitlines()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            # The directive may sit on the `def` line or the line opening
            # the argument list's closing paren (multi-line signatures).
            last = getattr(node, "body", [node])[0].lineno - 1
            for lineno in range(node.lineno, min(last, len(lines)) + 1):
                if _BLOCKING_MARK_RE.search(lines[lineno - 1]):
                    self._annotated.setdefault(
                        node.name, (ctx.relpath, node.lineno)
                    )
                    break

    def _collect_async_calls(self, ctx: FileContext, func, qual: str) -> None:
        for node in _walk_skipping_defs(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            else:
                continue
            self._async_calls.append((ctx.relpath, node.lineno, name, qual))

    def finish(self) -> Iterator[Finding]:
        """Match collected async call sites against blocking annotations.

        Only the ``--no-summaries`` fallback path: with a project, the
        per-file :meth:`_transitive_blocking` pass already covers every
        annotated (and inferred) blocking callee with resolution instead
        of name matching.
        """
        if self._use_project or not self._annotated:
            return
        for path, lineno, name, qual in self._async_calls:
            mark = self._annotated.get(name)
            if mark is None:
                continue
            where, defline = mark
            yield Finding(
                rule=self.id,
                path=path,
                line=lineno,
                message=(
                    f"call to {name}() (annotated blocking at "
                    f"{where}:{defline}) from async code; offload it with "
                    "`await loop.run_in_executor(...)`"
                ),
                symbol=f"{qual}:blocking-call:{name}",
            )
