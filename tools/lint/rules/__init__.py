"""Rule modules; importing this package registers every rule.

Add a new rule by creating a module here with a ``@register``-decorated
:class:`tools.lint.core.Rule` subclass and importing it below (see
``docs/STATIC_ANALYSIS.md`` for the full how-to).
"""

from tools.lint.rules import (  # noqa: F401  -- imported for registration
    asyncdiscipline,
    clocks,
    concurrency,
    contracts,
    determinism,
    docstrings,
    layering,
    locks,
    protocols,
    publish,
    resources,
)
