"""REP003: lock discipline in threaded classes.

In classes that own :class:`threading.Lock` attributes (the task-pool
workflow, the trace recorder, the metrics registry), an instance attribute
that is *ever* accessed under one of the class's locks is treated as
lock-guarded shared state.  Any mutation of such an attribute outside a
``with self.<lock>:`` block (and outside ``__init__``, which runs before
threads exist) is a race waiting for a scheduler to expose it.

Attributes that are genuinely confined to one thread are either never
touched under a lock (then this rule ignores them) or carry an explicit
``# repro-lint: disable=REP003`` with a thread-confinement comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import (
    FileContext,
    Finding,
    ImportAliases,
    Rule,
    register,
    resolve_dotted,
)

#: Constructors whose result makes an attribute a class-owned lock, mapped
#: to whether the resulting lock is reentrant (REP006 allows nested
#: re-acquisition of reentrant locks only).  The sanitizer factories are
#: here so swapping ``threading.Lock()`` for ``new_lock()`` keeps every
#: lock rule engaged.
LOCK_FACTORY_KINDS: dict[str, bool] = {
    "threading.Lock": False,
    "threading.RLock": True,
    "threading.Condition": True,
    "repro.util.sanitizer.SanitizedLock": False,
    "repro.util.sanitizer.SanitizedRLock": True,
    "repro.util.sanitizer.new_lock": False,
    "repro.util.sanitizer.new_rlock": True,
    "repro.util.SanitizedLock": False,
    "repro.util.SanitizedRLock": True,
    "repro.util.new_lock": False,
    "repro.util.new_rlock": True,
}

#: Constructors whose result makes an attribute a class-owned lock.
LOCK_FACTORIES = set(LOCK_FACTORY_KINDS)

#: Method calls that mutate their receiver in place.
MUTATORS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "clear",
    "update",
    "add",
    "setdefault",
    "sort",
    "reverse",
}

#: Statement fields holding nested statement blocks (not expressions).
_BLOCK_FIELDS = ("body", "orelse", "finalbody")


def _self_attr(node: ast.AST) -> str | None:
    """The ``X`` of a ``self.X`` attribute node, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _holds_lock(node: ast.With, lock_attrs: set[str]) -> bool:
    """True when any context manager of the with is ``self.<lock>``."""
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and attr in lock_attrs:
            return True
    return False


def _is_compound(stmt: ast.stmt) -> bool:
    return any(getattr(stmt, f, None) for f in _BLOCK_FIELDS) or bool(
        getattr(stmt, "handlers", None)
    )


@register
class LockDisciplineRule(Rule):
    """Flag unlocked mutations of lock-guarded instance attributes."""

    id = "REP003"
    name = "lock-discipline"
    summary = (
        "attributes accessed under a class-owned threading.Lock must not be "
        "mutated outside a with-lock block (except in __init__)"
    )
    explanation = """\
If a class guards self.X with `with self._lock:` anywhere, then *every*
mutation of self.X must hold a class-owned lock -- a single unlocked
writer races every locked reader.  Construction paths (__init__, __new__,
__setstate__) are exempt: no other thread holds a reference yet.

Bad:
    class Pool:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []
        def worker(self):
            with self._lock:
                n = len(self._items)     # guarded access...
        def producer(self):
            self._items.append(1)        # ...unlocked mutation: flagged

Good:
        def producer(self):
            with self._lock:
                self._items.append(1)

For state that is provably confined to one thread, keep it away from lock
blocks entirely, or annotate the mutation site:
    self._scratch.append(x)  # repro-lint: disable=REP003 -- differ-thread only
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Scan each threaded class for unlocked guarded-state mutations."""
        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        if not any(
            v.split(".")[0] == "threading" or v.startswith("repro.util")
            for v in aliases.aliases.values()
        ):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node, aliases.aliases)

    # -- class-level analysis ------------------------------------------------

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        lock_attrs = self._lock_attributes(cls, aliases)
        if not lock_attrs:
            return
        guarded = self._guarded_attributes(cls, lock_attrs)
        if not guarded:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__new__", "__setstate__"):
                continue  # construction paths: no other thread can hold a ref
            yield from self._check_block(
                ctx, cls.name, method.name, method.body, lock_attrs, guarded, False
            )

    def _lock_attributes(
        self, cls: ast.ClassDef, aliases: dict[str, str]
    ) -> set[str]:
        """Attributes assigned a ``threading.Lock()``-like object."""
        locks: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            if resolve_dotted(node.value.func, aliases) not in LOCK_FACTORIES:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    locks.add(attr)
        return locks

    def _guarded_attributes(
        self, cls: ast.ClassDef, lock_attrs: set[str]
    ) -> set[str]:
        """self-attributes accessed anywhere under a class-owned lock."""
        guarded: set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.With) and _holds_lock(node, lock_attrs):
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        attr = _self_attr(sub)
                        if attr is not None and attr not in lock_attrs:
                            guarded.add(attr)
        return guarded

    # -- statement walk tracking the lexically-held lock ---------------------

    def _check_block(
        self,
        ctx: FileContext,
        cls_name: str,
        method: str,
        body: list[ast.stmt],
        lock_attrs: set[str],
        guarded: set[str],
        locked: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._check_stmt(
                ctx, cls_name, method, stmt, lock_attrs, guarded, locked
            )

    def _check_stmt(
        self,
        ctx: FileContext,
        cls_name: str,
        method: str,
        stmt: ast.stmt,
        lock_attrs: set[str],
        guarded: set[str],
        locked: bool,
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = locked or _holds_lock(stmt, lock_attrs)
            yield from self._check_block(
                ctx, cls_name, method, stmt.body, lock_attrs, guarded, inner
            )
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function may run on another thread or after the
            # lock was released: its body is analyzed as *unlocked*.
            yield from self._check_block(
                ctx, cls_name, method, stmt.body, lock_attrs, guarded, False
            )
            return
        if not _is_compound(stmt):
            if not locked:
                yield from self._flag_simple(ctx, cls_name, method, stmt, guarded)
            return
        # Compound statement: flag mutator calls in its header expressions
        # (test/iter/...) at the current lock state, then recurse into the
        # nested blocks preserving that state.
        if not locked:
            for expr in self._header_exprs(stmt):
                yield from self._flag_mutator_calls(
                    ctx, cls_name, method, expr, guarded
                )
        for field_name in _BLOCK_FIELDS:
            block = getattr(stmt, field_name, None)
            if block:
                yield from self._check_block(
                    ctx, cls_name, method, block, lock_attrs, guarded, locked
                )
        for handler in getattr(stmt, "handlers", []):
            yield from self._check_block(
                ctx, cls_name, method, handler.body, lock_attrs, guarded, locked
            )

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
        """Expression children of a compound statement outside its blocks."""
        out: list[ast.expr] = []
        for field_name, value in ast.iter_fields(stmt):
            if field_name in _BLOCK_FIELDS or field_name == "handlers":
                continue
            if isinstance(value, ast.expr):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, ast.expr))
        return out

    # -- mutation detection ---------------------------------------------------

    def _hit(
        self, ctx: FileContext, cls_name: str, method: str, attr: str,
        node: ast.AST, how: str,
    ) -> Finding:
        return ctx.finding(
            self,
            node,
            f"self.{attr} is lock-guarded elsewhere in {cls_name} but "
            f"{how} here without holding the lock",
            symbol=f"{cls_name}.{method}:{attr}",
        )

    def _flag_simple(
        self,
        ctx: FileContext,
        cls_name: str,
        method: str,
        stmt: ast.stmt,
        guarded: set[str],
    ) -> Iterator[Finding]:
        """Findings for one simple (non-compound) statement."""
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            for sub in self._flatten_targets(target):
                attr = _self_attr(sub)
                if attr is not None and attr in guarded:
                    yield self._hit(ctx, cls_name, method, attr, sub, "assigned")
                elif isinstance(sub, ast.Subscript):
                    attr = _self_attr(sub.value)
                    if attr is not None and attr in guarded:
                        yield self._hit(
                            ctx, cls_name, method, attr, sub, "item-assigned"
                        )
        yield from self._flag_mutator_calls(ctx, cls_name, method, stmt, guarded)

    def _flag_mutator_calls(
        self,
        ctx: FileContext,
        cls_name: str,
        method: str,
        root: ast.AST,
        guarded: set[str],
    ) -> Iterator[Finding]:
        """In-place mutator calls (``self.X.append(...)``) under ``root``."""
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATORS
            ):
                attr = _self_attr(node.func.value)
                if attr is not None and attr in guarded:
                    yield self._hit(
                        ctx, cls_name, method, attr, node,
                        f"mutated via .{node.func.attr}()",
                    )

    @staticmethod
    def _flatten_targets(target: ast.expr) -> list[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[ast.expr] = []
            for element in target.elts:
                out.extend(LockDisciplineRule._flatten_targets(element))
            return out
        return [target]
