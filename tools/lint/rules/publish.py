"""REP011: publish protocol -- fsync staged artifacts before the rename.

The covfile/product-store protocol (docs/COVFILE_PROTOCOL.md,
docs/PRODUCT_SERVICE.md) publishes artifacts by staging them next to the
final path, flushing them to disk, then atomically renaming.  Skipping
the flush step re-introduces the torn-file window the protocol exists to
close: after a crash the *published* path can hold a zero-length or
partial file, and every reader trusts published paths.

Two checks:

- **Unflushed replace** (dataflow): a token written via ``write_text`` /
  ``write_bytes`` / ``np.savez`` / ``shutil.copyfile`` / ``tofile`` /
  an ``open()`` handle is *dirty* until an ``fsync``-family call (or a
  ``flush``) touches it.  ``os.replace``/``os.rename`` (and the
  ``Path.replace`` method) on a dirty token is flagged.  The
  ``repro.util.fsio.durable_replace`` helper is the blessed one-call
  spelling and never flagged.
- **Direct write to a published path** (lexical): any path that appears
  as a replace *destination* somewhere in the file is store-visible; a
  direct ``write_text``/``write_bytes``/numpy save onto it bypasses the
  staging idiom entirely and is flagged wherever it happens.

With the interprocedural layer (``FileContext.project``) the dataflow
check sees through project helpers via their effect summaries: a helper
that fsyncs its parameter cleans the token, one that writes it dirties
it, and one that hides the ``os.replace`` inside (without fsyncing) is a
flagged replace at the *call site* -- exactly the defect a per-function
view cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import (
    FileContext,
    Finding,
    ImportAliases,
    Rule,
    enclosing_symbols,
    register,
    resolve_dotted,
)
from tools.lint import vocab
from tools.lint.dataflow import analyze_forward, build_cfg, iter_function_defs
from tools.lint.summaries import call_param_effects

#: numpy savers whose first positional argument is the target path.
#: (Shared with the effect-summary engine -- see :mod:`tools.lint.vocab`.)
_NUMPY_SAVERS = vocab.NUMPY_SAVERS

#: shutil copiers whose second positional argument is the target path.
_SHUTIL_COPIERS = vocab.SHUTIL_COPIERS

#: Path methods that write their receiver.
_WRITE_METHODS = vocab.WRITE_METHODS

_DIRTY, _CLEAN = "dirty", "clean"


def _token(expr: ast.expr) -> str | None:
    """Canonical token of a path expression: bare name or ``self.attr``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    return None


def _base_token(expr: ast.expr) -> str | None:
    """Token of the base path in a derived expression (``tmp / "x"``)."""
    direct = _token(expr)
    if direct is not None:
        return direct
    if isinstance(expr, ast.BinOp):
        return _base_token(expr.left)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        # tmp.with_suffix(...).write_text(...) style chains.
        return _base_token(expr.func.value)
    if isinstance(expr, ast.Attribute):
        return _base_token(expr.value)
    return None


def _calls_in_order(stmt: ast.AST) -> list[ast.Call]:
    """Call nodes under a statement, outermost-first lexical order."""
    return [n for n in ast.walk(stmt) if isinstance(n, ast.Call)]


class _Effects:
    """Classified side effects of one call on the path-token lattice."""

    __slots__ = ("dirty", "clean", "replace")

    def __init__(self):
        self.dirty: list[str] = []
        self.clean: list[str] = []
        self.replace: ast.Call | None = None  # sink with dirty source


def _classify(
    call: ast.Call, aliases: dict[str, str], handle_paths: dict[str, str]
) -> _Effects:
    fx = _Effects()
    resolved = resolve_dotted(call.func, aliases)
    terminal = (
        call.func.attr
        if isinstance(call.func, ast.Attribute)
        else call.func.id if isinstance(call.func, ast.Name) else None
    )

    if resolved in _NUMPY_SAVERS and call.args:
        t = _base_token(call.args[0])
        if t:
            fx.dirty.append(t)
        return fx
    if resolved in _SHUTIL_COPIERS and len(call.args) >= 2:
        t = _base_token(call.args[1])
        if t:
            fx.dirty.append(t)
        return fx
    if resolved in ("os.replace", "os.rename"):
        fx.replace = call
        return fx
    if terminal == "durable_replace":
        # The blessed helper fsyncs internally; it also leaves the staged
        # source clean (it no longer exists under that name).
        if call.args:
            t = _base_token(call.args[0])
            if t:
                fx.clean.append(t)
        return fx
    if terminal is not None and "fsync" in terminal:
        for arg in call.args:
            t = _base_token(arg)
            if t:
                fx.clean.append(handle_paths.get(t, t))
        return fx

    if isinstance(call.func, ast.Attribute):
        recv = call.func.value
        attr = call.func.attr
        if attr in _WRITE_METHODS:
            t = _base_token(recv)
            if t:
                fx.dirty.append(t)
        elif attr == "tofile" and call.args:
            t = _base_token(call.args[0])
            if t:
                fx.dirty.append(t)
        elif attr == "write":
            t = _token(recv)
            if t and t in handle_paths:
                fx.dirty.append(handle_paths[t])
        elif attr == "flush":
            t = _token(recv)
            if t:
                fx.clean.append(handle_paths.get(t, t))
        elif attr in ("replace", "rename") and len(call.args) == 1:
            # Path.replace(target): receiver is the staged source.
            fx.replace = call
    return fx


def _replace_source_dest(
    call: ast.Call, aliases: dict[str, str]
) -> tuple[ast.expr | None, ast.expr | None]:
    """(source, destination) path expressions of a replace sink."""
    resolved = resolve_dotted(call.func, aliases)
    if resolved in ("os.replace", "os.rename"):
        args = list(call.args)
        src = args[0] if len(args) >= 1 else None
        dst = args[1] if len(args) >= 2 else None
        for kw in call.keywords:
            if kw.arg == "src":
                src = kw.value
            elif kw.arg in ("dst", "target"):
                dst = kw.value
        return src, dst
    if isinstance(call.func, ast.Attribute) and call.func.attr in (
        "replace",
        "rename",
    ):
        return call.func.value, call.args[0] if call.args else None
    return None, None


@register
class PublishProtocolRule(Rule):
    """Flag atomic renames of unflushed artifacts and non-staged writes."""

    id = "REP011"
    name = "publish-protocol"
    summary = (
        "os.replace onto a store-visible path must be preceded by an "
        "fsync/flush of the staged artifact; published paths are never "
        "written directly"
    )
    explanation = """\
`os.replace` makes the *name* atomic, not the *data*: if the staged file
is still sitting in the page cache when the machine dies, the published
path points at a torn or empty file after reboot.  Readers trust
published paths (that is the protocol's whole point), so the flush is
mandatory before the rename -- and writing a published path in place is
never allowed.

Bad:
    tmp.write_text(json.dumps(head))
    os.replace(tmp, self.head_path)         # page cache only

    self.head_path.write_text(...)          # readers see a torn file

Good:
    tmp.write_text(json.dumps(head))
    fsync_path(tmp)                         # repro.util.fsio
    os.replace(tmp, self.head_path)

    # or the one-call spelling:
    durable_replace(tmp, self.head_path)
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Dataflow over each function plus the lexical published-path scan."""
        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        symbols = enclosing_symbols(ctx.tree)
        for func in iter_function_defs(ctx.tree):
            yield from self._check_function(ctx, func, aliases.aliases, symbols)
        yield from self._check_published_writes(ctx, aliases.aliases, symbols)

    # -- dataflow: dirty staged tokens through the CFG ---------------------

    @staticmethod
    def _handle_paths(func, aliases: dict[str, str]) -> dict[str, str]:
        """Map file-handle names to the path token they write.

        Covers ``with token.open(...) as fh`` and ``fh = token.open(...)``.
        """
        out: dict[str, str] = {}

        def note(call: ast.expr, bound: ast.expr | None) -> None:
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "open"
                and isinstance(bound, ast.Name)
            ):
                t = _base_token(call.func.value)
                if t:
                    out[bound.id] = t

        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    note(item.context_expr, item.optional_vars)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                note(node.value, node.targets[0])
        return out

    def _check_function(
        self, ctx: FileContext, func, aliases: dict[str, str], symbols
    ) -> Iterator[Finding]:
        handle_paths = self._handle_paths(func, aliases)
        project = getattr(ctx, "project", None)
        relpath = ctx.relpath
        cfg = build_cfg(func)
        flagged: dict[int, tuple[ast.Call, str]] = {}

        def transfer(node, state: dict) -> dict:
            out = dict(state)
            stmt = node.stmt
            if stmt is None:
                return out
            # Compound statements are lowered to several CFG nodes; this
            # node only *executes* its header expression(s) -- the nested
            # blocks have their own nodes.
            if node.kind == "branch":
                roots = [getattr(stmt, "test", None) or getattr(stmt, "subject", None)]
            elif node.kind == "loop_head":
                roots = [getattr(stmt, "test", None) or getattr(stmt, "iter", None)]
            elif node.kind == "with":
                roots = [item.context_expr for item in stmt.items]
            elif node.kind in ("with_exit", "except", "entry", "exit"):
                roots = []
            else:
                roots = [stmt]
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                t = _token(stmt.targets[0])
                if t is not None and not isinstance(stmt.value, ast.Name):
                    out.pop(t, None)  # rebinding forgets old facts
            for root in roots:
                if root is not None:
                    self._apply_calls(
                        root, node, out, aliases, handle_paths, flagged,
                        project, relpath,
                    )
            return out

        def merge(a: dict, b: dict) -> dict:
            out = dict(a)
            for t, s in b.items():
                if out.get(t) == _CLEAN or t not in out:
                    out[t] = s
                elif s == _DIRTY:
                    out[t] = _DIRTY
            return out

        analyze_forward(cfg, {}, transfer, merge)
        for _, (call, token) in sorted(flagged.items()):
            qual = symbols.get(id(func), func.name)
            yield ctx.finding(
                self,
                call,
                f"atomic replace of {token} without fsync of the staged "
                "artifact; call repro.util.fsio.fsync_path() first or use "
                "durable_replace()",
                symbol=f"{qual}:replace:{token}",
            )

    @staticmethod
    def _apply_calls(
        root: ast.AST,
        node,
        out: dict,
        aliases: dict[str, str],
        handle_paths: dict[str, str],
        flagged: dict,
        project=None,
        relpath: str = "",
    ) -> None:
        """Apply the token effects of every call under one executed expr."""
        for call in _calls_in_order(root):
            fx = _classify(call, aliases, handle_paths)
            if (
                not fx.dirty
                and not fx.clean
                and fx.replace is None
                and project is not None
            ):
                # The lexical vocabulary saw nothing: consult the resolved
                # callee's effect summary so helpers that write / fsync /
                # replace their parameters act at this call site.
                summ, pairs = call_param_effects(project, relpath, call)
                if summ is not None:
                    for arg, idx in pairs:
                        t = _base_token(arg)
                        if t is None:
                            continue
                        if idx in summ.write_params:
                            out[t] = _DIRTY
                        if idx in summ.fsync_params:
                            out[t] = _CLEAN
                        if idx in summ.replace_src_params:
                            if out.get(t) == _DIRTY:
                                flagged.setdefault(node.index, (call, t))
                            out.pop(t, None)  # the staged name is gone
                continue
            for t in fx.dirty:
                out[t] = _DIRTY
            for t in fx.clean:
                out[t] = _CLEAN
            if fx.replace is not None:
                src, _dst = _replace_source_dest(fx.replace, aliases)
                t = _base_token(src) if src is not None else None
                if t is not None and out.get(t) == _DIRTY:
                    flagged.setdefault(node.index, (fx.replace, t))
                if t is not None:
                    out.pop(t, None)  # the staged name is gone

    # -- lexical: direct writes to published destinations ------------------

    def _check_published_writes(
        self, ctx: FileContext, aliases: dict[str, str], symbols
    ) -> Iterator[Finding]:
        published: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_dotted(node.func, aliases)
            if isinstance(node.func, ast.Attribute):
                terminal = node.func.attr
            elif isinstance(node.func, ast.Name):
                terminal = node.func.id
            else:
                terminal = None
            if resolved in ("os.replace", "os.rename") or terminal in (
                "durable_replace",
            ):
                _src, dst = _replace_source_dest(node, aliases)
                if dst is None and terminal == "durable_replace":
                    dst = node.args[1] if len(node.args) >= 2 else None
                t = _token(dst) if dst is not None else None
                # Only self-attribute destinations are store-visible state
                # we can track reliably across methods.
                if t is not None and t.startswith("self."):
                    published.add(t)
        if not published:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target: str | None = None
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITE_METHODS
            ):
                target = _token(node.func.value)
            else:
                resolved = resolve_dotted(node.func, aliases)
                if resolved in _NUMPY_SAVERS and node.args:
                    target = _token(node.args[0])
            if target in published:
                qual = symbols.get(id(node), "<module>")
                yield ctx.finding(
                    self,
                    node,
                    f"direct write to published path {target}; stage to a "
                    "temporary, fsync, then atomically replace "
                    "(docs/COVFILE_PROTOCOL.md)",
                    symbol=f"{qual}:published-write:{target}",
                )
