"""REP006-REP008: static concurrency contracts for threaded classes.

Three rules over the same lexical model of lock usage:

- **REP006 lock-ordering**: per class, a lock-acquisition graph is built
  from ``with self._lock:`` nesting and ``self._lock.acquire()`` regions
  (including one level of indirection through calls to the class's own
  methods); any cycle is a potential deadlock, and nested re-acquisition
  of a non-reentrant lock is a guaranteed one.
- **REP007 exception-safe locking**: a bare ``.acquire()`` must be paired
  with a ``.release()`` in a ``try/finally`` (or be replaced by a
  ``with`` statement), otherwise an exception between the two leaves the
  lock held forever.
- **REP008 no-blocking-under-lock**: no sleeping, file/socket I/O,
  subprocesses, ``Thread.join`` or blocking queue operations while a
  lock is held -- a blocked lock-holder stalls every other thread that
  needs the lock (and can deadlock outright if the awaited party needs
  it too).

The lock vocabulary (which constructors make an attribute or local a
lock, and which are reentrant) is shared with REP003 via
:data:`tools.lint.rules.locks.LOCK_FACTORY_KINDS`, so code migrated to
the runtime sanitizer's ``new_lock()`` factories stays covered.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from tools.lint.core import (
    FileContext,
    Finding,
    ImportAliases,
    Rule,
    register,
    resolve_dotted,
)
from tools.lint import vocab
from tools.lint.rules.locks import LOCK_FACTORY_KINDS, _self_attr

#: Statement fields holding nested statement blocks.
_BLOCK_FIELDS = ("body", "orelse", "finalbody")


def _lock_attribute_kinds(
    cls: ast.ClassDef, aliases: dict[str, str]
) -> dict[str, bool]:
    """``self.X`` lock attributes of a class, mapped to reentrancy."""
    kinds: dict[str, bool] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        factory = resolve_dotted(node.value.func, aliases)
        if factory not in LOCK_FACTORY_KINDS:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                kinds[attr] = LOCK_FACTORY_KINDS[factory]
    return kinds


def _local_lock_names(
    func: ast.AST, aliases: dict[str, str]
) -> dict[str, bool]:
    """Local names bound to a lock factory inside one function."""
    kinds: dict[str, bool] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        factory = resolve_dotted(node.value.func, aliases)
        if factory not in LOCK_FACTORY_KINDS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                kinds[target.id] = LOCK_FACTORY_KINDS[factory]
    return kinds


def _lock_param_names(func: ast.AST) -> set[str]:
    """Parameters whose name marks them as a lock handed in by the caller."""
    out: set[str] = set()
    args = getattr(func, "args", None)
    if args is None:
        return out
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        for arg in group:
            if arg.arg == "lock" or arg.arg.endswith("_lock"):
                out.add(arg.arg)
    return out


def _acquire_receiver(stmt: ast.stmt) -> ast.expr | None:
    """The ``X`` of a statement-level ``X.acquire(...)`` call, else None."""
    value = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "acquire"
    ):
        return value.func.value
    return None


def _release_receiver(stmt: ast.stmt) -> ast.expr | None:
    """The ``X`` of a statement-level ``X.release()`` call, else None."""
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "release"
    ):
        return stmt.value.func.value
    return None


def _file_lock_tokens(tree: ast.Module, aliases: dict[str, str]) -> set[str]:
    """Every ``self.X`` / bare-name token assigned a lock factory result."""
    tokens: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        if resolve_dotted(node.value.func, aliases) not in LOCK_FACTORY_KINDS:
            continue
        for target in node.targets:
            token = _lock_token(target)
            if token is not None:
                tokens.add(token)
    return tokens


def _lock_token(node: ast.expr) -> str | None:
    """Canonical token for a lock expression: ``self.X`` or a bare name."""
    attr = _self_attr(node)
    if attr is not None:
        return f"self.{attr}"
    if isinstance(node, ast.Name):
        return node.id
    return None


# -- REP006: per-class lock-ordering graph ------------------------------------


@dataclass
class _MethodLocks:
    """Lock facts collected from one method body."""

    #: Direct ordering edges (held -> acquired) with their witness node.
    edges: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    #: Nested re-acquisitions of a non-reentrant lock.
    self_deadlocks: list[tuple[str, ast.AST]] = field(default_factory=list)
    #: Locks this method acquires anywhere (for call propagation).
    acquires: set[str] = field(default_factory=set)
    #: ``self.m()`` call sites with the lock tokens held at the call.
    calls: list[tuple[frozenset, str, ast.AST]] = field(default_factory=list)


class _LockGraphBuilder:
    """Walk one method, tracking the lexically held locks in order."""

    def __init__(self, lock_kinds: dict[str, bool], method_names: set[str]):
        self.lock_kinds = lock_kinds  # token -> reentrant
        self.method_names = method_names
        self.info = _MethodLocks()

    def walk(self, body: list[ast.stmt]) -> _MethodLocks:
        """Entry point: analyze a method body with nothing held."""
        self._block(body, [])
        return self.info

    # -- helpers -----------------------------------------------------------

    def _acquire(self, token: str, held: list[str], node: ast.AST) -> None:
        self.info.acquires.add(token)
        if token in held:
            if not self.lock_kinds.get(token, False):
                self.info.self_deadlocks.append((token, node))
            return
        for h in held:
            self.info.edges.append((h, token, node))

    def _note_calls(self, root: ast.AST, held: list[str]) -> None:
        """Record ``self.method(...)`` calls under the current held set."""
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in self.method_names
            ):
                self.info.calls.append((frozenset(held), node.func.attr, node))

    def _with_tokens(self, stmt: ast.With | ast.AsyncWith) -> list[tuple[str, ast.AST]]:
        out: list[tuple[str, ast.AST]] = []
        for item in stmt.items:
            token = _lock_token(item.context_expr)
            if token is not None and token in self.lock_kinds:
                out.append((token, item.context_expr))
        return out

    # -- statement walk ----------------------------------------------------

    def _block(self, body: list[ast.stmt], held: list[str]) -> None:
        held = list(held)
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                tokens = self._with_tokens(stmt)
                inner = list(held)
                for token, node in tokens:
                    self._acquire(token, inner, node)
                    if token not in inner:
                        inner.append(token)
                self._note_calls_header(stmt, held)
                self._block(stmt.body, inner)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function may run later / on another thread; its
                # body starts with nothing held.
                self._block(stmt.body, [])
                continue
            receiver = _acquire_receiver(stmt)
            if receiver is not None:
                token = _lock_token(receiver)
                if token is not None and token in self.lock_kinds:
                    self._acquire(token, held, stmt)
                    if token not in held:
                        held.append(token)
                    continue
            receiver = _release_receiver(stmt)
            if receiver is not None:
                token = _lock_token(receiver)
                if token is not None and token in held:
                    held.remove(token)
                    continue
            if any(getattr(stmt, f, None) for f in _BLOCK_FIELDS) or getattr(
                stmt, "handlers", None
            ):
                self._note_calls_header(stmt, held)
                for field_name in _BLOCK_FIELDS:
                    block = getattr(stmt, field_name, None)
                    if block:
                        self._block(block, held)
                for handler in getattr(stmt, "handlers", []):
                    self._block(handler.body, held)
            else:
                self._note_calls(stmt, held)

    def _note_calls_header(self, stmt: ast.stmt, held: list[str]) -> None:
        """Calls in a compound statement's header expressions."""
        for field_name, value in ast.iter_fields(stmt):
            if field_name in _BLOCK_FIELDS or field_name == "handlers":
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                if isinstance(v, ast.expr):
                    self._note_calls(v, held)
            if field_name == "items":  # with-items: header expressions too
                for item in values:
                    if isinstance(item, ast.withitem):
                        self._note_calls(item.context_expr, held)


def _strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC over a small adjacency dict (deterministic order)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph.get(v, ())):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            component: list[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            sccs.append(sorted(component))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sccs


@register
class LockOrderingRule(Rule):
    """Flag cyclic lock-acquisition orders inside one class."""

    id = "REP006"
    name = "lock-ordering"
    summary = (
        "a class must acquire its locks in one global order; cyclic "
        "with/acquire nesting (even through its own method calls) can deadlock"
    )
    explanation = """\
If method A takes lock1 then lock2 while method B takes lock2 then lock1,
two threads running A and B concurrently can each hold one lock and wait
forever for the other.  The rule builds each class's lock-acquisition
graph from `with self._lock:` nesting and `.acquire()` regions, follows
calls to the class's own methods one level deep, and flags every cycle.
Re-acquiring a held non-reentrant Lock is reported as a guaranteed
self-deadlock.

Bad:
    def fold(self):
        with self._acc_lock:
            with self._events_lock: ...
    def log(self):
        with self._events_lock:
            with self._acc_lock: ...      # opposite order: cycle

Good: pick one order (document it in docs/CONCURRENCY.md) and keep both
paths on it -- or restructure so no path holds both locks at once:
    def log(self):
        with self._events_lock: ...
        with self._acc_lock: ...          # sequential, never nested
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Analyze every class owning two or more recognized locks."""
        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        if not aliases.aliases:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node, aliases.aliases)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        attr_kinds = _lock_attribute_kinds(cls, aliases)
        methods = [
            m for m in cls.body if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        method_names = {m.name for m in methods}
        infos: dict[str, _MethodLocks] = {}
        for method in methods:
            lock_kinds = {f"self.{k}": v for k, v in attr_kinds.items()}
            lock_kinds.update(_local_lock_names(method, aliases))
            lock_kinds.update({p: False for p in _lock_param_names(method)})
            if not lock_kinds:
                continue
            builder = _LockGraphBuilder(lock_kinds, method_names)
            infos[method.name] = builder.walk(method.body)

        # Guaranteed self-deadlocks first (independent of other methods).
        for name, info in infos.items():
            for token, node in info.self_deadlocks:
                yield ctx.finding(
                    self,
                    node,
                    f"nested re-acquisition of non-reentrant lock {token} in "
                    f"{cls.name}.{name} is a guaranteed self-deadlock",
                    symbol=f"{cls.name}.{name}:self-deadlock:{token}",
                )

        # Propagate acquisitions through the class's own method calls
        # (fixpoint over the call graph, self.X tokens only -- locals do
        # not escape their function).
        trans: dict[str, set[str]] = {
            name: {t for t in info.acquires if t.startswith("self.")}
            for name, info in infos.items()
        }
        changed = True
        while changed:
            changed = False
            for name, info in infos.items():
                for _, callee, _ in info.calls:
                    extra = trans.get(callee, set()) - trans[name]
                    if extra:
                        trans[name] |= extra
                        changed = True

        edges: dict[tuple[str, str], ast.AST] = {}
        reported_call_deadlocks: set[str] = set()
        for info in infos.values():
            for a, b, node in info.edges:
                edges.setdefault((a, b), node)
            for held, callee, node in info.calls:
                callee_locks = trans.get(callee, set())
                for a in held:
                    for b in callee_locks:
                        if a != b:
                            edges.setdefault((a, b), node)
                    reentrant = a.startswith("self.") and attr_kinds.get(
                        a[len("self."):], False
                    )
                    if a in callee_locks and not reentrant and (
                        a not in reported_call_deadlocks
                    ):
                        reported_call_deadlocks.add(a)
                        yield ctx.finding(
                            self,
                            node,
                            f"{cls.name} method call re-acquires held "
                            f"non-reentrant lock {a} (self-deadlock)",
                            symbol=f"{cls.name}:call-self-deadlock:{a}",
                        )

        graph: dict[str, set[str]] = {}
        for (a, b), _node in edges.items():
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            witness = min(
                (
                    edges[(a, b)]
                    for (a, b) in edges
                    if a in component and b in component
                ),
                key=lambda n: getattr(n, "lineno", 1),
            )
            cycle = " <-> ".join(component)
            yield ctx.finding(
                self,
                witness,
                f"lock-ordering cycle in {cls.name}: {cycle}; two threads "
                "taking these locks in opposite orders can deadlock",
                symbol=f"{cls.name}:cycle:{'+'.join(component)}",
            )


# -- REP007: exception-safe acquire/release -----------------------------------


@register
class ExceptionSafeLockRule(Rule):
    """Flag ``.acquire()`` calls without a try/finally ``release()``."""

    id = "REP007"
    name = "exception-safe-locking"
    summary = (
        "every .acquire() must release in a try/finally (or use a with "
        "statement); an exception in between leaks the lock forever"
    )
    explanation = """\
If code raises between `lock.acquire()` and `lock.release()`, the lock
stays held and every other thread that needs it hangs.  The `with`
statement is the correct spelling; where acquire/release must be
explicit, the release belongs in a `finally`.

Bad:
    self._lock.acquire()
    self._items.append(x)       # raises -> lock leaked
    self._lock.release()

Good:
    with self._lock:
        self._items.append(x)

    # or, when with is impossible:
    self._lock.acquire()
    try:
        self._items.append(x)
    finally:
        self._lock.release()

Delegating wrappers (`return self._inner.acquire(...)`) are exempt: the
caller owns the pairing.  Genuine hand-over-hand locking patterns carry
an explicit `# repro-lint: disable=REP007` with a justification.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Scan every statement block for unpaired lock ``.acquire()``s."""
        from tools.lint.core import enclosing_symbols

        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        lock_tokens = _file_lock_tokens(ctx.tree, aliases.aliases)
        symbols = enclosing_symbols(ctx.tree)
        guarded = _acquire_guarded_by_enclosing_try(ctx.tree)
        for node in ast.walk(ctx.tree):
            blocks = [
                block
                for f in _BLOCK_FIELDS
                if isinstance(block := getattr(node, f, None), list)
            ]
            blocks.extend(h.body for h in getattr(node, "handlers", []))
            for body in blocks:
                yield from self._check_block(ctx, body, symbols, guarded, lock_tokens)

    def _check_block(
        self,
        ctx,
        body: list[ast.stmt],
        symbols,
        guarded: set[int],
        lock_tokens: set[str],
    ) -> Iterator[Finding]:
        for i, stmt in enumerate(body):
            receiver = _acquire_receiver(stmt)
            if receiver is None:
                continue
            token = _lock_token(receiver)
            if token is None:
                continue
            # Only receivers known (or named) to be locks: Node.acquire()
            # in the scheduler is core accounting, not a lock.
            if token not in lock_tokens and not token.lower().endswith("lock"):
                continue
            if id(stmt) in guarded:
                continue
            if self._followed_by_guarded_release(body, i, receiver):
                continue
            qual = symbols.get(id(stmt), "<module>")
            yield ctx.finding(
                self,
                stmt,
                f"{token}.acquire() is not released in a try/finally; "
                "use a with statement or release in finally",
                symbol=f"{qual}:{token}",
            )

    @staticmethod
    def _releases(body: list[ast.stmt], receiver: ast.expr) -> bool:
        want = ast.dump(receiver)
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"
                    and ast.dump(node.func.value) == want
                ):
                    return True
        return False

    def _followed_by_guarded_release(
        self, body: list[ast.stmt], i: int, receiver: ast.expr
    ) -> bool:
        """``X.acquire()`` directly followed by ``try: ... finally: X.release()``."""
        if i + 1 >= len(body):
            return False
        nxt = body[i + 1]
        return (
            isinstance(nxt, ast.Try)
            and bool(nxt.finalbody)
            and self._releases(nxt.finalbody, receiver)
        )


def _acquire_guarded_by_enclosing_try(tree: ast.Module) -> set[int]:
    """ids of acquire-call statements covered by an enclosing try/finally."""
    guarded: set[int] = set()

    def visit(node: ast.AST, finallies: list[list[ast.stmt]]) -> None:
        if isinstance(node, ast.Try):
            inner = finallies + ([node.finalbody] if node.finalbody else [])
            for child in node.body:
                visit(child, inner)
            for handler in node.handlers:
                for child in handler.body:
                    visit(child, inner)
            for child in node.orelse:
                visit(child, inner)
            for child in node.finalbody:
                visit(child, finallies)
            return
        receiver = _acquire_receiver(node) if isinstance(node, ast.stmt) else None
        if receiver is not None:
            want = ast.dump(receiver)
            for finalbody in finallies:
                for stmt in finalbody:
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "release"
                            and ast.dump(sub.func.value) == want
                        ):
                            guarded.add(id(node))
        for child in ast.iter_child_nodes(node):
            visit(child, finallies)

    visit(tree, [])
    return guarded


# -- REP008: no blocking operations under a held lock -------------------------

#: Blocking-call vocabulary, shared with the interprocedural effect
#: summaries so REP008/REP010 and the summary engine classify calls
#: identically (see :mod:`tools.lint.vocab`).
_BLOCKING_RESOLVED = vocab.BLOCKING_RESOLVED

#: pathlib-style I/O method names that hit the filesystem.
_IO_METHODS = vocab.IO_METHODS

#: numpy file I/O, resolved through import aliases.
_NUMPY_IO = vocab.NUMPY_IO

#: Constructors marking a local/attribute as a blocking queue.
_QUEUE_FACTORIES = vocab.QUEUE_FACTORIES


@register
class NoBlockingUnderLockRule(Rule):
    """Flag blocking calls (sleep/io/join/subprocess/queue) under a lock."""

    id = "REP008"
    name = "no-blocking-under-lock"
    summary = (
        "no time.sleep, file/socket I/O, subprocess, Thread.join or "
        "blocking queue ops while holding a lock"
    )
    explanation = """\
A lock-holder that sleeps, waits on I/O, joins a thread or blocks on a
queue stalls every thread contending for that lock -- and deadlocks
outright if the awaited party needs the lock to make progress (e.g.
joining a thread that is blocked acquiring the lock you hold).

Bad:
    with self._events_lock:
        time.sleep(self.poll_interval)      # every logger now waits
        self._events.append(event)

Good: compute under the lock, block outside it:
    with self._events_lock:
        self._events.append(event)
    time.sleep(self.poll_interval)

Flagged while a recognized lock is held: time.sleep, subprocess.*,
socket.*, os.system/popen/waitpid, open(), Path read/write helpers,
numpy file I/O, .join() on threads created in the same scope, and
queue get()/put() without block=False (the *_nowait variants are fine).
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Scan functions that take recognized locks for blocking calls."""
        from tools.lint.core import enclosing_symbols

        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        symbols = enclosing_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                attr_kinds = _lock_attribute_kinds(node, aliases.aliases)
                for method in node.body:
                    if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_function(
                            ctx, method, attr_kinds, aliases.aliases, symbols
                        )
        # Module-level functions (no self locks, but locals/params count).
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node, {}, aliases.aliases, symbols)

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.AST,
        attr_kinds: dict[str, bool],
        aliases: dict[str, str],
        symbols: dict[int, str],
    ) -> Iterator[Finding]:
        lock_tokens = {f"self.{k}" for k in attr_kinds}
        lock_tokens.update(_local_lock_names(func, aliases))
        lock_tokens.update(_lock_param_names(func))
        if not lock_tokens:
            return
        thread_names = self._thread_locals(func, aliases)
        queue_names = self._queue_locals(func, aliases)
        yield from self._block(
            ctx, func, func.body, False, lock_tokens, thread_names,
            queue_names, aliases, symbols,
        )

    @staticmethod
    def _thread_locals(func: ast.AST, aliases: dict[str, str]) -> set[str]:
        """Names bound to ``threading.Thread(...)`` in this function."""
        names: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and resolve_dotted(node.value.func, aliases) == "threading.Thread"
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _queue_locals(func: ast.AST, aliases: dict[str, str]) -> set[str]:
        """Names bound to a queue constructor in this function."""
        names: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and resolve_dotted(node.value.func, aliases) in _QUEUE_FACTORIES
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _block(
        self,
        ctx: FileContext,
        func: ast.AST,
        body: list[ast.stmt],
        locked: bool,
        lock_tokens: set[str],
        thread_names: set[str],
        queue_names: set[str],
        aliases: dict[str, str],
        symbols: dict[int, str],
    ) -> Iterator[Finding]:
        held = locked
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                if held:
                    # `with open(...)` under a held lock blocks in the header.
                    yield from self._flag_exprs(
                        ctx, [item.context_expr for item in stmt.items],
                        thread_names, queue_names, aliases, symbols,
                    )
                inner = held or any(
                    (_lock_token(item.context_expr) or "") in lock_tokens
                    for item in stmt.items
                )
                yield from self._block(
                    ctx, func, stmt.body, inner, lock_tokens, thread_names,
                    queue_names, aliases, symbols,
                )
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._block(
                    ctx, func, stmt.body, False, lock_tokens, thread_names,
                    queue_names, aliases, symbols,
                )
                continue
            receiver = _acquire_receiver(stmt)
            if receiver is not None and (_lock_token(receiver) or "") in lock_tokens:
                held = True
                continue
            receiver = _release_receiver(stmt)
            if receiver is not None and (_lock_token(receiver) or "") in lock_tokens:
                held = False
                continue
            if any(getattr(stmt, f, None) for f in _BLOCK_FIELDS) or getattr(
                stmt, "handlers", None
            ):
                if held:
                    yield from self._flag_exprs(
                        ctx, self._header_exprs(stmt), thread_names, queue_names,
                        aliases, symbols,
                    )
                for field_name in _BLOCK_FIELDS:
                    block = getattr(stmt, field_name, None)
                    if block:
                        yield from self._block(
                            ctx, func, block, held, lock_tokens, thread_names,
                            queue_names, aliases, symbols,
                        )
                for handler in getattr(stmt, "handlers", []):
                    yield from self._block(
                        ctx, func, handler.body, held, lock_tokens, thread_names,
                        queue_names, aliases, symbols,
                    )
                # acquire(); try: ... finally: release() -- the release
                # buried in the compound ends the held region.
                if held and self._releases_within(stmt, lock_tokens):
                    held = False
            elif held:
                yield from self._flag_exprs(
                    ctx, [stmt], thread_names, queue_names, aliases, symbols
                )

    @staticmethod
    def _releases_within(stmt: ast.stmt, lock_tokens: set[str]) -> bool:
        """A statement-level ``X.release()`` on a known lock inside stmt."""
        for node in ast.walk(stmt):
            if isinstance(node, ast.stmt):
                receiver = _release_receiver(node)
                if receiver is not None and (
                    (_lock_token(receiver) or "") in lock_tokens
                ):
                    return True
        return False

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.AST]:
        out: list[ast.AST] = []
        for field_name, value in ast.iter_fields(stmt):
            if field_name in _BLOCK_FIELDS or field_name == "handlers":
                continue
            values = value if isinstance(value, list) else [value]
            out.extend(v for v in values if isinstance(v, (ast.expr, ast.withitem)))
        return out

    def _flag_exprs(
        self,
        ctx: FileContext,
        roots: list[ast.AST],
        thread_names: set[str],
        queue_names: set[str],
        aliases: dict[str, str],
        symbols: dict[int, str],
    ) -> Iterator[Finding]:
        for root in roots:
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                why = self._blocking_reason(node, thread_names, queue_names, aliases)
                if why is None:
                    continue
                qual = symbols.get(id(node)) or symbols.get(id(root), "<module>")
                yield ctx.finding(
                    self,
                    node,
                    f"{why} while holding a lock; move the blocking call "
                    "outside the locked region",
                    symbol=f"{qual}:{why.split(' ')[0]}",
                )

    @staticmethod
    def _blocking_reason(
        node: ast.Call,
        thread_names: set[str],
        queue_names: set[str],
        aliases: dict[str, str],
    ) -> str | None:
        """Why this call blocks, or None if it does not."""
        resolved = resolve_dotted(node.func, aliases)
        if resolved is not None:
            for pattern in _BLOCKING_RESOLVED:
                if (
                    resolved == pattern
                    or (pattern.endswith(".") and resolved.startswith(pattern))
                ):
                    return f"{resolved} blocks"
            if resolved in _NUMPY_IO:
                return f"{resolved} does file I/O"
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            if "open" not in aliases:  # not shadowed by an import
                return "open() does file I/O"
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _IO_METHODS:
                return f".{attr}() does file I/O"
            if (
                attr == "join"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in thread_names
            ):
                return f"{node.func.value.id}.join() waits on a thread"
            if attr in ("get", "put"):
                receiver_is_queue = (
                    isinstance(node.func.value, ast.Name)
                    and node.func.value.id in queue_names
                )
                if receiver_is_queue and not any(
                    kw.arg == "block"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in node.keywords
                ):
                    return f"queue .{attr}() blocks"
        return None
