"""REP004: docstring coverage for public library items.

The AST twin of the original ``tools/check_docs.py`` runtime lint (whose
CLI now delegates to this rule): every ``repro.*`` module, public
top-level class/function and public method must carry a docstring.  Test
files and tooling are exempt -- the contract protects the library surface
other sessions build on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import FileContext, Finding, Rule, register


def _docstring(node: ast.AST) -> str:
    return (ast.get_docstring(node, clean=False) or "").strip()


def undocumented_in_tree(tree: ast.Module) -> list[tuple[int, str]]:
    """(line, item) pairs for every undocumented public item of a module.

    Items mirror the runtime docs lint: ``<module docstring>`` for the
    module itself, ``Name`` for top-level defs/classes and ``Class.meth``
    for public methods (including properties and nested public classes).
    """
    problems: list[tuple[int, str]] = []
    if not _docstring(tree):
        problems.append((1, "<module docstring>"))
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if node.name.startswith("_"):
            continue
        if not _docstring(node):
            problems.append((node.lineno, node.name))
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if not isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if member.name.startswith("_"):
                    continue
                if not _docstring(member):
                    problems.append((member.lineno, f"{node.name}.{member.name}"))
    return problems


@register
class DocstringRule(Rule):
    """Flag undocumented public classes, functions and methods."""

    id = "REP004"
    name = "docstring-coverage"
    summary = (
        "every repro.* module, public class/function and public method "
        "carries a docstring"
    )
    explanation = """\
Public library surface must be self-describing: module docstring, class
docstrings, and one per public function/method.  Names starting with an
underscore are exempt, as are test files and tools (only src/repro is in
scope).

Bad:
    def stage_sizes(self):
        return [...]

Good:
    def stage_sizes(self):
        \"\"\"Ensemble-size checkpoints for staged enlargement.\"\"\"
        return [...]

The standalone `python tools/check_docs.py [module ...]` entry point runs
exactly this rule and keeps its original output format.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Require docstrings on the public surface of repro modules."""
        if ctx.module_name is None or not ctx.module_name.startswith("repro"):
            return
        for line, item in undocumented_in_tree(ctx.tree):
            yield Finding(
                rule=self.id,
                path=ctx.relpath,
                line=line,
                message=f"undocumented public item: {item}",
                symbol=item,
            )
