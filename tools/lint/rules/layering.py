"""REP005: import layering -- the package DAG is a contract.

The allowed dependency graph of ``repro``'s subpackages is written down
here; any import introducing a new edge fails the lint.  The headline
constraints: ``util`` and ``telemetry`` are leaves (nothing above them may
be pulled in), and ``core`` -- the ESSE algorithm -- must never import the
execution layers (``workflow``/``sched``/``realtime``), so the algorithm
stays runnable under any execution substrate.

The graph is acyclic.  The scheduler simulator reuses the workflow's
fault/retry vocabulary (``sched -> workflow``); the reverse edge -- the
workflow DAG module reading the scheduler's calibrated task times -- was
broken by moving the Table 1 reference times into
``repro.core.taskmodel``, which both layers may import.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import FileContext, Finding, Rule, register

#: Allowed subpackage imports: package -> packages it may import.
#: ``<root>`` is top-level modules (repro/config.py, repro/__init__.py)
#: which, as composition roots, may import anything.
ALLOWED_IMPORTS: dict[str, set[str]] = {
    "util": set(),
    "telemetry": {"util"},
    "ocean": {"util", "core"},
    "core": {"util", "telemetry", "ocean", "obs"},
    "obs": {"util", "core", "ocean"},
    "acoustics": {"util", "core", "ocean"},
    "workflow": {"util", "telemetry", "core"},
    "sched": {"util", "telemetry", "core", "workflow"},
    "realtime": {
        "util",
        "telemetry",
        "core",
        "ocean",
        "obs",
        "acoustics",
        "workflow",
    },
    # The forecast-product service layer sits on top of the realtime
    # cycle: it stores/serves what realtime produces and must never be
    # imported back by anything beneath it (the cycle reaches it only
    # through the generic product_hook callable).
    "products": {"util", "telemetry", "realtime"},
}


def _imported_repro_packages(tree: ast.Module) -> list[tuple[ast.stmt, str]]:
    """(node, subpackage) for every import of ``repro.<subpackage>...``.

    Top-level module imports (``from repro import config``) map to
    ``<root>``.
    """
    edges: list[tuple[ast.stmt, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro":
                    edges.append((node, parts[1] if len(parts) > 1 else "<root>"))
        elif isinstance(node, ast.ImportFrom) and not node.level:
            if node.module is None:
                continue
            parts = node.module.split(".")
            if parts[0] != "repro":
                continue
            if len(parts) > 1:
                edges.append((node, parts[1]))
            else:
                # ``from repro import x``: x may be a subpackage or a
                # top-level module; resolve each name.
                for alias in node.names:
                    name = alias.name
                    edges.append(
                        (node, name if name in ALLOWED_IMPORTS else "<root>")
                    )
    return edges


@register
class LayeringRule(Rule):
    """Flag imports that add edges outside the package DAG."""

    id = "REP005"
    name = "import-layering"
    summary = (
        "repro subpackages may only import along the declared DAG; "
        "util/telemetry are leaves, core never imports workflow/sched/realtime"
    )
    explanation = """\
The allowed edges are declared in ALLOWED_IMPORTS
(tools/lint/rules/layering.py).  Keeping the ESSE algorithm (core) free of
execution-layer imports is what lets the same algorithm run under the
serial shepherd, the thread/process task pool, the sched simulator and the
realtime cycle.

Bad (inside src/repro/core/driver.py):
    from repro.workflow.parallel import ParallelESSEWorkflow

Good: invert the dependency -- the workflow imports core and drives it:
    # src/repro/workflow/parallel.py
    from repro.core.driver import ESSEConfig

A new legitimate edge is a design decision: add it to ALLOWED_IMPORTS in
the same PR that introduces it, with a justifying comment.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Check every ``repro.*`` import of a repro module against the DAG."""
        package = ctx.package
        if package is None or package == "<root>":
            return
        allowed = ALLOWED_IMPORTS.get(package)
        if allowed is None:
            yield Finding(
                rule=self.id,
                path=ctx.relpath,
                line=1,
                message=(
                    f"package {package!r} is not in the layering contract; "
                    "declare its allowed imports in tools/lint/rules/layering.py"
                ),
                symbol=f"unknown-package:{package}",
            )
            return
        for node, target in _imported_repro_packages(ctx.tree):
            if target == package or target in allowed:
                continue
            yield Finding(
                rule=self.id,
                path=ctx.relpath,
                line=node.lineno,
                message=(
                    f"layering violation: {package} may not import "
                    f"repro.{target} (allowed: "
                    f"{', '.join(sorted(allowed)) or 'nothing'})"
                ),
                symbol=f"{package}->{target}",
            )
