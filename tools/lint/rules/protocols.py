"""REP013: typestate protocols -- tokens obey their declared state machine.

The repo's lifecycle invariants are written down as declarative protocol
machines in :mod:`tools.lint.typestate` and checked here through the CFG
dataflow framework:

- **staged-publish**: a temp path staged with ``with_suffix``/``with_name``
  moves staged -> (written/fsynced) -> published exactly once; writing it
  after the replace, publishing twice, or leaking it unpublished on every
  path are violations (docs/COVFILE_PROTOCOL.md, docs/PRODUCT_SERVICE.md).
- **shm-buffer**: a ``SharedEnsembleBuffer`` slot is never used after
  ``close()``/``unlink()`` and never closed twice (owner closes then
  unlinks; workers only close their attached mapping).
- **job-lifecycle**: ``Job.state`` assignments follow the scheduler's
  QUEUED -> RUNNING -> DONE/FAILED/CANCELLED machine; DONE is terminal.

The checkers use *must*-violation semantics -- an event is flagged only
when **every** control-flow path reaching it leaves the token in a state
with no such transition -- so merges never manufacture false positives.
With the interprocedural layer, helper calls act on tokens through their
effect summaries (a helper that closes its parameter fires ``close`` at
the call site); tokens passed to unresolvable calls conservatively
escape the machine.

Declaring a new protocol is data, not code: add a ``ProtocolSpec`` (or
``AttrProtocolSpec``) to ``typestate.BUILTIN_PROTOCOLS`` -- see
docs/STATIC_ANALYSIS.md for a worked example.
"""

from __future__ import annotations

from typing import Iterator

from tools.lint.core import FileContext, Finding, Rule, enclosing_symbols, register
from tools.lint.dataflow import iter_function_defs
from tools.lint.typestate import (
    BUILTIN_ATTR_PROTOCOLS,
    BUILTIN_PROTOCOLS,
    AttrProtocolChecker,
    ProtocolChecker,
)


@register
class TypestateProtocolRule(Rule):
    """Run every built-in protocol machine over every function."""

    id = "REP013"
    name = "typestate-protocol"
    summary = (
        "staged temp paths, shared-memory buffers and Job.state must follow "
        "their declared protocol state machines (no use-after-close, no "
        "double publish, no illegal job transitions)"
    )
    explanation = """\
Lifecycle bugs hide in the orderings a type system cannot see: a staged
covariance file renamed twice, a shared-memory slot read after unlink, a
DONE job silently re-queued.  Each protocol is a small declarative state
machine (tools/lint/typestate.py); the rule walks every function's CFG
and flags an operation only when *every* path reaching it puts the token
in a state with no such transition.

Bad:
    buf = SharedEnsembleBuffer(dim, k)
    buf.close()
    buf.write_member(0, x)        # use after close

    tmp = path.with_suffix(".tmp")
    tmp.write_bytes(data)
    durable_replace(tmp, path)
    tmp.write_bytes(more)         # temp path no longer exists

    job.state = JobState.DONE
    job.state = JobState.QUEUED   # DONE is terminal

Good:
    buf = SharedEnsembleBuffer(dim, k)
    try:
        buf.write_member(0, x)
    finally:
        buf.close()
        buf.unlink()

New machines are declared as data (ProtocolSpec); see
docs/STATIC_ANALYSIS.md for how to add one.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Run token and attribute machines over each function."""
        project = getattr(ctx, "project", None)
        symbols = enclosing_symbols(ctx.tree)
        for func in iter_function_defs(ctx.tree):
            qual = symbols.get(id(func), func.name)
            for spec in BUILTIN_PROTOCOLS:
                checker = ProtocolChecker(spec, project=project, relpath=ctx.relpath)
                for line, message in checker.check(func):
                    yield Finding(
                        rule=self.id,
                        path=ctx.relpath,
                        line=line,
                        message=f"[{spec.name}] {message}",
                        symbol=f"{qual}:{spec.name}",
                    )
            for spec in BUILTIN_ATTR_PROTOCOLS:
                for line, message in AttrProtocolChecker(spec).check(func):
                    yield Finding(
                        rule=self.id,
                        path=ctx.relpath,
                        line=line,
                        message=f"[{spec.name}] {message}",
                        symbol=f"{qual}:{spec.name}",
                    )
