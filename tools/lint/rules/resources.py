"""REP009: resource lifecycle -- every acquire must release on every path.

Objects with an OS-level footprint (file handles from ``open``/
``Path.open``, ``np.memmap`` views, ``multiprocessing.shared_memory``
segments, the workflow's ``SharedEnsembleBuffer`` / covariance stores,
executors, sockets) must reach a release call (``close()`` / ``unlink()``
/ ``shutdown()`` / ``cleanup()``) on *every* control-flow path out of the
function that acquired them -- or be handed off explicitly.

The rule runs the :mod:`tools.lint.dataflow` obligation analysis over
each function: acquire sites create a PENDING obligation, releases and
``with`` management discharge it, and ownership-transfer *escapes* end
the function's responsibility:

- the resource is returned or yielded,
- it is stored on an object/container (``self.x = buf``, ``d[k] = buf``,
  ``handles.append(buf)``) -- the owner is now long-lived state,
- it is passed to a call on a line annotated
  ``# repro-lint: takes-ownership -- why``.

With the interprocedural layer (``FileContext.project``), ownership also
follows *calls*: ``x = make_buffer()`` is an acquire site when the
helper's effect summary says it returns a tracked resource; ``release(x)``
discharges the obligation when the helper closes its parameter;
``registry.stash(x)`` escapes it when the callee stores the parameter on
long-lived state; and ``y = passthrough(x)`` keeps the obligation alive
on ``y`` when the callee returns its argument.  A resolved callee that
touches none of these leaves the obligation PENDING -- passing a buffer
to a pure helper no longer launders the leak.

A site still PENDING at the function exit (on any path: merge keeps the
leak) is reported at the acquire line.  Exceptional edges from arbitrary
expressions are deliberately not modelled (see ``dataflow``): the rule
flags leaks on *explicit* paths -- early returns, branches, raises --
which is exactly where the PR-5/6 fault-path leaks lived.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import (
    FileContext,
    Finding,
    ImportAliases,
    Rule,
    enclosing_symbols,
    register,
    resolve_dotted,
)
from tools.lint import vocab
from tools.lint.dataflow import analyze_forward, build_cfg, iter_function_defs

#: Resolved dotted constructors whose result carries a release obligation.
#: (Shared with the effect-summary engine -- see :mod:`tools.lint.vocab`.)
RESOURCE_FACTORIES = vocab.RESOURCE_FACTORIES

#: Bare class names that carry an obligation even when the import cannot
#: be resolved (the repo's own resource classes are imported many ways).
RESOURCE_CLASS_NAMES = vocab.RESOURCE_CLASS_NAMES

#: Method calls that discharge the obligation on their receiver.
RELEASE_METHODS = vocab.RELEASE_METHODS

#: Method calls that store their argument for later cleanup (ownership
#: moves to the receiver: ExitStack.enter_context, list.append, ...).
SINK_METHODS = vocab.SINK_METHODS

_OWNERSHIP_MARK = "takes-ownership"

# Per-site obligation states.  Merge keeps PENDING if any path is
# pending; RELEASED/ESCAPED are both terminal-good.
_PENDING, _RELEASED, _ESCAPED = "pending", "released", "escaped"


def _acquire_call(call: ast.expr, aliases: dict[str, str]) -> str | None:
    """Human label of the resource a call acquires, or None."""
    if not isinstance(call, ast.Call):
        return None
    resolved = resolve_dotted(call.func, aliases)
    if resolved in RESOURCE_FACTORIES:
        return resolved
    if isinstance(call.func, ast.Name):
        if call.func.id == "open" and "open" not in aliases:
            return "open()"
        if call.func.id in RESOURCE_CLASS_NAMES:
            return call.func.id
    if isinstance(call.func, ast.Attribute):
        if call.func.attr in RESOURCE_CLASS_NAMES:
            return call.func.attr
        if call.func.attr == "open":
            # <path>.open(...): treat any .open() method as a file handle.
            return ".open()"
    return None


def _names_in(node: ast.AST) -> set[str]:
    """All bare ``Name`` identifiers appearing under a node."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _summary_effects(project, relpath: str, call: ast.Call):
    """Resolved-call effect lookup (see :func:`summaries.call_param_effects`)."""
    from tools.lint.summaries import call_param_effects

    return call_param_effects(project, relpath, call)


class _State:
    """Analysis state: variable env + per-site obligation status.

    Immutable by convention: transfer/merge build fresh instances.
    Sites are keyed ``(lineno, varname)`` of the acquire.
    """

    __slots__ = ("env", "status")

    def __init__(self, env: dict, status: dict):
        self.env = env  # var name -> site key
        self.status = status  # site key -> _PENDING/_RELEASED/_ESCAPED

    def __eq__(self, other):
        return (
            isinstance(other, _State)
            and self.env == other.env
            and self.status == other.status
        )

    def copy(self) -> "_State":
        return _State(dict(self.env), dict(self.status))


def _merge(a: _State, b: _State) -> _State:
    env = {k: v for k, v in a.env.items() if b.env.get(k) == v}
    status: dict = {}
    for site in set(a.status) | set(b.status):
        sa, sb = a.status.get(site), b.status.get(site)
        if sa is None:
            status[site] = sb
        elif sb is None:
            status[site] = sa
        elif _PENDING in (sa, sb):
            status[site] = _PENDING
        else:
            status[site] = sa  # released/escaped are equally discharged
    return _State(env, status)


@register
class ResourceLifecycleRule(Rule):
    """Flag acquire sites that can leak on some control-flow path."""

    id = "REP009"
    name = "resource-lifecycle"
    summary = (
        "files, memmaps, shared-memory buffers, executors and sockets must "
        "be released (close/unlink/shutdown) on every path, or ownership "
        "explicitly transferred"
    )
    explanation = """\
A shared-memory slot or memmap that misses its close()/unlink() on one
branch leaks until process exit -- and /dev/shm segments survive the
process.  The rule tracks each acquired resource through the function's
control-flow graph (branches, loops, try/finally, with, early returns)
and reports acquire sites whose obligation is still pending on any path
reaching the function exit.

Bad:
    buf = SharedEnsembleBuffer(n, k)
    if not ready:
        return None          # buf leaked on this path
    buf.close()

Good -- every path releases:
    buf = SharedEnsembleBuffer(n, k)
    try:
        if not ready:
            return None
    finally:
        buf.close()

or transfer ownership explicitly:
    buf = SharedEnsembleBuffer(n, k)
    self._buffers.append(buf)          # container owns it now
    return SharedView(buf)             # caller owns it now
    track(buf)  # repro-lint: takes-ownership -- registry closes it
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Run the obligation analysis over every function in the file."""
        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        symbols = enclosing_symbols(ctx.tree)
        ownership_lines = {
            lineno
            for lineno, text in enumerate(ctx.source.splitlines(), start=1)
            if _OWNERSHIP_MARK in text
        }
        for func in iter_function_defs(ctx.tree):
            yield from self._check_function(
                ctx, func, aliases.aliases, symbols, ownership_lines
            )

    def _check_function(
        self,
        ctx: FileContext,
        func,
        aliases: dict[str, str],
        symbols: dict[int, str],
        ownership_lines: set[int],
    ) -> Iterator[Finding]:
        project = getattr(ctx, "project", None)
        sites = self._acquire_sites(func, aliases, project, ctx.relpath)
        if not sites:
            return
        cfg = build_cfg(func)

        def transfer(node, state: _State) -> _State:
            return self._transfer(
                node, state, sites, aliases, ownership_lines, project, ctx.relpath
            )

        in_states = analyze_forward(cfg, _State({}, {}), transfer, _merge)
        exit_state = in_states.get(cfg.exit)
        if exit_state is None:
            return
        qual = symbols.get(id(func), func.name)
        for site, status in sorted(exit_state.status.items()):
            if status != _PENDING:
                continue
            lineno, var, label = site
            yield Finding(
                rule=self.id,
                path=ctx.relpath,
                line=lineno,
                message=(
                    f"{label} assigned to {var!r} may not be released on "
                    "every path; close/unlink it in a finally (or with), "
                    "or transfer ownership "
                    "(# repro-lint: takes-ownership -- why)"
                ),
                symbol=f"{qual}:{var}",
            )

    @staticmethod
    def _acquire_sites(
        func, aliases: dict[str, str], project=None, relpath: str = ""
    ) -> dict[int, tuple]:
        """Map Assign-node id -> site key for tracked acquires.

        With a project, ``x = make_buffer()`` acquires when the callee's
        summary says the return value carries a release obligation.
        """
        sites: dict[int, tuple] = {}
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                label = _acquire_call(node.value, aliases)
                if label is None and isinstance(node.value, ast.Call):
                    summ, _ = _summary_effects(project, relpath, node.value)
                    if summ is not None and summ.returns_resource is not None:
                        label = f"{summ.returns_resource} (via helper)"
                if label is not None:
                    var = node.targets[0].id
                    sites[id(node)] = (node.lineno, var, label)
        return sites

    def _transfer(
        self,
        node,
        state: _State,
        sites: dict[int, tuple],
        aliases: dict[str, str],
        ownership_lines: set[int],
        project=None,
        relpath: str = "",
    ) -> _State:
        out = state.copy()
        stmt = node.stmt
        if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._with_item(out, item, aliases)
            return out
        if node.kind in ("entry", "exit", "with_exit", "except", "loop_head"):
            return out
        if stmt is None:
            return out
        if isinstance(stmt, ast.Assign):
            self._assign(out, stmt, sites, ownership_lines, project, relpath)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            if stmt_value := getattr(stmt, "value", None):
                self._escape_names(out, _names_in(stmt_value))
        elif isinstance(stmt, ast.Expr):
            self._expr(out, stmt.value, ownership_lines, aliases, project, relpath)
        elif isinstance(stmt, (ast.If, ast.While)) or node.kind == "branch":
            pass  # tests don't move ownership
        return out

    def _with_item(self, out: _State, item: ast.withitem, aliases) -> None:
        expr = item.context_expr
        # `with <acquire>() as f:` -- managed, never an obligation; the
        # bound name must not shadow a tracked site.
        if isinstance(expr, ast.Call):
            # `with closing(buf):` / `with suppress(...)` args: a tracked
            # name passed into the manager is considered managed too.
            for name in _names_in(expr):
                site = out.env.get(name)
                if site is not None and out.status.get(site) == _PENDING:
                    out.status[site] = _RELEASED
        if isinstance(expr, ast.Name):
            site = out.env.get(expr.id)
            if site is not None and out.status.get(site) == _PENDING:
                out.status[site] = _RELEASED  # `with buf:` manages it
        if isinstance(item.optional_vars, ast.Name):
            out.env.pop(item.optional_vars.id, None)

    def _assign(
        self,
        out: _State,
        stmt: ast.Assign,
        sites,
        ownership_lines,
        project=None,
        relpath: str = "",
    ) -> None:
        site = sites.get(id(stmt))
        if site is not None:
            # Fresh acquire.  Rebinding over a pending site leaves the old
            # obligation pending -- that is the leak.
            out.env[site[1]] = site
            out.status[site] = _PENDING
            return
        target = stmt.targets[0] if len(stmt.targets) == 1 else None
        if isinstance(target, ast.Name):
            if isinstance(stmt.value, ast.Name):
                # Alias: y = x shares the site.
                src = out.env.get(stmt.value.id)
                if src is not None:
                    out.env[target.id] = src
                else:
                    out.env.pop(target.id, None)
                return
            if isinstance(stmt.value, ast.Call):
                marked = stmt.value.lineno in ownership_lines or getattr(
                    stmt.value, "end_lineno", stmt.value.lineno
                ) in ownership_lines
                if marked:
                    # The explicit annotation always wins over inference.
                    self._escape_call_args(out, stmt.value, always=True)
                elif self._call_moves(out, stmt.value, target, project, relpath):
                    return  # target aliases a still-live site
            out.env.pop(target.id, None)
            return
        # Attribute/subscript/tuple target: everything on the rhs escapes
        # into longer-lived storage.
        self._escape_names(out, _names_in(stmt.value))

    def _call_moves(
        self, out: _State, call: ast.Call, target: ast.Name, project, relpath
    ) -> bool:
        """Apply a call's ownership effects on its arguments.

        Returns True when the callee returns one of its arguments and the
        assignment target therefore aliases that argument's site (the
        obligation stays live under the new name).  Without a resolved
        summary the call is treated as ``wrapped = Wrapper(buf)``: the
        wrapper owns every argument now (conservative escape).
        """
        summ, pairs = _summary_effects(project, relpath, call)
        if summ is None or summ.unknown_calls:
            self._escape_call_args(out, call, always=True)
            return False
        aliased = False
        for arg, idx in pairs:
            if not isinstance(arg, ast.Name):
                self._escape_names(out, _names_in(arg))
                continue
            site = out.env.get(arg.id)
            if site is None:
                continue
            if idx in summ.close_params:
                out.status[site] = _RELEASED
            elif idx in summ.store_params:
                out.status[site] = _ESCAPED
            elif idx in summ.returns_params:
                out.env[target.id] = site
                aliased = True
            # Untouched parameters keep their pending obligation: the
            # resolved callee provably neither releases nor stores them.
        return aliased

    def _expr(
        self,
        out: _State,
        value: ast.expr,
        ownership_lines,
        aliases,
        project=None,
        relpath: str = "",
    ) -> None:
        if not isinstance(value, ast.Call):
            return
        func = value.func
        # Function-style release: os.close(fd) discharges fd's obligation.
        if (
            resolve_dotted(func, aliases) == "os.close"
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Name)
        ):
            site = out.env.get(value.args[0].id)
            if site is not None:
                out.status[site] = _RELEASED
            return
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            site = out.env.get(func.value.id)
            if site is not None and func.attr in RELEASE_METHODS:
                out.status[site] = _RELEASED
                return
            if func.attr in SINK_METHODS:
                self._escape_call_args(out, value, always=True)
                return
        if value.lineno in ownership_lines or getattr(
            value, "end_lineno", value.lineno
        ) in ownership_lines:
            # The explicit human annotation always wins over inference.
            self._escape_call_args(out, value, always=True)
            return
        summ, pairs = _summary_effects(project, relpath, value)
        if summ is not None:
            # Receiver of a bound method is the callee's parameter 0
            # (self): `buf.release_all()` where release_all closes self.
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                site = out.env.get(func.value.id)
                if site is not None:
                    if 0 in summ.close_params:
                        out.status[site] = _RELEASED
                    elif 0 in summ.store_params:
                        out.status[site] = _ESCAPED
            for arg, idx in pairs:
                if not isinstance(arg, ast.Name):
                    continue
                site = out.env.get(arg.id)
                if site is None:
                    continue
                if idx in summ.close_params:
                    out.status[site] = _RELEASED
                elif idx in summ.store_params or summ.unknown_calls:
                    out.status[site] = _ESCAPED

    def _escape_call_args(self, out: _State, call: ast.Call, always: bool) -> None:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            self._escape_names(out, _names_in(arg))

    @staticmethod
    def _escape_names(out: _State, names: set[str]) -> None:
        for name in names:
            site = out.env.get(name)
            if site is not None and out.status.get(site) == _PENDING:
                out.status[site] = _ESCAPED
