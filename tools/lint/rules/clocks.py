"""REP002: clock discipline -- all "now" flows through telemetry.clock.

The scheduler simulator runs on *virtual* time and the telemetry spans on
an *injectable* clock; a stray ``time.time()`` inside either produces
traces that mix wall and virtual seconds and breaks the FakeClock-based
timing tests.  Only :mod:`repro.telemetry.clock` may touch the process
clock; everything else takes a zero-argument callable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import (
    FileContext,
    Finding,
    ImportAliases,
    Rule,
    enclosing_symbols,
    register,
    resolve_dotted,
)

#: Wall/process clock reads that must stay confined to telemetry/clock.py.
CLOCK_READS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: The one module allowed to read the process clock.
EXEMPT_MODULES = {"repro.telemetry.clock"}


@register
class ClockRule(Rule):
    """Flag direct process-clock reads outside the clock module."""

    id = "REP002"
    name = "clock-discipline"
    summary = (
        "no time.time()/time.monotonic()/datetime.now() etc. outside "
        "repro/telemetry/clock.py; use the injectable clock"
    )
    explanation = """\
Components must take "now" from an injectable zero-argument callable (see
repro.telemetry.clock) so that live runs use the monotonic clock, the
sched simulator substitutes its virtual clock, and tests inject FakeClock
for exact timing assertions.  Both calls and bare references (handing the
function around as a clock) are flagged; time.sleep() is allowed.

Bad:
    started = time.time()
    span.end = time.perf_counter()
    stamp = datetime.now().isoformat()

Good:
    from repro.telemetry.clock import MONOTONIC
    def __init__(self, clock=MONOTONIC): self._clock = clock
    started = self._clock()

A wall-clock read that is genuinely about the real world (e.g. a benchmark
recording its own date) carries `# repro-lint: disable=REP002`.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Scan one file for direct process-clock reads."""
        if ctx.module_name in EXEMPT_MODULES:
            return
        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        roots = {v.split(".")[0] for v in aliases.aliases.values()}
        if not roots & {"time", "datetime"}:
            return
        symbols = enclosing_symbols(ctx.tree)
        inside_chain: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                inside_chain.add(id(node.value))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if id(node) in inside_chain:
                continue  # only report the full dotted chain once
            name = resolve_dotted(node, aliases.aliases)
            if name in CLOCK_READS:
                yield ctx.finding(
                    self,
                    node,
                    f"direct clock read {name}: take an injectable clock "
                    "(repro.telemetry.clock) instead",
                    symbol=symbols.get(id(node), "<module>"),
                )
