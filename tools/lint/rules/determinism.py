"""REP001: no unseeded or global-state numpy randomness.

The ESSE pipeline's reproducibility story (paper Sec 5.3.3: members can be
re-run and re-ordered across hosts without changing the statistics) rests
on every random draw flowing from :class:`repro.util.rng.SeedSequenceStream`.
An unseeded ``np.random.default_rng()`` fallback or a legacy module-level
``np.random.*`` call silently breaks bit-identical repeat runs, which in
turn invalidates ensemble-statistics comparisons between configurations.

With the interprocedural layer (``FileContext.project``) the taint also
crosses call boundaries: a call into a project function whose effect
summary carries an ``rng`` chain (it transitively constructs an unseeded
generator or draws from the hidden global state) is flagged at the call
site with the chain -- even when this file never imports numpy itself.
Suppressing the construction site (``# repro-lint: disable=REP001 --
why``) clears the taint for every caller: the justification covers the
whole chain.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import (
    FileContext,
    Finding,
    ImportAliases,
    Rule,
    enclosing_symbols,
    register,
    resolve_dotted,
)

#: Legacy module-level functions drawing from numpy's hidden global state.
LEGACY_GLOBAL_FNS = {
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "standard_normal",
    "uniform",
    "exponential",
    "poisson",
    "binomial",
    "gamma",
    "beta",
    "lognormal",
    "multivariate_normal",
}

#: The one module allowed to construct generators however it likes.
EXEMPT_MODULES = {"repro.util.rng"}


@register
class DeterminismRule(Rule):
    """Flag randomness that escapes the SeedSequence discipline."""

    id = "REP001"
    name = "determinism"
    summary = (
        "no unseeded np.random.default_rng() and no module-level np.random.* "
        "global-state calls outside repro/util/rng.py"
    )
    explanation = """\
Every random draw must derive from an explicit seed or Generator threaded
from the experiment's root seed (repro.util.rng.SeedSequenceStream), so two
runs with the same configuration produce bit-identical perturbations,
failure draws, queue waits and observation noise.

Bad:
    rng = np.random.default_rng()          # fresh OS entropy every run
    noise = np.random.standard_normal(n)   # hidden global state
    rng_attr: Generator = field(default_factory=np.random.default_rng)

Good:
    from repro.util.rng import SeedSequenceStream
    rng = SeedSequenceStream(root_seed).rng("obs", "noise")
    # or accept rng/seed from the caller and default deterministically:
    def f(..., rng: np.random.Generator | None = None):
        rng = rng if rng is not None else SeedSequenceStream(0).rng("f")

Suppress a deliberate exception with `# repro-lint: disable=REP001`.
"""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Scan one file for unseeded / global-state numpy randomness."""
        if ctx.module_name in EXEMPT_MODULES:
            return
        aliases = ImportAliases()
        aliases.visit(ctx.tree)
        yield from self._tainted_calls(ctx)
        if not any(v.split(".")[0] == "numpy" for v in aliases.aliases.values()):
            return
        symbols = enclosing_symbols(ctx.tree)
        call_funcs = {
            id(node.func) for node in ast.walk(ctx.tree) if isinstance(node, ast.Call)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = resolve_dotted(node.func, aliases.aliases)
                if name is None:
                    continue
                symbol = symbols.get(id(node), "<module>")
                if name == "numpy.random.default_rng" and not (
                    node.args or node.keywords
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "unseeded np.random.default_rng(): thread a seed or "
                        "Generator from the caller's root seed "
                        "(repro.util.rng.SeedSequenceStream)",
                        symbol=symbol,
                    )
                elif name == "numpy.random.RandomState":
                    yield ctx.finding(
                        self,
                        node,
                        "legacy np.random.RandomState: use seeded "
                        "np.random.default_rng / SeedSequenceStream streams",
                        symbol=symbol,
                    )
                elif (
                    name.startswith("numpy.random.")
                    and name.rsplit(".", 1)[1] in LEGACY_GLOBAL_FNS
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"module-level {name}() draws from numpy's hidden "
                        "global state; use an explicit seeded Generator",
                        symbol=symbol,
                    )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if id(node) in call_funcs:
                    continue  # handled above as a call
                name = resolve_dotted(node, aliases.aliases)
                if name == "numpy.random.default_rng":
                    yield ctx.finding(
                        self,
                        node,
                        "bare reference to np.random.default_rng (e.g. as a "
                        "default_factory) constructs an unseeded generator",
                        symbol=symbols.get(id(node), "<module>"),
                    )

    def _tainted_calls(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag calls into project functions with an rng-taint summary."""
        project = getattr(ctx, "project", None)
        if project is None:
            return
        symbols = enclosing_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            summ = project.summary_for_call(ctx.relpath, node)
            if summ is None or summ.rng is None:
                continue
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            else:
                continue
            yield ctx.finding(
                self,
                node,
                f"call to {name}() draws from non-deterministic randomness "
                f"({name} -> {summ.rng}); thread a seeded Generator from "
                "the caller's root seed instead",
                symbol=f"{symbols.get(id(node), '<module>')}:rng-taint:{name}",
            )
