"""Intraprocedural dataflow: per-function CFG + forward worklist analysis.

This module turns one function body into a control-flow graph and runs
client-defined forward analyses over it.  It is the engine under the
REP009-REP012 rule families (resource lifecycle, async discipline,
publish protocol, array contracts), but knows nothing about any rule:
clients supply the lattice (initial state, transfer function, merge).

CFG model
---------
Nodes are statements (not basic blocks -- functions here are small and
per-statement nodes keep transfer functions trivial), plus a handful of
synthetic nodes:

``entry`` / ``exit``
    One each per function.  Every path ends at ``exit``; obligation rules
    check their facts there.
``loop_head``
    The test/iterator evaluation of a ``while``/``for``; carries the loop
    statement.  Back edges from the loop body and ``break``-bypass edges
    are explicit.
``branch``
    The test of an ``if`` (or the subject of a ``match``).
``with``
    The header of a ``with``/``async with`` (context managers entered).
``with_exit``
    Synthetic unwind point where the context managers of a ``with`` are
    released.  Both the normal fall-through and abrupt exits (``return``
    / ``raise`` / ``break`` / ``continue``) inside the body pass through
    a ``with_exit`` for every open ``with``, so analyses see cleanup on
    every path.
``except``
    A handler entry.  Exception edges run from the state *before* the
    ``try`` body and from every statement inside it to each handler, so a
    handler merges every state it could observe.

``try/finally`` is modelled by duplication: abrupt exits inside the try
body get their own fresh instances of the ``finally`` body spliced onto
their path (the classic lowering), so a ``return`` inside ``try`` still
flows through ``finally`` cleanup before reaching ``exit``.

Deliberate simplifications (documented for rule authors):

- No implicit exception edges from arbitrary expressions.  Only ``raise``
  statements and ``try`` bodies produce exceptional flow; otherwise every
  statement is assumed to complete.  Obligation rules would drown in
  false positives if any line could throw.
- ``while``/``for`` conditions are treated as both-ways branches (even
  ``while True``); unreachable-code precision is not a goal.
- Nested function/class definitions are single statements; their bodies
  get their own CFG when the client asks for one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class CFGNode:
    """One CFG node: a statement or a synthetic control point."""

    index: int
    kind: str  # entry/exit/stmt/branch/loop_head/with/with_exit/except
    stmt: ast.AST | None = None
    succs: list[int] = field(default_factory=list)

    def add_succ(self, index: int) -> None:
        """Append an edge (idempotent, keeps first-added order)."""
        if index not in self.succs:
            self.succs.append(index)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    func: FuncDef
    nodes: list[CFGNode]
    entry: int
    exit: int

    def preds(self) -> dict[int, list[int]]:
        """Predecessor lists, derived from the successor edges."""
        out: dict[int, list[int]] = {n.index: [] for n in self.nodes}
        for node in self.nodes:
            for succ in node.succs:
                out[succ].append(node.index)
        return out

    def nodes_of_kind(self, kind: str) -> list[CFGNode]:
        """All nodes with the given ``kind``, in creation order."""
        return [n for n in self.nodes if n.kind == kind]


def _is_simple_assign(stmt: ast.stmt | None) -> bool:
    """True for ``name = <expr>`` / ``name: T = <expr>``.

    These statements are all-or-nothing: Python binds the name only after
    the right-hand side fully evaluates, so on an exception path the
    binding never happened.  Attribute/subscript targets (setters can
    raise mid-way) and tuple unpacking (partial binds) do not qualify.
    """
    if isinstance(stmt, ast.Assign):
        return len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name)
    if isinstance(stmt, ast.AnnAssign):
        return isinstance(stmt.target, ast.Name) and stmt.value is not None
    return False


# Unwind-stack frames.  Abrupt exits (return/raise/break/continue) pop
# frames innermost-first: 'finally' frames splice a fresh copy of the
# finalbody onto the path, 'with' frames splice a fresh with_exit node.
_LOOP, _FINALLY, _WITH = "loop", "finally", "with"


@dataclass
class _Frame:
    kind: str
    # loop: sinks collect break-edge sources; continue_target is the head.
    break_sinks: list[int] = field(default_factory=list)
    continue_target: int = -1
    # finally: the statements to duplicate on abrupt exit.
    finalbody: list[ast.stmt] = field(default_factory=list)
    # with: the With node whose managers a with_exit releases.
    with_stmt: ast.AST | None = None


class _Builder:
    """Recursive statement lowering with an explicit frontier.

    The *frontier* is the list of node indices whose control continues at
    the next statement; lowering a statement consumes the frontier and
    returns the new one (empty when the block cannot fall through).
    """

    def __init__(self, func: FuncDef):
        self.func = func
        self.nodes: list[CFGNode] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.frames: list[_Frame] = []

    # -- plumbing ----------------------------------------------------------

    def _new(self, kind: str, stmt: ast.AST | None = None) -> int:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        return node.index

    def _connect(self, frontier: list[int], target: int) -> None:
        for index in frontier:
            self.nodes[index].add_succ(target)

    def _seq(self, frontier: list[int], kind: str, stmt: ast.AST) -> list[int]:
        node = self._new(kind, stmt)
        self._connect(frontier, node)
        return [node]

    # -- abrupt-exit unwinding ---------------------------------------------

    def _unwind(
        self, frontier: list[int], stop_at_loop: bool
    ) -> tuple[list[int], _Frame | None]:
        """Run cleanup frames innermost-out; return (frontier, loop|None).

        ``stop_at_loop`` is True for break/continue (unwind only frames
        inside the nearest loop); False for return/raise (unwind all).

        While a frame's cleanup is lowered, the frame stack is masked to
        the frames *outside* it, so an abrupt exit inside a ``finally``
        body unwinds outward instead of recursing into itself.
        """
        saved = self.frames
        try:
            for i in range(len(saved) - 1, -1, -1):
                frame = saved[i]
                if frame.kind == _LOOP:
                    if stop_at_loop:
                        return frontier, frame
                    continue
                self.frames = saved[:i]
                if frame.kind == _WITH:
                    node = self._new("with_exit", frame.with_stmt)
                    self._connect(frontier, node)
                    frontier = [node]
                elif frame.kind == _FINALLY:
                    frontier = self._lower_block(frame.finalbody, frontier)
                    if not frontier:
                        return [], None  # finally itself returned/raised
            return frontier, None
        finally:
            self.frames = saved

    # -- statement lowering ------------------------------------------------

    def build(self) -> CFG:
        frontier = self._lower_block(self.func.body, [self.entry])
        self._connect(frontier, self.exit)
        return CFG(func=self.func, nodes=self.nodes, entry=self.entry, exit=self.exit)

    def _lower_block(self, body: list[ast.stmt], frontier: list[int]) -> list[int]:
        for stmt in body:
            if not frontier:
                break  # unreachable tail after return/raise/...
            frontier = self._lower_stmt(stmt, frontier)
        return frontier

    def _lower_stmt(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._lower_if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._lower_loop(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._lower_with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._lower_match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            frontier = self._seq(frontier, "stmt", stmt)
            frontier, _ = self._unwind(frontier, stop_at_loop=False)
            self._connect(frontier, self.exit)
            return []
        if isinstance(stmt, ast.Raise):
            # Handler edges are added by _lower_try; a raise otherwise
            # unwinds through cleanup to exit like a return.
            frontier = self._seq(frontier, "stmt", stmt)
            frontier, _ = self._unwind(frontier, stop_at_loop=False)
            self._connect(frontier, self.exit)
            return []
        if isinstance(stmt, ast.Break):
            frontier = self._seq(frontier, "stmt", stmt)
            frontier, loop = self._unwind(frontier, stop_at_loop=True)
            if loop is not None:
                loop.break_sinks.extend(frontier)
            return []
        if isinstance(stmt, ast.Continue):
            frontier = self._seq(frontier, "stmt", stmt)
            frontier, loop = self._unwind(frontier, stop_at_loop=True)
            if loop is not None:
                self._connect(frontier, loop.continue_target)
            return []
        # Plain statement (includes nested def/class: one opaque node).
        return self._seq(frontier, "stmt", stmt)

    def _lower_if(self, stmt: ast.If, frontier: list[int]) -> list[int]:
        branch = self._new("branch", stmt)
        self._connect(frontier, branch)
        then_out = self._lower_block(stmt.body, [branch])
        else_out = self._lower_block(stmt.orelse, [branch]) if stmt.orelse else [branch]
        return then_out + else_out

    def _lower_match(self, stmt: ast.Match, frontier: list[int]) -> list[int]:
        branch = self._new("branch", stmt)
        self._connect(frontier, branch)
        out: list[int] = [branch]  # no case may match
        for case in stmt.cases:
            out.extend(self._lower_block(case.body, [branch]))
        return out

    def _lower_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, frontier: list[int]
    ) -> list[int]:
        head = self._new("loop_head", stmt)
        self._connect(frontier, head)
        frame = _Frame(kind=_LOOP, continue_target=head)
        self.frames.append(frame)
        body_out = self._lower_block(stmt.body, [head])
        self.frames.pop()
        self._connect(body_out, head)  # back edge
        # Normal exhaustion path runs orelse; break bypasses it.
        out = self._lower_block(stmt.orelse, [head]) if stmt.orelse else [head]
        return out + frame.break_sinks

    def _lower_with(
        self, stmt: ast.With | ast.AsyncWith, frontier: list[int]
    ) -> list[int]:
        enter = self._new("with", stmt)
        self._connect(frontier, enter)
        self.frames.append(_Frame(kind=_WITH, with_stmt=stmt))
        body_out = self._lower_block(stmt.body, [enter])
        self.frames.pop()
        if not body_out:
            return []
        leave = self._new("with_exit", stmt)
        self._connect(body_out, leave)
        return [leave]

    def _lower_try(self, stmt: ast.Try, frontier: list[int]) -> list[int]:
        if stmt.finalbody:
            self.frames.append(_Frame(kind=_FINALLY, finalbody=stmt.finalbody))
        first_body_node = len(self.nodes)
        body_out = self._lower_block(stmt.body, frontier)
        body_nodes = list(range(first_body_node, len(self.nodes)))

        handler_outs: list[int] = []
        for handler in stmt.handlers:
            entry = self._new("except", handler)
            # A handler observes the state before the try body and after
            # any statement inside it -- except simple `name = <expr>`
            # assignments: the binding happens only after the RHS fully
            # evaluates, so a raising assign never bound the name.  Their
            # pre-state already reaches the handler through their
            # predecessors' edges, so skipping them is what makes
            # `x = acquire()` as the last statement of a try body not leak
            # into the handler.
            self._connect(frontier, entry)
            for index in body_nodes:
                node = self.nodes[index]
                if node.kind == "except":
                    continue
                if node.kind == "stmt" and _is_simple_assign(node.stmt):
                    continue
                node.add_succ(entry)
            handler_outs.extend(self._lower_block(handler.body, [entry]))

        orelse_out = (
            self._lower_block(stmt.orelse, body_out) if stmt.orelse else body_out
        )
        merged = orelse_out + handler_outs
        if stmt.finalbody:
            self.frames.pop()
            merged = self._lower_block(stmt.finalbody, merged)
        return merged


def build_cfg(func: FuncDef) -> CFG:
    """Build the CFG of one function/method body."""
    return _Builder(func).build()


def iter_function_defs(tree: ast.Module) -> Iterator[FuncDef]:
    """Every function/method definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# -- generic forward analysis --------------------------------------------------


def analyze_forward(
    cfg: CFG,
    init: object,
    transfer: Callable[[CFGNode, object], object],
    merge: Callable[[object, object], object],
    max_passes: int = 50,
) -> dict[int, object]:
    """Forward worklist analysis; returns the in-state of every node.

    ``init`` seeds the entry node.  ``transfer(node, state)`` must return
    a *new* state (never mutate its input); ``merge(a, b)`` joins states
    at control-flow merges.  Unreached nodes keep an in-state of ``None``
    (bottom) -- ``merge`` is never called with ``None``.

    States are compared with ``==`` to detect the fixpoint; clients use
    plain dicts/frozensets.  ``max_passes`` bounds iteration for safety
    (lattices here are finite and shallow; the bound is never hit in
    practice).
    """
    in_states: dict[int, object] = {n.index: None for n in cfg.nodes}
    in_states[cfg.entry] = init
    order = [n.index for n in cfg.nodes]  # creation order ~ program order
    for _ in range(max_passes):
        changed = False
        for index in order:
            state = in_states[index]
            if state is None:
                continue
            out = transfer(cfg.nodes[index], state)
            for succ in cfg.nodes[index].succs:
                current = in_states[succ]
                joined = out if current is None else merge(current, out)
                if joined != current:
                    in_states[succ] = joined
                    changed = True
        if not changed:
            break
    return in_states
