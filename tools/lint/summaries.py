"""Per-function effect summaries, computed bottom-up over the call graph.

An :class:`EffectSummary` condenses what one function *does to the world*
into the few facts the dataflow rules care about:

``blocking``
    The function (or anything it transitively calls through synchronous
    project code) sleeps, touches the filesystem, spawns a subprocess or
    talks to a socket.  Carries a human-readable call chain
    (``handle -> _dispatch -> read_text``).  A ``# repro-lint: blocking``
    annotation on the ``def`` line forces the effect (the manual override
    always wins over inference).
``rng``
    Transitively constructs an unseeded generator or draws from numpy's
    hidden global state (the REP001 taint).
``fsync_params`` / ``replace_src_params`` / ``write_params``
    Parameter indices the function fsyncs / uses as the source of an
    atomic replace / writes to -- how REP011 and the staged-publish
    typestate machine see ``util.fsio.durable_replace`` (and any
    hand-rolled helper) through the call boundary.
``close_params`` / ``store_params`` / ``returns_params``
    Parameter indices the function releases, stores on long-lived state,
    or returns -- how REP009 follows ownership transfer through calls.
``returns_resource``
    The function's return value carries a release obligation (it acquired
    a tracked resource and handed it back), making the *caller's*
    assignment an acquire site.
``may_raise``
    The body contains a ``raise`` or calls something that does.

Summaries are computed bottom-up over the Tarjan SCCs of the project
call graph; inside a cyclic component the member summaries iterate to a
fixpoint (all effects are monotone, so convergence is guaranteed).
Unresolvable calls leave ``unknown_calls`` set and contribute nothing --
each rule chooses its own conservative interpretation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from tools.lint import vocab
from tools.lint.callgraph import CallGraph, FileIR, FunctionIR, extract_file_ir

#: Maximum fixpoint sweeps inside one SCC (effects are monotone; real
#: components converge in two or three).
_MAX_SCC_PASSES = 24


@dataclass
class EffectSummary:
    """The interprocedural facts of one function (see module docstring)."""

    key: str
    is_async: bool = False
    annotated_blocking: bool = False
    blocking: str | None = None
    rng: str | None = None
    may_raise: bool = False
    unknown_calls: bool = False
    fsync_params: set[int] = field(default_factory=set)
    replace_src_params: set[int] = field(default_factory=set)
    write_params: set[int] = field(default_factory=set)
    close_params: set[int] = field(default_factory=set)
    store_params: set[int] = field(default_factory=set)
    returns_params: set[int] = field(default_factory=set)
    returns_resource: str | None = None

    def to_dict(self) -> dict:
        """JSON form (sets become sorted lists)."""
        return {
            "key": self.key,
            "is_async": self.is_async,
            "annotated_blocking": self.annotated_blocking,
            "blocking": self.blocking,
            "rng": self.rng,
            "may_raise": self.may_raise,
            "unknown_calls": self.unknown_calls,
            "fsync_params": sorted(self.fsync_params),
            "replace_src_params": sorted(self.replace_src_params),
            "write_params": sorted(self.write_params),
            "close_params": sorted(self.close_params),
            "store_params": sorted(self.store_params),
            "returns_params": sorted(self.returns_params),
            "returns_resource": self.returns_resource,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "EffectSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            key=d["key"],
            is_async=d["is_async"],
            annotated_blocking=d["annotated_blocking"],
            blocking=d["blocking"],
            rng=d["rng"],
            may_raise=d["may_raise"],
            unknown_calls=d["unknown_calls"],
            fsync_params=set(d["fsync_params"]),
            replace_src_params=set(d["replace_src_params"]),
            write_params=set(d.get("write_params", ())),
            close_params=set(d["close_params"]),
            store_params=set(d["store_params"]),
            returns_params=set(d["returns_params"]),
            returns_resource=d["returns_resource"],
        )

    def signature(self) -> str:
        """Stable serialization used in cache dependency signatures."""
        d = self.to_dict()
        return "|".join(f"{k}={d[k]!r}" for k in sorted(d))


# -- local effect harvest (plugged into callgraph extraction) ------------------


def _dotted(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


def _resolve(node: ast.expr, aliases: dict[str, str]) -> str | None:
    parts = _dotted(node)
    if parts is None:
        return None
    return vocab.resolve_dotted_parts(parts, aliases)


def _blocking_reason_local(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Why this single call blocks, or None (summary-engine vocabulary)."""
    resolved = _resolve(call.func, aliases)
    if resolved is not None:
        for pattern in vocab.BLOCKING_RESOLVED:
            if resolved == pattern or (
                pattern.endswith(".") and resolved.startswith(pattern)
            ):
                return resolved
        if resolved in vocab.NUMPY_IO:
            return resolved
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        if "open" not in aliases:
            return "open()"
    if isinstance(call.func, ast.Attribute) and call.func.attr in vocab.IO_METHODS:
        return f".{call.func.attr}()"
    return None


def _rng_reason_local(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Why this single call breaks RNG discipline, or None."""
    resolved = _resolve(call.func, aliases)
    if resolved is None:
        return None
    if resolved == "numpy.random.default_rng" and not (call.args or call.keywords):
        return "unseeded default_rng()"
    if resolved == "numpy.random.RandomState":
        return "legacy RandomState"
    if (
        resolved.startswith("numpy.random.")
        and resolved.rsplit(".", 1)[1] in vocab.LEGACY_GLOBAL_FNS
    ):
        return f"global-state {resolved}()"
    return None


def _param_index(expr: ast.expr, params: list[str]) -> int | None:
    """Index of a bare-Name expression among ``params``, else None."""
    if isinstance(expr, ast.Name) and expr.id in params:
        return params.index(expr.id)
    return None


def _resource_label(call: ast.expr, aliases: dict[str, str]) -> str | None:
    """Label of the tracked resource a call acquires, or None."""
    if not isinstance(call, ast.Call):
        return None
    resolved = _resolve(call.func, aliases)
    if resolved in vocab.RESOURCE_FACTORIES:
        return resolved
    if isinstance(call.func, ast.Name):
        if call.func.id == "open" and "open" not in aliases:
            return "open()"
        if call.func.id in vocab.RESOURCE_CLASS_NAMES:
            return call.func.id
    if isinstance(call.func, ast.Attribute):
        if call.func.attr in vocab.RESOURCE_CLASS_NAMES:
            return call.func.attr
    return None


def make_local_effect_fn(suppressed_lines: dict[int, set[str]]):
    """Build the harvest hook for :func:`callgraph.extract_file_ir`.

    ``suppressed_lines`` maps line numbers to the rule ids disabled there
    (from :class:`tools.lint.core.Suppressions`): an explicitly suppressed
    construction site does not propagate its taint to callers -- the
    ``-- why`` justification covers the whole chain.
    """

    def suppressed(lineno: int, rule: str) -> bool:
        rules = suppressed_lines.get(lineno, set())
        return "all" in rules or rule in rules

    def harvest(func, aliases: dict[str, str], walk_own_body) -> dict:
        args = func.args
        params = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        fx: dict = {
            "blocking": None,
            "rng": None,
            "may_raise": False,
            "fsync_params": [],
            "replace_src_params": [],
            "write_params": [],
            "close_params": [],
            "store_params": [],
            "returns_params": [],
            "returns_resource": None,
            "return_calls": [],
        }
        # Pre-pass: bind resource-acquiring locals first, since the body
        # walk makes no ordering promise and `return handle` must see the
        # earlier `handle = open(...)` regardless of visit order.
        resource_vars: dict[str, str] = {}
        for node in walk_own_body(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                label = _resource_label(node.value, aliases)
                if label is not None:
                    resource_vars[node.targets[0].id] = label
        for node in walk_own_body(func):
            if isinstance(node, ast.Raise):
                fx["may_raise"] = True
            elif isinstance(node, ast.Return) and node.value is not None:
                i = _param_index(node.value, params)
                if i is not None and i not in fx["returns_params"]:
                    fx["returns_params"].append(i)
                if isinstance(node.value, ast.Name):
                    label = resource_vars.get(node.value.id)
                    if label is not None:
                        fx["returns_resource"] = label
                elif isinstance(node.value, ast.Call):
                    label = _resource_label(node.value, aliases)
                    if label is not None:
                        fx["returns_resource"] = label
                    else:
                        fx["return_calls"].append(
                            [node.value.lineno, node.value.col_offset]
                        )
            elif isinstance(node, ast.Assign):
                self_targets = [
                    t
                    for t in node.targets
                    if isinstance(t, (ast.Attribute, ast.Subscript))
                ]
                if self_targets:
                    i = _param_index(node.value, params)
                    if i is not None and i not in fx["store_params"]:
                        fx["store_params"].append(i)
            elif isinstance(node, ast.Call):
                if fx["blocking"] is None and not suppressed(node.lineno, "REP010"):
                    fx["blocking"] = _blocking_reason_local(node, aliases)
                if fx["rng"] is None and not suppressed(node.lineno, "REP001"):
                    fx["rng"] = _rng_reason_local(node, aliases)
                _harvest_param_effects(node, params, aliases, fx)
        return fx

    return harvest


def _harvest_param_effects(
    call: ast.Call, params: list[str], aliases: dict[str, str], fx: dict
) -> None:
    """Record fsync/replace/close/store effects of one call on parameters."""

    def add(kind: str, expr: ast.expr | None) -> None:
        i = _param_index(expr, params) if expr is not None else None
        if i is not None and i not in fx[kind]:
            fx[kind].append(i)

    func = call.func
    resolved = _resolve(func, aliases)
    terminal = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id if isinstance(func, ast.Name) else None
    )
    if terminal == "durable_replace":
        if call.args:
            add("fsync_params", call.args[0])
            add("replace_src_params", call.args[0])
        return
    if terminal is not None and "fsync" in terminal:
        for arg in call.args:
            add("fsync_params", arg)
        return
    if resolved in ("os.replace", "os.rename"):
        if call.args:
            add("replace_src_params", call.args[0])
        return
    if resolved == "os.close" and call.args:
        add("close_params", call.args[0])
        return
    if resolved in vocab.NUMPY_SAVERS and call.args:
        add("write_params", call.args[0])
        return
    if isinstance(func, ast.Name) and func.id == "open" and call.args:
        mode = ""
        if len(call.args) > 1 and isinstance(call.args[1], ast.Constant):
            mode = str(call.args[1].value)
        for kw in call.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = str(kw.value.value)
        if any(ch in mode for ch in "wax+"):
            add("write_params", call.args[0])
        return
    if isinstance(func, ast.Attribute):
        if func.attr in ("replace", "rename") and len(call.args) == 1:
            add("replace_src_params", func.value)
        elif func.attr in ("flush", "fsync"):
            add("fsync_params", func.value)
        elif func.attr in vocab.WRITE_METHODS:
            add("write_params", func.value)
        elif func.attr in vocab.RELEASE_METHODS:
            add("close_params", func.value)
        elif func.attr in vocab.SINK_METHODS:
            for arg in call.args:
                add("store_params", arg)


# -- the project object handed to rules ----------------------------------------


class ProjectSummaries:
    """Call graph + converged effect summaries of the linted project.

    Rules reach it through ``FileContext.project`` and use three lookups:
    :meth:`callee_of` (resolved callee of an ``ast.Call``),
    :meth:`summary` (the callee's effects) and :attr:`annotated_blocking`
    (the cross-file ``# repro-lint: blocking`` name set).
    """

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.summaries: dict[str, EffectSummary] = {}
        #: Simple names carrying a manual blocking annotation anywhere in
        #: the project, with their (path, line) definition anchor.
        self.annotated_blocking: dict[str, tuple[str, int]] = {}
        for key, fir in graph.functions.items():
            if fir.annotated_blocking:
                simple = fir.qualname.rsplit(".", 1)[-1]
                self.annotated_blocking.setdefault(
                    simple, (graph.file_of[key], fir.line)
                )
        self._compute()

    # -- lookups -----------------------------------------------------------

    def callee_of(self, relpath: str, call: ast.Call) -> str | None:
        """Resolved callee key of a call node in ``relpath`` (or None)."""
        return self.graph.callsite_index.get(
            (relpath, call.lineno, call.col_offset)
        )

    def summary(self, key: str | None) -> EffectSummary | None:
        """Summary of a function key (None for unresolved/foreign calls)."""
        if key is None:
            return None
        return self.summaries.get(key)

    def summary_for_call(
        self, relpath: str, call: ast.Call
    ) -> EffectSummary | None:
        """Shorthand: resolve a call node and return its callee summary."""
        return self.summary(self.callee_of(relpath, call))

    def dependency_signature(self, relpath: str) -> str:
        """Hashable digest of everything external this file's lint depends on.

        Covers the summaries of every resolved callee of the file plus the
        global annotated-blocking name set; when any of those change, the
        file is in the changed files' reverse-dependency frontier and its
        cached findings must be recomputed.
        """
        ir = self.graph.irs.get(relpath)
        if ir is None:
            return "-"
        keys: set[str] = set()
        for fir in ir.functions.values():
            for site in fir.calls:
                callee = self.graph.callsite_index.get(
                    (relpath, site.line, site.col)
                )
                if callee is not None:
                    keys.add(callee)
        parts = [
            self.summaries[k].signature() for k in sorted(keys) if k in self.summaries
        ]
        parts.append("annotated:" + ",".join(sorted(self.annotated_blocking)))
        return "\n".join(parts)

    # -- computation -------------------------------------------------------

    def _initial(self, key: str, fir: FunctionIR) -> EffectSummary:
        fx = fir.local_effects or {}
        blocking = fx.get("blocking")
        if fir.annotated_blocking:
            blocking = blocking or "annotated blocking"
        return EffectSummary(
            key=key,
            is_async=fir.is_async,
            annotated_blocking=fir.annotated_blocking,
            blocking=blocking,
            rng=fx.get("rng"),
            may_raise=bool(fx.get("may_raise")),
            unknown_calls=self.graph.unresolved.get(key, 0) > 0,
            fsync_params=set(fx.get("fsync_params", ())),
            replace_src_params=set(fx.get("replace_src_params", ())),
            write_params=set(fx.get("write_params", ())),
            close_params=set(fx.get("close_params", ())),
            store_params=set(fx.get("store_params", ())),
            returns_params=set(fx.get("returns_params", ())),
            returns_resource=fx.get("returns_resource"),
        )

    def _compute(self) -> None:
        for key, fir in self.graph.functions.items():
            self.summaries[key] = self._initial(key, fir)
        for scc in self.graph.sccs_bottom_up():
            for _ in range(_MAX_SCC_PASSES):
                changed = False
                for key in scc:
                    if self._fold_callees(key):
                        changed = True
                if not changed:
                    break

    def _callee_param_index(
        self, site, arg, callee: FunctionIR
    ) -> int | None:
        """Map one argument of a call site onto the callee's param index."""
        if arg.keyword is not None:
            if arg.keyword in callee.params:
                return callee.params.index(arg.keyword)
            return None
        pos = 0
        for other in site.args:
            if other is arg:
                break
            if other.keyword is None:
                pos += 1
        offset = (
            1
            if callee.owner_class is not None
            and callee.params
            and callee.params[0] in ("self", "cls")
            else 0
        )
        index = pos + offset
        return index if index < len(callee.params) else None

    def _fold_callees(self, key: str) -> bool:
        """One propagation sweep for ``key``; True when anything grew."""
        summ = self.summaries[key]
        fir = self.graph.functions[key]
        ir = self.graph.irs[self.graph.file_of[key]]
        changed = False
        for site in fir.calls:
            callee_key = self.graph.callsite_index.get(
                (ir.relpath, site.line, site.col)
            )
            if callee_key is None:
                continue
            callee_summ = self.summaries.get(callee_key)
            callee_fir = self.graph.functions.get(callee_key)
            if callee_summ is None or callee_fir is None:
                continue
            callee_name = callee_fir.qualname.rsplit(".", 1)[-1]
            if (
                summ.blocking is None
                and not callee_summ.is_async
                and callee_summ.blocking is not None
            ):
                summ.blocking = f"{callee_name} -> {callee_summ.blocking}"
                changed = True
            if summ.rng is None and callee_summ.rng is not None:
                summ.rng = f"{callee_name} -> {callee_summ.rng}"
                changed = True
            if callee_summ.may_raise and not summ.may_raise:
                summ.may_raise = True
                changed = True
            if (
                summ.returns_resource is None
                and callee_summ.returns_resource is not None
                and [site.line, site.col]
                in (fir.local_effects or {}).get("return_calls", [])
            ):
                summ.returns_resource = callee_summ.returns_resource
                changed = True
            for arg in site.args:
                if arg.kind != "param":
                    continue
                callee_i = self._callee_param_index(site, arg, callee_fir)
                if callee_i is None:
                    continue
                for attr in (
                    "fsync_params",
                    "replace_src_params",
                    "write_params",
                    "close_params",
                    "store_params",
                ):
                    if callee_i in getattr(callee_summ, attr) and arg.index not in getattr(
                        summ, attr
                    ):
                        getattr(summ, attr).add(arg.index)
                        changed = True
        return changed


def call_param_effects(project, relpath: str, call: ast.Call):
    """``(summary, [(arg_expr, callee_param_index)])`` of a resolved call.

    The rule-side complement of :meth:`ProjectSummaries._callee_param_index`:
    returns ``(None, [])`` when no interprocedural project is active or the
    call does not resolve to a project-local function.  Keyword arguments
    map by name; positional arguments get the ``self``/``cls`` offset of
    bound methods so the indices line up with the callee's effect-summary
    parameter sets.
    """
    if project is None:
        return None, []
    key = project.callee_of(relpath, call)
    summ = project.summary(key)
    callee = project.graph.functions.get(key) if key is not None else None
    if summ is None or callee is None:
        return None, []
    offset = (
        1
        if callee.owner_class is not None
        and callee.params
        and callee.params[0] in ("self", "cls")
        else 0
    )
    pairs: list[tuple[ast.expr, int]] = []
    for pos, arg in enumerate(call.args):
        pairs.append((arg, pos + offset))
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in callee.params:
            pairs.append((kw.value, callee.params.index(kw.arg)))
    return summ, pairs


def build_project(irs: dict[str, FileIR]) -> ProjectSummaries:
    """Link the file IRs and converge the effect summaries."""
    return ProjectSummaries(CallGraph(irs))


def extract_ir(tree: ast.Module, source: str, relpath: str) -> FileIR:
    """Extract one file's IR with the summary-engine effect harvest.

    The convenience entry point used by ``run_lint`` and the cache: wires
    :func:`make_local_effect_fn` (with the file's suppression lines) and
    the ``# repro-lint: blocking`` mark scan into
    :func:`callgraph.extract_file_ir`.
    """
    from tools.lint.core import Suppressions

    supp = Suppressions.parse(source)
    blocking_lines = {
        lineno
        for lineno, text in enumerate(source.splitlines(), start=1)
        if "repro-lint:" in text and "blocking" in text and "disable" not in text
    }
    return extract_file_ir(
        tree,
        source,
        relpath,
        local_effect_fn=make_local_effect_fn(supp.by_line),
        blocking_mark_lines=blocking_lines,
    )
