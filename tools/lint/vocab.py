"""Shared call vocabularies of the repro-lint rules and summary engine.

One place for the "what blocks / what acquires / what writes" tables so
the per-function rules (REP008-REP011), the interprocedural effect
summaries (:mod:`tools.lint.summaries`) and the typestate machines
(:mod:`tools.lint.typestate`) classify calls identically.  This module
must stay import-free of :mod:`tools.lint.core` and the rule modules --
it sits below both layers.
"""

from __future__ import annotations

# -- blocking (REP008 / REP010 / the `blocking` effect) ------------------------

#: Resolved dotted names (or prefixes ending in ".") that block.
BLOCKING_RESOLVED = (
    "time.sleep",
    "subprocess.",
    "socket.",
    "os.system",
    "os.popen",
    "os.waitpid",
)

#: pathlib-style I/O method names that hit the filesystem.
IO_METHODS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}

#: numpy file I/O, resolved through import aliases.
NUMPY_IO = {
    "numpy.load",
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "numpy.loadtxt",
    "numpy.savetxt",
}

#: Constructors marking a local/attribute as a blocking queue.
QUEUE_FACTORIES = {
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "queue.SimpleQueue",
    "multiprocessing.Queue",
    "multiprocessing.JoinableQueue",
}

# -- resources (REP009 / the ownership effects) --------------------------------

#: Resolved dotted constructors whose result carries a release obligation.
RESOURCE_FACTORIES = {
    "numpy.memmap",
    "numpy.lib.format.open_memmap",
    "multiprocessing.shared_memory.SharedMemory",
    "socket.socket",
    "socket.create_connection",
    "os.open",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
}

#: Bare class names that carry an obligation even when the import cannot
#: be resolved (the repo's own resource classes are imported many ways).
RESOURCE_CLASS_NAMES = {
    "SharedEnsembleBuffer",
    "MemmapCovarianceStore",
    "SharedMemory",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
}

#: Method calls that discharge the obligation on their receiver.
RELEASE_METHODS = {"close", "unlink", "shutdown", "cleanup", "terminate"}

#: Method calls that store their argument for later cleanup (ownership
#: moves to the receiver: ExitStack.enter_context, list.append, ...).
SINK_METHODS = {"append", "add", "push", "register", "enter_context", "callback"}

# -- publishing (REP011 / the fsync-replace effects) ---------------------------

#: numpy savers whose first positional argument is the target path.
NUMPY_SAVERS = {
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "numpy.savetxt",
}

#: shutil copiers whose second positional argument is the target path.
SHUTIL_COPIERS = {
    "shutil.copyfile",
    "shutil.copy",
    "shutil.copy2",
    "shutil.copytree",
}

#: Path methods that write their receiver.
WRITE_METHODS = {"write_text", "write_bytes"}

# -- randomness (REP001 / the rng effect) --------------------------------------

#: Legacy module-level functions drawing from numpy's hidden global state.
LEGACY_GLOBAL_FNS = {
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "standard_normal",
    "uniform",
    "exponential",
    "poisson",
    "binomial",
    "gamma",
    "beta",
    "lognormal",
    "multivariate_normal",
}


def resolve_dotted_parts(parts: list[str], aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of pre-split attribute parts, or None."""
    if not parts:
        return None
    base = aliases.get(parts[0])
    if base is None:
        return None
    return ".".join([base] + parts[1:])
