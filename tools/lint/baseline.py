"""Checked-in baseline: pre-existing debt fails only on regression.

The baseline is a JSON document mapping finding *fingerprints* (see
:class:`tools.lint.core.Finding`) to an allowed count.  A lint run then

- drops up to ``count`` findings per baselined fingerprint ("known debt"),
- reports any excess occurrences as regressions, and
- reports baseline entries that no longer match anything as *stale*, so
  fixed debt is pruned from the file instead of rotting there.

Fingerprints are line-number-free (file + rule + enclosing symbol), so
edits elsewhere in a file do not invalidate the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from tools.lint.core import Finding, LintError

BASELINE_VERSION = 1

#: Default baseline location, relative to the repository root.
DEFAULT_BASELINE = Path("tools/lint/baseline.json")


@dataclass
class BaselineResult:
    """Split of a lint run against the baseline."""

    new: list[Finding] = field(default_factory=list)  # fail CI
    known: list[Finding] = field(default_factory=list)  # baselined debt
    stale: list[str] = field(default_factory=list)  # entries to prune


class Baseline:
    """Load / apply / write the known-debt baseline file."""

    def __init__(self, entries: dict[str, int] | None = None):
        self.entries: dict[str, int] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline document; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise LintError(f"{path}: invalid baseline JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
            raise LintError(
                f"{path}: unsupported baseline (want version={BASELINE_VERSION})"
            )
        entries = doc.get("entries", {})
        if not isinstance(entries, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v > 0
            for k, v in entries.items()
        ):
            raise LintError(f"{path}: baseline entries must map fingerprints to counts")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """A baseline accepting exactly the given findings."""
        entries: dict[str, int] = {}
        for finding in findings:
            entries[finding.fingerprint] = entries.get(finding.fingerprint, 0) + 1
        return cls(entries)

    def write(self, path: Path) -> None:
        """Persist as deterministic, diff-friendly JSON."""
        doc = {
            "version": BASELINE_VERSION,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    def apply(self, findings: list[Finding]) -> BaselineResult:
        """Split findings into new-vs-known and detect stale entries."""
        result = BaselineResult()
        used: dict[str, int] = {}
        for finding in findings:
            fp = finding.fingerprint
            if used.get(fp, 0) < self.entries.get(fp, 0):
                used[fp] = used.get(fp, 0) + 1
                result.known.append(finding)
            else:
                result.new.append(finding)
        for fp, allowed in sorted(self.entries.items()):
            missing = allowed - used.get(fp, 0)
            if missing > 0:
                result.stale.extend([fp] * missing)
        return result
