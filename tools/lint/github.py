"""GitHub Actions workflow-command renderer (``--format github``).

Emits one ``::error`` annotation per finding, in the `workflow command
syntax <https://docs.github.com/actions/reference/workflow-commands>`_
GitHub's runner scrapes from job stdout::

    ::error file=src/repro/x.py,line=12,title=REP010 async-discipline::message

Properties (``file=``/``line=``/``title=``) escape ``%``, CR, LF, ``:``
and ``,``; the message escapes ``%``, CR and LF -- the documented
percent-encoding, so multi-line messages survive the round trip.
"""

from __future__ import annotations

from typing import Iterable

from tools.lint.core import Finding, Rule


def _escape_data(value: str) -> str:
    """Escape a workflow-command message value."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (file=, title=, ...)."""
    return (
        _escape_data(value).replace(":", "%3A").replace(",", "%2C")
    )


def render_github(
    findings: Iterable[Finding], rules: dict[str, Rule]
) -> list[str]:
    """Render findings as GitHub Actions ``::error`` annotation lines."""
    lines: list[str] = []
    for finding in findings:
        rule = rules.get(finding.rule)
        title = (
            f"{finding.rule} {rule.name}" if rule is not None else finding.rule
        )
        lines.append(
            "::error file={file},line={line},title={title}::{message}".format(
                file=_escape_property(finding.path),
                line=finding.line,
                title=_escape_property(title),
                message=_escape_data(f"{finding.rule} {finding.message}"),
            )
        )
    return lines
