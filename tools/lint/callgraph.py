"""Project-wide call graph with qualified-name resolution.

This module is the first interprocedural layer of ``repro-lint``: it
extracts, per file, a pure-data *intermediate representation* (:class:`FileIR`)
of every function definition and call site, then links the whole project
into one call graph whose nodes are qualified function names
(``module:Class.method``).  :mod:`tools.lint.summaries` computes effect
summaries bottom-up over this graph; the dataflow rules consult both.

Design constraints
------------------
- **Pure data.**  A :class:`FileIR` holds no AST nodes, so it round-trips
  through JSON (the summary cache keys it on file-content hash) and
  pickles cheaply into ``--jobs`` worker processes.
- **Conservative resolution.**  A call that cannot be bound to a project
  definition resolves to ``None``; callers record ``unknown_calls`` and
  every summary consumer treats unknown callees pessimistically for its
  own lattice (see the rule docstrings).  Resolution covers:

  * bare names: function-local ``def``s (closures), module-level ``def``s,
    ``from x import y`` (aliases), re-exports through package
    ``__init__`` chains;
  * dotted names: ``import pkg.mod as m; m.f()`` through the alias map;
  * ``self.m()`` / ``cls.m()``: the enclosing class, then its project-
    resolvable base classes in MRO-ish order (first match wins);
  * instance-typed receivers: ``self.reader.fetch()`` resolves through
    the attribute-type map (``self.reader = ProductReader(...)`` in any
    method, bases included) and ``store.publish()`` through the caller's
    local-variable type map (``store = MemmapCovarianceStore(...)``);
  * constructor calls: ``ClassName(...)`` binds to
    ``ClassName.__init__`` when the class defines or inherits one;
  * decorated functions: the *definition* stays callable under its name
    (decorators are assumed name-preserving, which holds for the repo's
    ``@register`` / ``@property`` / ``@dataclass`` idioms).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Call-descriptor kinds stored in :class:`CallSite.target`.
_NAME, _DOTTED, _SELF, _ATTR, _UNKNOWN = "name", "dotted", "self", "attr", "unknown"


def module_name_for_relpath(relpath: str) -> str:
    """Dotted pseudo-module name of a repo-relative path.

    ``src/repro/util/fsio.py`` -> ``repro.util.fsio`` (importable name);
    files outside ``src/`` get a path-derived name (``tests.lint.x``)
    that is unique within the project even if not importable.
    """
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ArgRef:
    """How one call argument maps back to the caller's scope.

    ``kind`` is ``"param"`` (value of the caller's parameter ``index``),
    ``"name"`` (a local variable, ``text`` holds it) or ``"other"``.
    ``keyword`` carries the keyword-argument name (None = positional).
    """

    kind: str
    index: int = -1
    text: str = ""
    keyword: str | None = None

    def to_dict(self) -> dict:
        """JSON form (compact: defaults omitted)."""
        out: dict = {"k": self.kind}
        if self.index >= 0:
            out["i"] = self.index
        if self.text:
            out["t"] = self.text
        if self.keyword is not None:
            out["kw"] = self.keyword
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "ArgRef":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=d["k"], index=d.get("i", -1), text=d.get("t", ""),
            keyword=d.get("kw"),
        )


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``target`` is a pre-resolution descriptor ``(kind, text)``:
    ``("name", "helper")``, ``("dotted", "pkg.mod.helper")``,
    ``("self", "method")`` or ``("unknown", "")``.  ``line``/``col``
    anchor the *call node* so rules can look up the resolved callee of
    an :class:`ast.Call` they are holding.
    """

    line: int
    col: int
    target: tuple[str, str]
    args: list[ArgRef] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON form."""
        return {
            "line": self.line,
            "col": self.col,
            "target": list(self.target),
            "args": [a.to_dict() for a in self.args],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CallSite":
        """Inverse of :meth:`to_dict`."""
        return cls(
            line=d["line"],
            col=d["col"],
            target=tuple(d["target"]),
            args=[ArgRef.from_dict(a) for a in d["args"]],
        )


@dataclass
class FunctionIR:
    """Pure-data record of one function/method definition."""

    qualname: str  # Class.meth / func / outer.<locals>.inner
    line: int
    is_async: bool
    params: list[str]
    owner_class: str | None  # enclosing class name (methods only)
    calls: list[CallSite] = field(default_factory=list)
    local_defs: dict[str, str] = field(default_factory=dict)  # name -> qualname
    #: Local variable -> class descriptor (``store = MemmapCovarianceStore(...)``).
    local_types: dict[str, str] = field(default_factory=dict)
    #: Names of local effect facts harvested at extraction time
    #: (:mod:`tools.lint.summaries` interprets them).
    local_effects: dict = field(default_factory=dict)
    annotated_blocking: bool = False

    def to_dict(self) -> dict:
        """JSON form."""
        return {
            "qualname": self.qualname,
            "line": self.line,
            "is_async": self.is_async,
            "params": self.params,
            "owner_class": self.owner_class,
            "calls": [c.to_dict() for c in self.calls],
            "local_defs": self.local_defs,
            "local_types": self.local_types,
            "local_effects": self.local_effects,
            "annotated_blocking": self.annotated_blocking,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionIR":
        """Inverse of :meth:`to_dict`."""
        return cls(
            qualname=d["qualname"],
            line=d["line"],
            is_async=d["is_async"],
            params=d["params"],
            owner_class=d["owner_class"],
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            local_defs=d["local_defs"],
            local_types=d.get("local_types", {}),
            local_effects=d["local_effects"],
            annotated_blocking=d["annotated_blocking"],
        )


@dataclass
class ClassIR:
    """Pure-data record of one class definition: name, bases, methods."""

    name: str
    bases: list[str]  # descriptor strings: bare names or dotted paths
    methods: list[str]  # method simple names defined directly on the class
    #: Instance attribute -> class descriptor, harvested from
    #: ``self.X = ClassName(...)`` assignments in any method body.
    attr_types: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON form."""
        return {
            "name": self.name,
            "bases": self.bases,
            "methods": self.methods,
            "attr_types": self.attr_types,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ClassIR":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=d["name"],
            bases=d["bases"],
            methods=d["methods"],
            attr_types=d.get("attr_types", {}),
        )


@dataclass
class FileIR:
    """Everything the interprocedural layer knows about one file."""

    relpath: str
    module: str
    functions: dict[str, FunctionIR] = field(default_factory=dict)
    classes: dict[str, ClassIR] = field(default_factory=dict)
    #: local name -> dotted path (``from x import y`` / ``import a.b as c``).
    aliases: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON form for the summary cache."""
        return {
            "relpath": self.relpath,
            "module": self.module,
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
            "aliases": self.aliases,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FileIR":
        """Inverse of :meth:`to_dict`."""
        return cls(
            relpath=d["relpath"],
            module=d["module"],
            functions={
                k: FunctionIR.from_dict(f) for k, f in d["functions"].items()
            },
            classes={k: ClassIR.from_dict(c) for k, c in d["classes"].items()},
            aliases=d["aliases"],
        )


# -- extraction ----------------------------------------------------------------


def _dotted_of(node: ast.expr) -> list[str] | None:
    """``a.b.c`` attribute chain as parts, or None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


def _call_target(call: ast.Call, aliases: dict[str, str]) -> tuple[str, str]:
    """Pre-resolution descriptor of a call's callee expression."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in aliases:
            return (_DOTTED, aliases[name])
        return (_NAME, name)
    parts = _dotted_of(func)
    if parts is None:
        return (_UNKNOWN, "")
    if parts[0] in ("self", "cls") and len(parts) == 2:
        return (_SELF, parts[1])
    base = aliases.get(parts[0])
    if base is not None:
        return (_DOTTED, ".".join([base] + parts[1:]))
    # Typed receivers: self.attr.meth() / localvar.meth().  The receiver
    # token goes into the descriptor; resolution consults the attribute-
    # and local-variable type maps.
    if parts[0] == "self" and len(parts) == 3:
        return (_ATTR, f"self.{parts[1]}|{parts[2]}")
    if len(parts) == 2:
        return (_ATTR, f"{parts[0]}|{parts[1]}")
    return (_UNKNOWN, ".".join(parts))


def _ctor_descriptor(value: ast.expr, aliases: dict[str, str]) -> str | None:
    """Class descriptor of a plausible constructor call, or None.

    ``ClassName(...)`` -> ``ClassName`` (resolved through aliases when
    imported); ``mod.Class(...)`` -> the alias-resolved dotted path.
    Non-calls and non-name callees yield None.
    """
    if not isinstance(value, ast.Call):
        return None
    parts = _dotted_of(value.func)
    if parts is None:
        return None
    if len(parts) == 1:
        return aliases.get(parts[0], parts[0])
    base = aliases.get(parts[0])
    if base is not None:
        return ".".join([base] + parts[1:])
    return ".".join(parts)


def _arg_refs(call: ast.Call, params: list[str]) -> list[ArgRef]:
    """Argument descriptors of one call (positional order, then keywords)."""
    refs: list[ArgRef] = []

    def ref_of(expr: ast.expr, keyword: str | None) -> ArgRef:
        if isinstance(expr, ast.Name):
            if expr.id in params:
                return ArgRef(
                    kind="param", index=params.index(expr.id),
                    text=expr.id, keyword=keyword,
                )
            return ArgRef(kind="name", text=expr.id, keyword=keyword)
        return ArgRef(kind="other", keyword=keyword)

    for arg in call.args:
        refs.append(ref_of(arg, None))
    for kw in call.keywords:
        if kw.arg is not None:
            refs.append(ref_of(kw.value, kw.arg))
    return refs


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Positional parameter names (posonly + regular), ``self`` included."""
    args = func.args
    return [a.arg for a in list(args.posonlyargs) + list(args.args)]


class _Extractor:
    """One-pass AST walk building a :class:`FileIR`."""

    def __init__(
        self,
        tree: ast.Module,
        source: str,
        relpath: str,
        module: str,
        local_effect_fn=None,
        blocking_mark_lines: set[int] | None = None,
    ):
        self.tree = tree
        self.source_lines = source.splitlines()
        self.ir = FileIR(relpath=relpath, module=module)
        self.local_effect_fn = local_effect_fn
        self.blocking_mark_lines = blocking_mark_lines or set()
        import_walker = _ImportWalker()
        import_walker.visit(tree)
        self.ir.aliases = import_walker.aliases

    def run(self) -> FileIR:
        """Extract the file IR."""
        self._walk_block(self.tree.body, prefix="", owner_class=None)
        return self.ir

    def _walk_block(
        self, body: list[ast.stmt], prefix: str, owner_class: str | None
    ) -> dict[str, str]:
        local: dict[str, str] = {}
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                local[stmt.name] = qual
                self._extract_function(stmt, qual, owner_class)
            elif isinstance(stmt, ast.ClassDef):
                self._extract_class(stmt, prefix)
        return local

    def _extract_class(self, cls: ast.ClassDef, prefix: str) -> None:
        bases: list[str] = []
        for base in cls.bases:
            parts = _dotted_of(base)
            if parts is None:
                continue
            head = self.ir.aliases.get(parts[0])
            if head is not None:
                bases.append(".".join([head] + parts[1:]))
            else:
                bases.append(".".join(parts))
        methods = [
            m.name
            for m in cls.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        attr_types: dict[str, str] = {}
        for member in cls.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in self._walk_own_body(member):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                descriptor = _ctor_descriptor(node.value, self.ir.aliases)
                if descriptor is not None:
                    attr_types.setdefault(target.attr, descriptor)
        qual = f"{prefix}{cls.name}"
        self.ir.classes[qual] = ClassIR(
            name=qual, bases=bases, methods=methods, attr_types=attr_types
        )
        for member in cls.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(
                    member, f"{qual}.{member.name}", owner_class=qual
                )
            elif isinstance(member, ast.ClassDef):
                self._extract_class(member, prefix=f"{qual}.")

    def _extract_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        owner_class: str | None,
    ) -> None:
        params = _param_names(func)
        fir = FunctionIR(
            qualname=qual,
            line=func.lineno,
            is_async=isinstance(func, ast.AsyncFunctionDef),
            params=params,
            owner_class=owner_class,
            annotated_blocking=self._has_blocking_mark(func),
        )
        # Nested defs are their own IR entries; the body walk below stops
        # at them so their calls are attributed to the inner function.
        for stmt in ast.walk(func):
            if stmt is func:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._direct_parent_function(stmt, func):
                    inner_qual = f"{qual}.<locals>.{stmt.name}"
                    fir.local_defs[stmt.name] = inner_qual
                    self._extract_function(stmt, inner_qual, owner_class)
        for node in self._walk_own_body(func):
            if isinstance(node, ast.Call):
                fir.calls.append(
                    CallSite(
                        line=node.lineno,
                        col=node.col_offset,
                        target=_call_target(node, self.ir.aliases),
                        args=_arg_refs(node, params),
                    )
                )
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                descriptor = _ctor_descriptor(node.value, self.ir.aliases)
                if descriptor is not None:
                    fir.local_types.setdefault(node.targets[0].id, descriptor)
        if self.local_effect_fn is not None:
            fir.local_effects = self.local_effect_fn(
                func, self.ir.aliases, self._walk_own_body
            )
        self.ir.functions[qual] = fir

    def _has_blocking_mark(self, func: ast.AST) -> bool:
        """True when the signature lines carry ``# repro-lint: blocking``."""
        if not self.blocking_mark_lines:
            return False
        last = getattr(func, "body", [func])[0].lineno - 1
        last = min(last, len(self.source_lines))
        return any(
            lineno in self.blocking_mark_lines
            for lineno in range(func.lineno, last + 1)
        )

    @staticmethod
    def _direct_parent_function(inner: ast.AST, outer: ast.AST) -> bool:
        """True when ``inner`` is nested in ``outer`` with no def between."""
        for node in ast.walk(outer):
            if node is inner:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is outer:
                    continue
                if any(n is inner for n in ast.walk(node)):
                    return False
        return True

    @staticmethod
    def _walk_own_body(func: ast.AST):
        """Walk a function body without descending into nested defs/classes."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                stack.extend(ast.iter_child_nodes(node))


class _ImportWalker(ast.NodeVisitor):
    """Collect local-name -> dotted-path aliases (top-level and nested)."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        """``import a.b as c``: c -> a.b; ``import a.b``: a -> a."""
        for alias in node.names:
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                head = alias.name.split(".")[0]
                self.aliases[head] = head

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """``from a.b import c as d``: d -> a.b.c (absolute imports only)."""
        if node.level or node.module is None:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"


def extract_file_ir(
    tree: ast.Module,
    source: str,
    relpath: str,
    local_effect_fn=None,
    blocking_mark_lines: set[int] | None = None,
) -> FileIR:
    """Extract the pure-data IR of one parsed file.

    ``local_effect_fn(func_node, aliases, walk_own_body) -> dict`` lets
    :mod:`tools.lint.summaries` harvest rule-facing local effects during
    the same walk (kept out of this module so the call graph stays
    vocabulary-free).
    """
    return _Extractor(
        tree,
        source,
        relpath,
        module_name_for_relpath(relpath),
        local_effect_fn=local_effect_fn,
        blocking_mark_lines=blocking_mark_lines,
    ).run()


# -- linking -------------------------------------------------------------------


class CallGraph:
    """The linked project: qualified names, edges, SCC condensation.

    Function keys are ``"<module>:<qualname>"`` strings.  ``edges`` maps
    caller key -> ordered unique callee keys; ``unresolved`` counts the
    call sites per caller that could not be bound to a project definition
    (the conservative-fallback signal).
    """

    def __init__(self, irs: dict[str, FileIR]):
        self.irs = irs  # relpath -> FileIR
        self.functions: dict[str, FunctionIR] = {}
        self.file_of: dict[str, str] = {}
        self.module_files: dict[str, FileIR] = {}
        self.classes: dict[str, tuple[str, ClassIR]] = {}  # key -> (module, ir)
        for ir in irs.values():
            self.module_files[ir.module] = ir
            for qual, fir in ir.functions.items():
                key = f"{ir.module}:{qual}"
                self.functions[key] = fir
                self.file_of[key] = ir.relpath
            for cqual, cir in ir.classes.items():
                self.classes[f"{ir.module}:{cqual}"] = (ir.module, cir)
        self.edges: dict[str, list[str]] = {}
        self.unresolved: dict[str, int] = {}
        #: (relpath, line, col) -> callee key, for rule-side lookups.
        self.callsite_index: dict[tuple[str, int, int], str] = {}
        self._link()

    # -- name resolution ----------------------------------------------------

    def _resolve_export(self, dotted: str, depth: int = 0) -> str | None:
        """Resolve a dotted path to a function key, following re-exports.

        ``pkg.helper`` where ``pkg/__init__`` does ``from pkg.impl import
        helper`` chases the alias into ``pkg.impl:helper`` (bounded depth
        guards against alias cycles).
        """
        if depth > 8:
            return None
        # Longest-prefix module match, remainder is the qualname path.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            ir = self.module_files.get(module)
            if ir is None:
                continue
            rest = ".".join(parts[cut:])
            key = f"{module}:{rest}"
            if key in self.functions:
                return key
            cls_key = f"{module}:{rest}"
            if cls_key in self.classes:
                return self._resolve_method(cls_key, "__init__")
            # Method path  module:Class.meth  spelled from outside.
            if "." in rest:
                head, tail = rest.rsplit(".", 1)
                owner = f"{module}:{head}"
                if owner in self.classes:
                    return self._resolve_method(owner, tail)
            # Re-export: the module aliases this name onward.
            target = ir.aliases.get(parts[cut])
            if target is not None:
                remainder = parts[cut + 1 :]
                return self._resolve_export(
                    ".".join([target] + remainder), depth + 1
                )
        return None

    def _resolve_class_descriptor(
        self, descriptor: str, ir: FileIR
    ) -> str | None:
        """Class key of a base-class descriptor as seen from ``ir``."""
        if "." not in descriptor:
            if descriptor in ir.classes:
                return f"{ir.module}:{descriptor}"
            dotted = ir.aliases.get(descriptor)
            if dotted is None:
                return None
            descriptor = dotted
        parts = descriptor.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            sub = self.module_files.get(module)
            if sub is None:
                continue
            rest = ".".join(parts[cut:])
            if f"{module}:{rest}" in self.classes:
                return f"{module}:{rest}"
            target = sub.aliases.get(parts[cut])
            if target is not None:
                chased = ".".join([target] + parts[cut + 1 :])
                if chased != descriptor:
                    return self._resolve_class_descriptor(chased, sub)
        return None

    def _resolve_method(self, cls_key: str, method: str, depth: int = 0) -> str | None:
        """Find ``method`` on a class or its project-resolvable bases."""
        if depth > 12 or cls_key not in self.classes:
            return None
        module, cir = self.classes[cls_key]
        if method in cir.methods:
            return f"{module}:{cir.name}.{method}"
        owner_ir = self.module_files.get(module)
        for base in cir.bases:
            base_key = (
                self._resolve_class_descriptor(base, owner_ir)
                if owner_ir is not None
                else None
            )
            if base_key is not None:
                found = self._resolve_method(base_key, method, depth + 1)
                if found is not None:
                    return found
        return None

    def _attr_type(self, cls_key: str, attr: str, depth: int = 0) -> str | None:
        """Descriptor of ``self.<attr>``'s type on a class or its bases."""
        if depth > 12 or cls_key not in self.classes:
            return None
        module, cir = self.classes[cls_key]
        if attr in cir.attr_types:
            return cir.attr_types[attr]
        owner_ir = self.module_files.get(module)
        for base in cir.bases:
            base_key = (
                self._resolve_class_descriptor(base, owner_ir)
                if owner_ir is not None
                else None
            )
            if base_key is not None:
                found = self._attr_type(base_key, attr, depth + 1)
                if found is not None:
                    return found
        return None

    def resolve_call(
        self, ir: FileIR, caller: FunctionIR, site: CallSite
    ) -> str | None:
        """Callee key of one call site, or None when unresolvable."""
        kind, text = site.target
        if kind == _ATTR:
            recv, method = text.split("|", 1)
            if recv.startswith("self."):
                if caller.owner_class is None:
                    return None
                descriptor = self._attr_type(
                    f"{ir.module}:{caller.owner_class}", recv[len("self."):]
                )
            else:
                descriptor = caller.local_types.get(recv)
            if descriptor is None:
                return None
            cls_key = self._resolve_class_descriptor(descriptor, ir)
            if cls_key is None:
                return None
            return self._resolve_method(cls_key, method)
        if kind == _SELF:
            if caller.owner_class is None:
                return None
            return self._resolve_method(
                f"{ir.module}:{caller.owner_class}", text
            )
        if kind == _NAME:
            # Closures: innermost local def wins, then enclosing defs.
            if text in caller.local_defs:
                return f"{ir.module}:{caller.local_defs[text]}"
            outer = caller.qualname
            while ".<locals>." in outer:
                outer = outer.rsplit(".<locals>.", 1)[0]
                outer_fir = ir.functions.get(outer)
                if outer_fir is not None and text in outer_fir.local_defs:
                    return f"{ir.module}:{outer_fir.local_defs[text]}"
            if text in ir.functions:
                return f"{ir.module}:{text}"
            if text in ir.classes:
                return self._resolve_method(f"{ir.module}:{text}", "__init__")
            return None
        if kind == _DOTTED:
            return self._resolve_export(text)
        return None

    # -- linking and SCCs ---------------------------------------------------

    def _link(self) -> None:
        for ir in self.irs.values():
            for qual, fir in ir.functions.items():
                key = f"{ir.module}:{qual}"
                callees: list[str] = []
                unresolved = 0
                for site in fir.calls:
                    target = self.resolve_call(ir, fir, site)
                    if target is None:
                        unresolved += 1
                    else:
                        self.callsite_index[(ir.relpath, site.line, site.col)] = target
                        if target not in callees:
                            callees.append(target)
                self.edges[key] = callees
                self.unresolved[key] = unresolved

    def sccs_bottom_up(self) -> list[list[str]]:
        """Tarjan SCCs of the call graph in reverse-topological order.

        The returned order visits callees before callers, so a bottom-up
        summary pass can fold each SCC once (with a fixpoint inside the
        component for recursion cycles).
        """
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, iterator state) frames.
            work = [(root, 0)]
            while work:
                node, child_i = work[-1]
                if child_i == 0:
                    index_of[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recursed = False
                children = self.edges.get(node, [])
                while child_i < len(children):
                    child = children[child_i]
                    child_i += 1
                    if child not in self.edges:
                        continue  # callee outside the project scope
                    if child not in index_of:
                        work[-1] = (node, child_i)
                        work.append((child, 0))
                        recursed = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[child])
                if recursed:
                    continue
                if lowlink[node] == index_of[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(component)
                work.pop()
                if work:
                    parent, _ = work[-1]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for key in self.edges:
            if key not in index_of:
                strongconnect(key)
        return sccs

    def reverse_edges(self) -> dict[str, set[str]]:
        """Callee key -> caller keys (the reverse-dependency frontier)."""
        out: dict[str, set[str]] = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                out.setdefault(callee, set()).add(caller)
        return out
