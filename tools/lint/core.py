"""Core of the ``repro-lint`` static-analysis framework.

The framework is deliberately small and dependency-free: rules operate on
the stdlib :mod:`ast` of one file at a time (plus a little repo-level
context such as the module's dotted name), findings carry a *stable
fingerprint* so a checked-in baseline can tolerate pre-existing debt
without pinning line numbers, and inline ``# repro-lint: disable=REP001``
comments suppress individual findings at the offending line.

Vocabulary
----------
Rule
    A check with a stable ``REPnnn`` id.  Rules are registered in a module
    -level registry via :func:`register` and discovered by the CLI.
Finding
    One violation: (rule, file, line, message, symbol).  The ``symbol`` is
    a line-number-free context string (e.g. ``ClusterScheduler.__init__``)
    used to build the baseline fingerprint, so unrelated edits above a
    finding do not invalidate the baseline.
Suppression
    ``# repro-lint: disable=REP001`` (or ``disable=all``) on the finding's
    line, or ``# repro-lint: disable-file=REP004`` anywhere in the file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


class LintError(Exception):
    """The framework itself failed (bad path, unparseable config...)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one place in one file."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    message: str
    symbol: str  # stable, line-free context for the fingerprint

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline."""
        return f"{self.path}::{self.rule}::{self.symbol}"

    def render(self) -> str:
        """Human-readable one-line report."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form (CLI ``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path  # absolute path on disk
    relpath: str  # repo-relative posix path (used in reports)
    source: str
    tree: ast.Module
    module_name: str | None  # dotted ``repro.x.y`` when under src/, else None
    #: The :class:`~tools.lint.summaries.ProjectSummaries` of this run,
    #: or None when interprocedural analysis is disabled.  Rules that can
    #: use call-graph facts check for it and degrade to their
    #: per-function behaviour without it.
    project: object | None = None

    @property
    def package(self) -> str | None:
        """First package component under ``repro`` (None outside src/).

        Top-level modules (``repro.config``) map to ``"<root>"``.
        """
        if self.module_name is None or not self.module_name.startswith("repro"):
            return None
        parts = self.module_name.split(".")
        if len(parts) == 1:
            return "<root>"
        if len(parts) == 2:
            # repro.config / repro.util (package __init__) both land here;
            # a package's __init__ belongs to the package itself.
            if self.path.name == "__init__.py":
                return parts[1]
            return "<root>"
        return parts[1]

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, symbol: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            message=message,
            symbol=symbol,
        )


class Rule:
    """Base class for lint rules; subclasses set the class attributes.

    ``explanation`` feeds the CLI's ``--explain REPnnn`` developer-help
    mode and should include one bad and one good example.
    """

    id: str = "REP000"
    name: str = "abstract-rule"
    summary: str = ""
    explanation: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file (may be empty)."""
        raise NotImplementedError

    def finish(self) -> Iterator[Finding]:
        """Yield repo-level findings after every file was checked.

        Most rules are file-local and use the default (empty) hook.
        """
        return iter(())


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if rule.id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """The registered rules keyed by id (fresh instances each call)."""
    import tools.lint.rules  # noqa: F401  -- registers on first import

    return {rid: type(rule)() for rid, rule in sorted(_REGISTRY.items())}


# -- suppressions -------------------------------------------------------------

# A directive may carry a human justification after ``--``:
#   x = f()  # repro-lint: disable=REP003 -- differ-thread only
_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:--|#|$)"
)
_DISABLE_FILE_RE = re.compile(
    r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+?)\s*(?:--|#|$)"
)


@dataclass
class Suppressions:
    """Parsed suppression comments of one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    whole_file: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        """Scan source lines for ``repro-lint`` directives."""
        supp = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DISABLE_RE.search(text)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                supp.by_line.setdefault(lineno, set()).update(r for r in rules if r)
            match = _DISABLE_FILE_RE.search(text)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                supp.whole_file.update(r for r in rules if r)
        return supp

    def covers(self, finding: Finding) -> bool:
        """True when the finding is explicitly suppressed."""
        for scope in (self.whole_file, self.by_line.get(finding.line, set())):
            if "all" in scope or finding.rule in scope:
                return True
        return False


# -- file discovery and the lint driver ---------------------------------------


def _module_name_for(path: Path, root: Path) -> str | None:
    """Dotted module name when the file lives under ``<root>/src/``."""
    try:
        rel = path.resolve().relative_to((root / "src").resolve())
    except ValueError:
        return None
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def iter_python_files(paths: Iterable[str | Path], root: Path) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = root / p
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.is_file():
            out.add(p)
        else:
            raise LintError(f"no such file or directory: {raw}")
    return sorted(out)


def make_context(path: Path, root: Path) -> FileContext:
    """Read and parse one file into a :class:`FileContext`."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc}") from exc
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        module_name=_module_name_for(path, root),
    )


@dataclass
class LintReport:
    """Outcome of one lint run (before baseline filtering)."""

    findings: list[Finding]
    n_suppressed: int
    n_files: int
    #: Files whose findings were replayed from the warm cache.
    n_from_cache: int = 0


def _filter_rules(select: Iterable[str] | None) -> dict[str, Rule]:
    """Fresh rule instances, narrowed to ``select`` when given."""
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - set(rules)
        if unknown:
            raise LintError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = {rid: r for rid, r in rules.items() if rid in wanted}
    return rules


def _relpath_of(path: Path, root: Path) -> str:
    """Repo-relative posix path (absolute posix when outside the root)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _lint_one_file(
    path: Path, root: Path, rules: dict[str, Rule], project
) -> tuple[str, list[Finding], int]:
    """Run the per-file rule pass; returns (relpath, findings, n_suppressed)."""
    ctx = make_context(path, root)
    ctx.project = project
    supp = Suppressions.parse(ctx.source)
    findings: list[Finding] = []
    n_suppressed = 0
    for rule in rules.values():
        for finding in rule.check(ctx):
            if supp.covers(finding):
                n_suppressed += 1
            else:
                findings.append(finding)
    return ctx.relpath, findings, n_suppressed


# The --jobs worker pool: each process builds its rule instances once and
# receives the (pure-data) project summaries through the initializer.
_WORKER: dict = {}


def _worker_init(root_str: str, select: tuple[str, ...] | None, project) -> None:
    _WORKER["root"] = Path(root_str)
    _WORKER["rules"] = _filter_rules(select)
    _WORKER["project"] = project


def _worker_lint(path_str: str) -> tuple[str, list[Finding], int]:
    return _lint_one_file(
        Path(path_str), _WORKER["root"], _WORKER["rules"], _WORKER["project"]
    )


def _build_project(files: list[Path], root: Path, cache):
    """Serial summary pass: extract (or reuse cached) IRs, link, converge.

    Returns ``(project, shas)`` where ``shas`` maps relpath to the file's
    content hash (reused for the findings-cache key).
    """
    from tools.lint.cache import content_hash
    from tools.lint.summaries import build_project, extract_ir

    irs = {}
    shas: dict[str, str] = {}
    for path in files:
        data = path.read_bytes()
        sha = content_hash(data)
        relpath = _relpath_of(path, root)
        shas[relpath] = sha
        ir = cache.get_ir(relpath, sha) if cache is not None else None
        if ir is None:
            source = data.decode("utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                raise LintError(f"{path}: syntax error: {exc}") from exc
            ir = extract_ir(tree, source, relpath)
            if cache is not None:
                cache.put_ir(relpath, sha, ir)
        irs[relpath] = ir
    return build_project(irs), shas


def run_lint(
    paths: Iterable[str | Path],
    root: Path,
    select: Iterable[str] | None = None,
    *,
    jobs: int = 1,
    use_summaries: bool = True,
    cache_dir: str | Path | None = None,
) -> LintReport:
    """Run all (or ``select``-ed) rules over the given paths.

    The run has two passes.  The serial *summary pass* extracts per-file
    IRs, links the project call graph and converges the effect summaries
    (skipped with ``use_summaries=False``, which also disables the
    cache -- findings keys depend on summary signatures).  The *rule
    pass* lints each file and fans out over ``jobs`` worker processes
    when asked; with a ``cache_dir``, files whose content hash and
    dependency signature both match the cache replay their findings
    without re-parsing or re-linting.
    """
    select = tuple(select) if select is not None else None
    rules = _filter_rules(select)
    select_key = ",".join(sorted(rules))
    files = iter_python_files(paths, root)
    cache = None
    if cache_dir is not None and use_summaries:
        from tools.lint.cache import LintCache

        cache = LintCache(cache_dir)

    project = None
    shas: dict[str, str] = {}
    if use_summaries:
        project, shas = _build_project(files, root, cache)

    findings: list[Finding] = []
    n_suppressed = 0
    n_from_cache = 0
    to_run: list[tuple[Path, str | None]] = []  # (path, findings-cache key)
    if cache is not None:
        from tools.lint.cache import LintCache as _LC

        for path in files:
            relpath = _relpath_of(path, root)
            key = _LC.findings_key(
                shas[relpath],
                project.dependency_signature(relpath),
                select_key,
            )
            hit = cache.get_findings(relpath, key)
            if hit is None:
                to_run.append((path, key))
            else:
                cached_findings, cached_suppressed = hit
                findings.extend(
                    Finding(
                        rule=f["rule"],
                        path=f["path"],
                        line=f["line"],
                        message=f["message"],
                        symbol=f["symbol"],
                    )
                    for f in cached_findings
                )
                n_suppressed += cached_suppressed
                n_from_cache += 1
    else:
        to_run = [(path, None) for path in files]

    # Cross-file `finish()` state only exists on the serial, no-project
    # path (with summaries the lifted rules report everything in check()),
    # so parallel execution without summaries falls back to one process.
    if project is None and jobs > 1:
        jobs = 1

    if jobs > 1 and len(to_run) > 1:
        from concurrent.futures import ProcessPoolExecutor

        keys = {str(path): key for path, key in to_run}
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(str(root), select, project),
        ) as pool:
            results = list(
                pool.map(_worker_lint, [str(path) for path, _ in to_run])
            )
        for (relpath, file_findings, file_suppressed), (path, _) in zip(
            results, to_run
        ):
            findings.extend(file_findings)
            n_suppressed += file_suppressed
            if cache is not None:
                cache.put_findings(
                    relpath,
                    keys[str(path)],
                    [f.to_dict() for f in file_findings],
                    file_suppressed,
                )
    else:
        supp_by_path: dict[str, Suppressions] = {}
        for path, key in to_run:
            ctx = make_context(path, root)
            ctx.project = project
            supp = Suppressions.parse(ctx.source)
            supp_by_path[ctx.relpath] = supp
            file_findings: list[Finding] = []
            file_suppressed = 0
            for rule in rules.values():
                for finding in rule.check(ctx):
                    if supp.covers(finding):
                        file_suppressed += 1
                    else:
                        file_findings.append(finding)
            findings.extend(file_findings)
            n_suppressed += file_suppressed
            if cache is not None and key is not None:
                cache.put_findings(
                    ctx.relpath,
                    key,
                    [f.to_dict() for f in file_findings],
                    file_suppressed,
                )
        # Repo-level findings honour the suppressions of the file they
        # point at, same as per-file findings (REP010's no-project mode
        # reports call sites discovered only after every file was read).
        for rule in rules.values():
            for finding in rule.finish():
                supp = supp_by_path.get(finding.path)
                if supp is not None and supp.covers(finding):
                    n_suppressed += 1
                else:
                    findings.append(finding)

    if cache is not None:
        cache.save()
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintReport(
        findings=findings,
        n_suppressed=n_suppressed,
        n_files=len(files),
        n_from_cache=n_from_cache,
    )


# -- shared AST helpers used by several rules ---------------------------------


class ImportAliases(ast.NodeVisitor):
    """Map local names to canonical dotted module paths.

    Tracks ``import numpy as np`` (np -> numpy), ``from numpy import
    random as nr`` (nr -> numpy.random) and ``from numpy.random import
    default_rng`` (default_rng -> numpy.random.default_rng), so rules can
    resolve an attribute chain like ``np.random.default_rng`` to its
    canonical name regardless of aliasing.
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never reach numpy/time/datetime
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"


def resolve_dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def enclosing_symbols(tree: ast.Module) -> dict[int, str]:
    """Map each AST node id to its enclosing ``Class.func`` qualname.

    Used by rules to build stable finding symbols: the qualname of the
    innermost enclosing function/class, or ``<module>`` at top level.
    """
    symbols: dict[int, str] = {}

    def walk(node: ast.AST, qualname: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_qual = qualname
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_qual = (
                    f"{qualname}.{child.name}" if qualname != "<module>" else child.name
                )
            symbols[id(child)] = child_qual
            walk(child, child_qual)

    symbols[id(tree)] = "<module>"
    walk(tree, "<module>")
    return symbols
