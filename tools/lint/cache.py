"""Warm-run cache for the interprocedural lint pipeline.

One JSON file (``lint-cache.json`` inside the ``--cache-dir``) holds, per
linted file:

- the extracted :class:`~tools.lint.callgraph.FileIR`, keyed on the
  file's content hash -- a warm run rebuilds the project call graph and
  effect summaries from cached IRs without re-parsing unchanged files;
- the post-suppression findings, keyed on content hash **plus** the
  file's *dependency signature* (a digest of every resolved callee's
  effect summary and the global annotation set).  Editing one file
  therefore invalidates exactly that file and its reverse-dependency
  frontier: callers whose callee summaries changed get a different
  signature and re-lint, everyone else replays cached findings.

The whole cache is scoped to an *engine hash* (the content hash of every
``tools/lint`` source file), so upgrading the linter or editing a rule
discards stale results wholesale.  Content hashes -- never timestamps --
keep the cache deterministic and honest under REP002.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from tools.lint.callgraph import FileIR

_CACHE_VERSION = 1
_CACHE_NAME = "lint-cache.json"


def content_hash(data: str | bytes) -> str:
    """sha256 hex digest of file content (str content is utf-8 encoded)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def engine_hash() -> str:
    """Digest of every ``tools/lint`` source file (the engine version).

    Any edit to the framework, a rule, or a protocol spec changes this
    hash and invalidates the whole cache.
    """
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(path.relative_to(package_dir).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class LintCache:
    """Load/update/save the single-file lint cache (see module docstring).

    A ``None`` directory degrades every method to a miss/no-op, so the
    driver never branches on whether caching is enabled.
    """

    def __init__(self, cache_dir: str | Path | None):
        self.path = (
            Path(cache_dir) / _CACHE_NAME if cache_dir is not None else None
        )
        self.engine = engine_hash()
        self._irs: dict[str, dict] = {}
        self._findings: dict[str, dict] = {}
        self._dirty = False
        if self.path is not None and self.path.is_file():
            self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # unreadable/corrupt cache == empty cache
        if raw.get("version") != _CACHE_VERSION or raw.get("engine") != self.engine:
            return
        self._irs = raw.get("irs", {})
        self._findings = raw.get("findings", {})

    # -- IRs ----------------------------------------------------------------

    def get_ir(self, relpath: str, sha: str) -> FileIR | None:
        """Cached IR of an unchanged file, or None."""
        entry = self._irs.get(relpath)
        if entry is None or entry.get("sha") != sha:
            return None
        return FileIR.from_dict(entry["ir"])

    def put_ir(self, relpath: str, sha: str, ir: FileIR) -> None:
        """Record a freshly extracted IR."""
        self._irs[relpath] = {"sha": sha, "ir": ir.to_dict()}
        self._dirty = True

    # -- findings -----------------------------------------------------------

    @staticmethod
    def findings_key(sha: str, dep_signature: str, select_key: str) -> str:
        """The composite invalidation key of one file's findings."""
        return f"{sha}:{content_hash(dep_signature)}:{select_key}"

    def get_findings(self, relpath: str, key: str) -> tuple[list[dict], int] | None:
        """Cached (finding dicts, n_suppressed) for a key, or None."""
        entry = self._findings.get(relpath)
        if entry is None or entry.get("key") != key:
            return None
        return entry["findings"], entry["n_suppressed"]

    def put_findings(
        self, relpath: str, key: str, findings: list[dict], n_suppressed: int
    ) -> None:
        """Record one file's post-suppression findings."""
        self._findings[relpath] = {
            "key": key,
            "findings": findings,
            "n_suppressed": n_suppressed,
        }
        self._dirty = True

    # -- persistence --------------------------------------------------------

    def save(self) -> None:
        """Write the cache back (no-op when disabled or unchanged)."""
        if self.path is None or not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _CACHE_VERSION,
            "engine": self.engine,
            "irs": self._irs,
            "findings": self._findings,
        }
        # A torn write is harmless: _load treats a corrupt cache as empty
        # and the next run is simply cold, so no staging dance is needed.
        self.path.write_text(json.dumps(payload), encoding="utf-8")
        self._dirty = False
