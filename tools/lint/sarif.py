"""SARIF 2.1.0 output for repro-lint (GitHub code-scanning ingestion).

:func:`render_sarif` turns a list of findings into a SARIF log object;
``python -m tools.lint --format sarif`` prints it.  :func:`validate_sarif`
is a structural validator for the subset of the SARIF 2.1.0 schema the
renderer emits -- CI runs it on the freshly rendered log so a renderer
regression fails the build before GitHub rejects the upload.

SARIF notes
-----------
- ``partialFingerprints`` carries the baseline fingerprint (path::rule::
  symbol) under the key ``reproLint/v1`` so code-scanning tracks a
  finding across line drift exactly like the baseline does.
- Rules are deduplicated into ``tool.driver.rules`` and referenced by
  ``ruleIndex``; unregistered rule ids (never expected) still render
  with a bare ``ruleId``.
- Every location is repo-relative with ``uriBaseId: SRCROOT``, the
  conventional base GitHub resolves against the repository root.
"""

from __future__ import annotations

from typing import Iterable

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: partialFingerprints key; bump the suffix if the fingerprint recipe changes.
FINGERPRINT_KEY = "reproLint/v1"

_LEVELS = ("none", "note", "warning", "error")


def render_sarif(findings: Iterable, rules: dict) -> dict:
    """A SARIF ``log`` object for *findings*.

    Parameters
    ----------
    findings:
        :class:`~tools.lint.core.Finding` objects (new, non-baselined).
    rules:
        Rule-id -> rule instance map (``all_rules()``); used to emit the
        ``tool.driver.rules`` metadata table.
    """
    rule_ids = sorted(rules)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    driver_rules = []
    for rule_id in rule_ids:
        rule = rules[rule_id]
        driver_rules.append(
            {
                "id": rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "fullDescription": {"text": rule.explanation.strip()},
                "defaultConfiguration": {"level": "error"},
            }
        )

    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
            "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint},
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }


def validate_sarif(doc) -> list[str]:
    """Structural problems in a SARIF log; empty list means valid.

    Checks the SARIF 2.1.0 constraints that matter for code-scanning
    ingestion: version pinning, the required tool/driver/rules shape,
    result messages, level vocabulary, location regions and that every
    ``ruleIndex`` points at the matching ``ruleId``.
    """
    problems: list[str] = []

    def err(path: str, msg: str) -> None:
        problems.append(f"{path}: {msg}")

    if not isinstance(doc, dict):
        return ["$: SARIF log must be a JSON object"]
    if doc.get("version") != SARIF_VERSION:
        err("$.version", f"must be {SARIF_VERSION!r}, got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        err("$.runs", "must be a non-empty array")
        return problems

    for ri, run in enumerate(runs):
        base = f"$.runs[{ri}]"
        if not isinstance(run, dict):
            err(base, "must be an object")
            continue
        driver = (run.get("tool") or {}).get("driver")
        if not isinstance(driver, dict) or not driver.get("name"):
            err(f"{base}.tool.driver", "must be an object with a 'name'")
            driver = {}
        rules = driver.get("rules", [])
        rule_ids: list[str] = []
        if not isinstance(rules, list):
            err(f"{base}.tool.driver.rules", "must be an array")
            rules = []
        for qi, rule in enumerate(rules):
            rpath = f"{base}.tool.driver.rules[{qi}]"
            if not isinstance(rule, dict) or not rule.get("id"):
                err(rpath, "must be an object with an 'id'")
                rule_ids.append("")
                continue
            rule_ids.append(rule["id"])
            short = rule.get("shortDescription")
            if short is not None and not (
                isinstance(short, dict) and isinstance(short.get("text"), str)
            ):
                err(f"{rpath}.shortDescription", "must be {'text': <string>}")

        results = run.get("results")
        if not isinstance(results, list):
            err(f"{base}.results", "must be an array")
            continue
        for si, result in enumerate(results):
            spath = f"{base}.results[{si}]"
            if not isinstance(result, dict):
                err(spath, "must be an object")
                continue
            if not isinstance(result.get("ruleId"), str) or not result["ruleId"]:
                err(f"{spath}.ruleId", "must be a non-empty string")
            message = result.get("message")
            if not (
                isinstance(message, dict)
                and isinstance(message.get("text"), str)
                and message["text"]
            ):
                err(f"{spath}.message", "must be {'text': <non-empty string>}")
            level = result.get("level", "warning")
            if level not in _LEVELS:
                err(f"{spath}.level", f"must be one of {_LEVELS}, got {level!r}")
            index = result.get("ruleIndex")
            if index is not None:
                if not isinstance(index, int) or not 0 <= index < len(rule_ids):
                    err(f"{spath}.ruleIndex", f"out of range: {index!r}")
                elif rule_ids[index] != result.get("ruleId"):
                    err(
                        f"{spath}.ruleIndex",
                        f"points at {rule_ids[index]!r}, ruleId is "
                        f"{result.get('ruleId')!r}",
                    )
            locations = result.get("locations")
            if not isinstance(locations, list) or not locations:
                err(f"{spath}.locations", "must be a non-empty array")
                continue
            for li, loc in enumerate(locations):
                lpath = f"{spath}.locations[{li}].physicalLocation"
                phys = loc.get("physicalLocation") if isinstance(loc, dict) else None
                if not isinstance(phys, dict):
                    err(lpath, "must be an object")
                    continue
                artifact = phys.get("artifactLocation")
                if not (
                    isinstance(artifact, dict)
                    and isinstance(artifact.get("uri"), str)
                    and artifact["uri"]
                    and not artifact["uri"].startswith("/")
                ):
                    err(
                        f"{lpath}.artifactLocation.uri",
                        "must be a non-empty relative URI",
                    )
                region = phys.get("region")
                if region is not None:
                    start = region.get("startLine") if isinstance(region, dict) else None
                    if not isinstance(start, int) or start < 1:
                        err(f"{lpath}.region.startLine", "must be an int >= 1")
    return problems
