"""Typestate engine: declarative protocol state machines over the CFG.

A *protocol machine* declares how a tracked value may move through a
small set of states, and REP013 (:mod:`tools.lint.rules.protocols`)
reports any CFG path that drives a machine through an undeclared
transition or leaves it in a forbidden state at function exit.

Two machine families cover the repo's protocols:

:class:`ProtocolSpec` (token machines)
    The token is a local variable bound by a *creator* (a constructor
    call like ``SharedEnsembleBuffer(...)`` or a staging call like
    ``target.with_suffix(".tmp")``).  *Events* advance it: method calls
    on the token, calls taking the token as first argument
    (``durable_replace(tmp, dst)``), and -- when interprocedural
    summaries are available -- calls passing the token to any project
    function whose effect summary touches that parameter (an fsync
    hidden in a helper is still an fsync).  Escapes (return, store into
    an attribute, aliasing, passing to an unresolvable call) drop the
    token: ownership left the function, conservatively nothing to check.

:class:`AttrProtocolSpec` (attribute-value machines)
    Tracks ``obj.<attr> = Enum.MEMBER`` assignments (the ``Job`` attempt
    lifecycle): consecutive assignments to the same object must follow
    the declared transition relation; named setter methods
    (``reset_for_retry``) count as assignments of their declared state.

Declaring a new machine
-----------------------
Append a spec to :data:`BUILTIN_PROTOCOLS` (or
:data:`BUILTIN_ATTR_PROTOCOLS`).  A token machine needs: the creators,
the event vocabulary (method names / first-arg function terminals / the
summary field that carries the event through helpers), the declared
``transitions[state][event] -> state`` relation, per-event violation
messages for undeclared transitions, and optional ``exit_errors`` for
states that must not reach function exit.  Everything else (CFG walk,
merging, interprocedural event lookup) is shared machinery.

Violations are *must* errors: an event is only reported when **every**
state the token may be in lacks a declared transition, so a diamond
merge where one branch already closed a buffer does not flag the other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from tools.lint.dataflow import FuncDef, analyze_forward, build_cfg

# -- declarative specs ---------------------------------------------------------


@dataclass(frozen=True)
class Creator:
    """How a protocol token comes into existence.

    ``kind`` is ``"ctor"`` (call whose callee name -- bare, dotted
    terminal, or ``Class.attach``-style head -- is in ``names``) or
    ``"method_result"`` (result of a receiver method in ``names``).
    """

    kind: str
    names: tuple[str, ...]
    state: str


@dataclass(frozen=True)
class EventDef:
    """One event of a token machine and the calls that trigger it.

    ``methods`` fire on ``token.m(...)``; ``terminals`` fire on
    ``f(token, ...)`` by callee terminal name; ``summary_attr`` names the
    :class:`~tools.lint.summaries.EffectSummary` parameter-index field
    that carries the event through project helpers.  ``any_method`` makes
    this the catch-all for method calls not matched by other events
    (the "use" event of use-after-close checking).
    """

    event: str
    methods: tuple[str, ...] = ()
    terminals: tuple[str, ...] = ()
    summary_attr: str | None = None
    any_method: bool = False


@dataclass(frozen=True)
class ProtocolSpec:
    """A declarative token state machine (see module docstring)."""

    name: str
    description: str
    creators: tuple[Creator, ...]
    events: tuple[EventDef, ...]
    #: state -> event -> next state; an event undeclared for every state
    #: the token may occupy is a violation.
    transitions: Mapping[str, Mapping[str, str]]
    #: event -> message template ({token}/{state} substituted).
    messages: Mapping[str, str]
    #: state -> message for tokens still in that state at function exit.
    exit_errors: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class AttrProtocolSpec:
    """A declarative attribute-value machine (``obj.attr = Enum.X``)."""

    name: str
    description: str
    attr: str
    enum: str
    #: member -> members reachable from it by direct assignment.
    transitions: Mapping[str, tuple[str, ...]]
    #: method name -> member it assigns (``reset_for_retry`` -> QUEUED).
    setters: Mapping[str, str] = field(default_factory=dict)
    message: str = "{token}.{attr} may move {old} -> {new}, not declared"


# -- the built-in machines -----------------------------------------------------

STAGED_PUBLISH = ProtocolSpec(
    name="staged-publish",
    description=(
        "a temp path staged with with_suffix/with_name and written must be "
        "published exactly once (covfile / product-HEAD commit protocol)"
    ),
    creators=(
        Creator(kind="method_result", names=("with_suffix", "with_name"), state="staged"),
    ),
    events=(
        EventDef(
            event="write",
            methods=("write_text", "write_bytes"),
            terminals=("open", "save", "savez", "savez_compressed", "savetxt",
                       "open_memmap"),
            summary_attr="write_params",
        ),
        EventDef(
            event="fsync",
            methods=("flush",),
            terminals=("fsync_path", "fsync", "durable_replace"),
            summary_attr="fsync_params",
        ),
        EventDef(
            event="replace",
            methods=("replace", "rename"),
            terminals=("durable_replace",),
            summary_attr="replace_src_params",
        ),
    ),
    transitions={
        # REP011 owns the fsync-before-replace ordering; replace is
        # declared from every pre-publish state here so the two rules
        # never double-report one defect.
        "staged": {"write": "dirty", "fsync": "fsynced", "replace": "published"},
        "dirty": {"write": "dirty", "fsync": "fsynced", "replace": "published"},
        "fsynced": {"write": "dirty", "fsync": "fsynced", "replace": "published"},
        "published": {},
    },
    messages={
        "write": "{token} written after publish (temp path no longer exists)",
        "fsync": "{token} fsynced after publish",
        "replace": "{token} published twice",
    },
    exit_errors={
        "dirty": (
            "{token} staged and written but never published "
            "(leaked temp file on every path through here)"
        ),
        "fsynced": (
            "{token} staged and fsynced but never published "
            "(leaked temp file on every path through here)"
        ),
    },
)

SHM_BUFFER = ProtocolSpec(
    name="shm-buffer",
    description=(
        "a shared-memory ensemble buffer slot must not be touched after "
        "close()/unlink() and must not be closed twice"
    ),
    creators=(
        Creator(kind="ctor", names=("SharedEnsembleBuffer",), state="open"),
    ),
    events=(
        EventDef(event="close", methods=("close",), summary_attr="close_params"),
        EventDef(event="unlink", methods=("unlink",)),
        EventDef(event="use", any_method=True),
    ),
    transitions={
        "open": {"close": "closed", "unlink": "unlinked", "use": "open"},
        # owner-side teardown: close the mapping, then unlink the segment.
        "closed": {"unlink": "unlinked"},
        "unlinked": {},
    },
    messages={
        "close": "{token} closed twice ({state} already)",
        "unlink": "{token} unlinked twice",
        "use": "{token} used after close/unlink ({state})",
    },
)

BUILTIN_PROTOCOLS: tuple[ProtocolSpec, ...] = (STAGED_PUBLISH, SHM_BUFFER)

JOB_LIFECYCLE = AttrProtocolSpec(
    name="job-lifecycle",
    description=(
        "Job.state must follow QUEUED -> RUNNING -> DONE/FAILED/CANCELLED "
        "with retries re-queueing only unfinished jobs"
    ),
    attr="state",
    enum="JobState",
    transitions={
        "QUEUED": ("RUNNING", "FAILED", "CANCELLED", "QUEUED"),
        "RUNNING": ("DONE", "FAILED", "CANCELLED", "QUEUED"),
        "FAILED": ("QUEUED", "CANCELLED"),
        "CANCELLED": ("QUEUED",),
        "DONE": (),  # terminal: a completed job is never recycled
    },
    setters={"reset_for_retry": "QUEUED"},
)

BUILTIN_ATTR_PROTOCOLS: tuple[AttrProtocolSpec, ...] = (JOB_LIFECYCLE,)


# -- shared AST plumbing -------------------------------------------------------


def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk without descending into nested function/class bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(current))


def _node_exprs(node) -> list[ast.AST]:
    """The expressions a CFG node actually evaluates (kind-aware)."""
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == "stmt":
        return [stmt]
    if node.kind == "branch":
        if isinstance(stmt, ast.If):
            return [stmt.test]
        if isinstance(stmt, ast.Match):
            return [stmt.subject]
        return []
    if node.kind == "loop_head":
        if isinstance(stmt, ast.While):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        return []
    if node.kind == "with":
        return [item.context_expr for item in stmt.items]
    return []  # with_exit / except / entry / exit evaluate nothing


def _call_terminal(call: ast.Call) -> str | None:
    """Terminal callee name (``pkg.mod.f`` and ``f`` both -> ``f``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_name(call: ast.Call) -> str | None:
    """``tok`` of a ``tok.m(...)`` call (bare-Name receivers only)."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None


# -- token machine engine ------------------------------------------------------

#: Analysis state: frozenset of (token_var, creation_line, state) triples.
_TokenState = frozenset


class ProtocolChecker:
    """Run one :class:`ProtocolSpec` over one function body.

    ``project`` is the optional
    :class:`~tools.lint.summaries.ProjectSummaries`; without it, calls
    that take the token and cannot be classified locally drop it (the
    conservative per-function fallback the detection-power suite pins).
    """

    def __init__(self, spec: ProtocolSpec, project=None, relpath: str = ""):
        self.spec = spec
        self.project = project
        self.relpath = relpath

    # -- event extraction --------------------------------------------------

    def _creator_state(self, value: ast.expr) -> str | None:
        """Initial state when ``value`` matches a creator, else None."""
        if not isinstance(value, ast.Call):
            return None
        terminal = _call_terminal(value)
        for creator in self.spec.creators:
            if creator.kind == "method_result":
                if (
                    isinstance(value.func, ast.Attribute)
                    and value.func.attr in creator.names
                ):
                    return creator.state
            elif creator.kind == "ctor":
                if terminal in creator.names:
                    return creator.state
                # Class.attach(...)-style alternate constructors.
                if (
                    isinstance(value.func, ast.Attribute)
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id in creator.names
                ):
                    return creator.state
        return None

    def _call_events(self, call: ast.Call, tracked: set[str]) -> list[tuple[str, str]]:
        """(token, event) pairs this call triggers; tokens it *consumes*
        without a classifiable event are returned as ``(token, "!drop")``.
        """
        out: list[tuple[str, str]] = []
        recv = _receiver_name(call)
        terminal = _call_terminal(call)
        first_arg = (
            call.args[0].id
            if call.args and isinstance(call.args[0], ast.Name)
            else None
        )
        matched_method = False
        if recv in tracked:
            for ev in self.spec.events:
                if terminal in ev.methods:
                    out.append((recv, ev.event))
                    matched_method = True
            if not matched_method and recv is not None:
                for ev in self.spec.events:
                    if ev.any_method:
                        out.append((recv, ev.event))
                        matched_method = True
                        break
        arg_tokens = [
            a.id for a in call.args if isinstance(a, ast.Name) and a.id in tracked
        ]
        if not arg_tokens:
            return out
        # Terminal-name classification (the per-function vocabulary).
        terminal_events = [
            ev.event
            for ev in self.spec.events
            if terminal in ev.terminals and first_arg in tracked
        ]
        if terminal_events:
            out.extend((first_arg, event) for event in terminal_events)
            for token in arg_tokens:
                if token != first_arg:
                    pass  # non-first args of a known terminal are targets, kept
            return out
        # Interprocedural classification through effect summaries.
        summ = (
            self.project.summary_for_call(self.relpath, call)
            if self.project is not None
            else None
        )
        if summ is not None:
            offset = 0
            callee_key = self.project.callee_of(self.relpath, call)
            callee_fir = self.project.graph.functions.get(callee_key)
            if (
                callee_fir is not None
                and callee_fir.owner_class is not None
                and callee_fir.params
                and callee_fir.params[0] in ("self", "cls")
            ):
                offset = 1
            for pos, arg in enumerate(call.args):
                if not (isinstance(arg, ast.Name) and arg.id in tracked):
                    continue
                token = arg.id
                events = [
                    ev.event
                    for ev in self.spec.events
                    if ev.summary_attr is not None
                    and (pos + offset) in getattr(summ, ev.summary_attr)
                ]
                if events:
                    out.extend((token, event) for event in events)
                elif (pos + offset) in summ.store_params:
                    out.append((token, "!drop"))  # ownership moved into callee
            return out
        # Unknown callee consuming the token: conservatively stop tracking.
        for token in arg_tokens:
            out.append((token, "!drop"))
        return out

    # -- transfer ----------------------------------------------------------

    def _drop(self, state: _TokenState, token: str) -> _TokenState:
        return frozenset(e for e in state if e[0] != token)

    def _apply_event(
        self, state: _TokenState, token: str, event: str, node: ast.AST, report
    ) -> _TokenState:
        entries = [e for e in state if e[0] == token]
        if not entries:
            return state
        if event == "!drop":
            return self._drop(state, token)
        moved: list[tuple[str, int, str]] = []
        for _, line, st in entries:
            nxt = self.spec.transitions.get(st, {}).get(event)
            if nxt is not None:
                moved.append((token, line, nxt))
        if not moved:
            # Every possible state lacks the transition: a must-violation.
            if report is not None:
                states = "/".join(sorted({e[2] for e in entries}))
                template = self.spec.messages.get(
                    event, "{token}: event " + event + " not allowed in {state}"
                )
                report(node, template.format(token=token, state=states))
            return self._drop(state, token)
        return self._drop(state, token) | frozenset(moved)

    def _transfer(self, node, state: _TokenState, report=None) -> _TokenState:
        if node.kind == "loop_head" and isinstance(node.stmt, (ast.For, ast.AsyncFor)):
            # The loop target is rebound to a fresh object each iteration;
            # token state must not survive the back edge under that name.
            for name in {
                n.id for n in ast.walk(node.stmt.target) if isinstance(n, ast.Name)
            }:
                state = self._drop(state, name)
        tracked = {e[0] for e in state}
        for expr in _node_exprs(node):
            for sub in _shallow_walk(expr):
                if isinstance(sub, ast.Call):
                    for token, event in self._call_events(sub, tracked):
                        state = self._apply_event(state, token, event, sub, report)
                        tracked = {e[0] for e in state}
        stmt = node.stmt
        if node.kind != "stmt" or stmt is None:
            return state
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                created = self._creator_state(stmt.value)
                state = self._drop(state, target.id)
                if created is not None:
                    state = state | frozenset(
                        {(target.id, stmt.lineno, created)}
                    )
            elif isinstance(target, (ast.Attribute, ast.Subscript, ast.Tuple)):
                # Escape: the token became reachable beyond this function.
                for sub in _shallow_walk(stmt.value):
                    if isinstance(sub, ast.Name) and sub.id in tracked:
                        state = self._drop(state, sub.id)
        elif isinstance(stmt, (ast.Return, ast.Expr)) and isinstance(
            getattr(stmt, "value", None), ast.Name
        ):
            if isinstance(stmt, ast.Return) and stmt.value.id in tracked:
                state = self._drop(state, stmt.value.id)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state = self._drop(state, target.id)
        # Aliasing (`b = a`) drops both ends: one obligation, two names.
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Name)
            and stmt.value.id in tracked
        ):
            state = self._drop(state, stmt.value.id)
        return state

    # -- entry point -------------------------------------------------------

    def check(self, func: FuncDef) -> list[tuple[int, str]]:
        """(line, message) violations of this machine in one function."""
        cfg = build_cfg(func)
        init: _TokenState = frozenset()
        in_states = analyze_forward(
            cfg,
            init,
            transfer=lambda node, st: self._transfer(node, st),
            merge=lambda a, b: a | b,
        )
        findings: dict[tuple[int, str], None] = {}

        for node in cfg.nodes:
            state = in_states[node.index]
            if state is None:
                continue

            def report(anchor: ast.AST, message: str) -> None:
                findings.setdefault(
                    (getattr(anchor, "lineno", func.lineno), message), None
                )

            self._transfer(node, state, report=report)
        exit_state = in_states[cfg.exit]
        if exit_state:
            for token, line, st in sorted(exit_state):
                template = self.spec.exit_errors.get(st)
                if template is not None:
                    findings.setdefault(
                        (line, template.format(token=token, state=st)), None
                    )
        return sorted(findings)


# -- attribute-value machine engine --------------------------------------------


class AttrProtocolChecker:
    """Run one :class:`AttrProtocolSpec` over one function body."""

    def __init__(self, spec: AttrProtocolSpec):
        self.spec = spec

    def _assigned_member(self, stmt: ast.stmt) -> tuple[str, str] | None:
        """(object_var, enum_member) of ``var.attr = Enum.MEMBER``, or None."""
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            return None
        target = stmt.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and target.attr == self.spec.attr
            and isinstance(target.value, ast.Name)
        ):
            return None
        value = stmt.value
        if not (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == self.spec.enum
        ):
            return None
        return target.value.id, value.attr

    def _transfer(self, node, state: _TokenState, report=None) -> _TokenState:
        stmt = node.stmt
        if node.kind != "stmt" or stmt is None:
            if node.kind == "loop_head" and isinstance(stmt, (ast.For, ast.AsyncFor)):
                # The loop target is rebound to a *fresh* object on every
                # iteration; tracked state must not survive the back edge
                # (`for job in jobs: job.state = CANCELLED` is one move
                # per job, not a self-transition).
                rebound = {
                    n.id for n in ast.walk(stmt.target) if isinstance(n, ast.Name)
                }
                state = frozenset(e for e in state if e[0] not in rebound)
            # Expressions in branches/with headers may still consume the
            # object (pass it somewhere): stop tracking those names.
            for expr in _node_exprs(node):
                for sub in _shallow_walk(expr):
                    if isinstance(sub, ast.Call):
                        state = self._consume(sub, state)
            return state
        assigned = self._assigned_member(stmt)
        if assigned is not None:
            var, member = assigned
            return self._apply(state, var, member, stmt, report)
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            # Rebinding the name points it at a different object.
            state = frozenset(e for e in state if e[0] != stmt.targets[0].id)
        for sub in _shallow_walk(stmt):
            if isinstance(sub, ast.Call):
                recv = _receiver_name(sub)
                terminal = _call_terminal(sub)
                setter_member = (
                    self.spec.setters.get(terminal) if terminal is not None else None
                )
                if recv is not None and setter_member is not None:
                    state = self._apply(state, recv, setter_member, sub, report)
                else:
                    state = self._consume(sub, state)
        return state

    def _consume(self, call: ast.Call, state: _TokenState) -> _TokenState:
        """Drop any tracked object handed to a call (escape)."""
        consumed = {
            a.id for a in call.args if isinstance(a, ast.Name)
        }
        recv = _receiver_name(call)
        if recv is not None:
            consumed.add(recv)
        if not consumed:
            return state
        return frozenset(e for e in state if e[0] not in consumed)

    def _apply(
        self, state: _TokenState, var: str, member: str, anchor, report
    ) -> _TokenState:
        entries = [e for e in state if e[0] == var]
        rest = frozenset(e for e in state if e[0] != var)
        if entries:
            allowed = any(
                member in self.spec.transitions.get(st, ())
                for _, _, st in entries
            )
            if not allowed:
                if report is not None:
                    olds = "/".join(sorted({e[2] for e in entries}))
                    report(
                        anchor,
                        self.spec.message.format(
                            token=var, attr=self.spec.attr, old=olds, new=member
                        ),
                    )
        return rest | frozenset({(var, getattr(anchor, "lineno", 1), member)})

    def check(self, func: FuncDef) -> list[tuple[int, str]]:
        """(line, message) violations of this machine in one function."""
        cfg = build_cfg(func)
        in_states = analyze_forward(
            cfg,
            frozenset(),
            transfer=lambda node, st: self._transfer(node, st),
            merge=lambda a, b: a | b,
        )
        findings: dict[tuple[int, str], None] = {}
        for node in cfg.nodes:
            state = in_states[node.index]
            if state is None:
                continue

            def report(anchor: ast.AST, message: str) -> None:
                findings.setdefault(
                    (getattr(anchor, "lineno", func.lineno), message), None
                )

            self._transfer(node, state, report=report)
        return sorted(findings)
