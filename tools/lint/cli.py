"""``python -m tools.lint``: the repro-lint command line.

Examples
--------
Lint the default targets against the checked-in baseline::

    python -m tools.lint

Lint specific paths, machine-readable::

    python -m tools.lint src/repro tests --format json

Accept the current findings as known debt::

    python -m tools.lint --write-baseline

Developer help for one rule::

    python -m tools.lint --explain REP003

Exit codes: 0 clean (modulo baseline), 1 non-baselined findings,
2 usage / framework error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from tools.lint.baseline import DEFAULT_BASELINE, Baseline
from tools.lint.core import LintError, all_rules, iter_python_files, run_lint

#: Linted when no paths are given (matches tools/ci.sh).
DEFAULT_PATHS = ("src/repro", "tests")


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="repro-lint: AST-based determinism/clock/lock/docs/"
        "layering contracts for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="report format (default: text); sarif emits a SARIF 2.1.0 log "
        "for GitHub code scanning, github emits workflow-command "
        "annotations (::error file=...)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the per-file rule pass (the summary "
        "pass stays serial); default 1",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="enable the warm-run cache in DIR (IRs by content hash, "
        "findings by content hash + dependency signature)",
    )
    parser.add_argument(
        "--no-summaries",
        action="store_true",
        help="disable the interprocedural layer (call graph + effect "
        "summaries + cache); rules fall back to per-function analysis",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root for relative paths/baseline (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail (exit 1) on stale baseline entries, not just new findings "
        "-- keeps the baseline an honest debt ledger in CI",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files changed vs git HEAD (plus untracked files)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="REP001,REP002",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="REP00N",
        help="print the rationale and bad/good examples for one rule",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules"
    )
    return parser


def _git_changed_files(root: Path) -> set[Path]:
    """Files changed vs HEAD plus untracked files, as resolved paths.

    Raises :class:`LintError` when git is unavailable or the root is not
    a repository (tests monkeypatch this function instead of arranging
    a scratch repo).
    """
    changed: set[Path] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, cwd=root, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            raise LintError(f"--changed-only needs git at {root}: {exc}") from exc
        for line in proc.stdout.splitlines():
            if line.strip():
                changed.add((root / line.strip()).resolve())
    return changed


def _explain(rule_id: str) -> int:
    rules = all_rules()
    rule = rules.get(rule_id)
    if rule is None:
        print(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(rules))}",
            file=sys.stderr,
        )
        return 2
    print(f"{rule.id} ({rule.name})")
    print(f"  {rule.summary}\n")
    print(rule.explanation.rstrip())
    return 0


def _list_rules() -> int:
    for rule in all_rules().values():
        print(f"{rule.id}  {rule.name:20s} {rule.summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()

    root = (args.root or Path.cwd()).resolve()
    baseline_path = args.baseline if args.baseline is not None else root / DEFAULT_BASELINE
    select = args.select.split(",") if args.select else None

    try:
        paths: list = list(args.paths)
        if args.changed_only:
            changed = _git_changed_files(root)
            paths = [
                p for p in iter_python_files(paths, root)
                if p.resolve() in changed
            ]
        if args.jobs < 1:
            raise LintError(f"--jobs must be >= 1, got {args.jobs}")
        report = run_lint(
            paths,
            root=root,
            select=select,
            jobs=args.jobs,
            use_summaries=not args.no_summaries,
            cache_dir=args.cache_dir,
        )
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).write(baseline_path)
        print(
            f"repro-lint: baseline written to {baseline_path} "
            f"({len(report.findings)} finding(s) accepted)"
        )
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except LintError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
    split = baseline.apply(report.findings)

    if args.format == "sarif":
        from tools.lint.sarif import render_sarif

        print(json.dumps(render_sarif(split.new, all_rules()), indent=2))
    elif args.format == "github":
        from tools.lint.github import render_github

        for line in render_github(split.new, all_rules()):
            print(line)
    elif args.format == "json":
        print(
            json.dumps(
                {
                    "files": report.n_files,
                    "findings": [f.to_dict() for f in split.new],
                    "baselined": [f.to_dict() for f in split.known],
                    "stale_baseline": split.stale,
                    "suppressed": report.n_suppressed,
                },
                indent=2,
            )
        )
    else:
        for finding in split.new:
            print(finding.render())
        for fp in split.stale:
            print(f"repro-lint: stale baseline entry (fixed? prune it): {fp}")
        print(
            f"repro-lint: {len(split.new)} finding(s) in {report.n_files} "
            f"file(s) ({len(split.known)} baselined, "
            f"{report.n_suppressed} suppressed, {len(split.stale)} stale "
            "baseline entr(y/ies))"
        )
        if args.strict_baseline and split.stale:
            print(
                "repro-lint: --strict-baseline: prune the stale entr(y/ies) "
                "above from the baseline (the findings are fixed)"
            )
    if split.new:
        return 1
    if args.strict_baseline and split.stale:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
