"""repro-lint: AST-based static analysis enforcing the repo's contracts.

A self-contained, stdlib-only framework (see ``docs/STATIC_ANALYSIS.md``):

- **REP001** determinism -- no unseeded/global-state numpy randomness,
- **REP002** clock discipline -- "now" flows through ``telemetry.clock``,
- **REP003** lock discipline -- guarded state is mutated under its lock,
- **REP004** docstring coverage -- public library surface is documented,
- **REP005** import layering -- the package DAG is a checked contract.

Run it with ``python -m tools.lint`` (see ``tools.lint.cli``).
"""

from tools.lint.baseline import Baseline, BaselineResult
from tools.lint.core import (
    FileContext,
    Finding,
    LintError,
    LintReport,
    Rule,
    Suppressions,
    all_rules,
    register,
    run_lint,
)

__all__ = [
    "Baseline",
    "BaselineResult",
    "FileContext",
    "Finding",
    "LintError",
    "LintReport",
    "Rule",
    "Suppressions",
    "all_rules",
    "register",
    "run_lint",
]
