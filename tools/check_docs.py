#!/usr/bin/env python
"""Docs lint: every public class/function/method carries a docstring.

Standalone mirror of ``tests/test_docstrings.py`` so CI (and developers)
can run the lint without invoking pytest:

    PYTHONPATH=src python tools/check_docs.py [module ...]

With no arguments every ``repro.*`` module is checked; passing module
names (e.g. ``repro.workflow.faults``) restricts the scan.  Exits nonzero
listing each undocumented public item.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys


def iter_modules(selected: list[str]) -> list[str]:
    """The module names to lint (all of ``repro`` unless restricted)."""
    import repro

    names = [
        name
        for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    ]
    if not selected:
        return names
    missing = [s for s in selected if s not in names]
    if missing:
        raise SystemExit(f"unknown module(s): {', '.join(missing)}")
    return selected


def undocumented_items(module_name: str) -> list[str]:
    """Public items of one module lacking a docstring (empty = clean)."""
    module = importlib.import_module(module_name)
    problems: list[str] = []
    if not (module.__doc__ or "").strip():
        problems.append("<module docstring>")
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if not (inspect.getdoc(obj) or "").strip():
            problems.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not callable(meth) and not isinstance(meth, property):
                    continue
                bound = getattr(obj, meth_name, meth)
                doc = inspect.getdoc(
                    bound.fget if isinstance(bound, property) else bound
                )
                if not (doc or "").strip():
                    problems.append(f"{name}.{meth_name}")
    return problems


def main(argv: list[str]) -> int:
    """Lint the requested modules; returns a process exit code."""
    failures = 0
    for module_name in iter_modules(argv):
        problems = undocumented_items(module_name)
        for item in problems:
            print(f"{module_name}: undocumented public item: {item}")
        failures += len(problems)
    if failures:
        print(f"docs lint: {failures} undocumented public item(s)")
        return 1
    print("docs lint: all public items documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
