#!/usr/bin/env python
"""Docs lint: every public class/function/method carries a docstring.

Thin CLI over the repro-lint REP004 rule (see
:mod:`tools.lint.rules.docstrings`), kept because CI scripts and muscle
memory already invoke it:

    python tools/check_docs.py [module ...]

With no arguments every ``repro.*`` module is checked; passing module
names (e.g. ``repro.workflow.faults``) restricts the scan.  Exits nonzero
listing each undocumented public item.

Unlike the original runtime version this parses source files instead of
importing them, so it needs no ``PYTHONPATH=src`` and cannot be fooled by
docstrings inherited through the MRO.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT) not in sys.path:  # direct-script runs lack the repo root
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint.rules.docstrings import undocumented_in_tree  # noqa: E402


def module_files() -> dict[str, Path]:
    """Mapping of ``repro.*`` module name -> source file under src/."""
    src = REPO_ROOT / "src"
    mapping: dict[str, Path] = {}
    for path in sorted((src / "repro").rglob("*.py")):
        parts = list(path.relative_to(src).with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(parts)
        if name == "repro":
            # Match the runtime lint, which walked with prefix="repro."
            # and so never reported the top-level package itself.
            continue
        mapping[name] = path
    return mapping


def iter_modules(selected: list[str]) -> list[str]:
    """The module names to lint (all of ``repro`` unless restricted)."""
    names = list(module_files())
    if not selected:
        return names
    missing = [s for s in selected if s not in names]
    if missing:
        raise SystemExit(f"unknown module(s): {', '.join(missing)}")
    return selected


def undocumented_items(module_name: str) -> list[str]:
    """Public items of one module lacking a docstring (empty = clean)."""
    path = module_files()[module_name]
    tree = ast.parse(path.read_text(), filename=str(path))
    return [item for _, item in undocumented_in_tree(tree)]


def main(argv: list[str]) -> int:
    """Lint the requested modules; returns a process exit code."""
    failures = 0
    for module_name in iter_modules(argv):
        for item in undocumented_items(module_name):
            print(f"{module_name}: undocumented public item: {item}")
            failures += 1
    if failures:
        print(f"docs lint: {failures} undocumented public item(s)")
        return 1
    print("docs lint: all public items documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
