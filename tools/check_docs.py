#!/usr/bin/env python
"""Docs lint: every public class/function/method carries a docstring.

Thin CLI over the repro-lint REP004 rule (see
:mod:`tools.lint.rules.docstrings`), kept because CI scripts and muscle
memory already invoke it:

    python tools/check_docs.py [module ...]

With no arguments every ``repro.*`` module is checked; passing module
names (e.g. ``repro.workflow.faults``) restricts the scan.  Exits nonzero
listing each undocumented public item.

A second mode lints the ``docs/`` pages themselves:

    python tools/check_docs.py --pages

checks that every ``docs/*.md`` page is linked from ``README.md`` (no
orphaned architecture documents) and that every fenced ``python`` code
block in ``docs/`` actually compiles (doctest-style ``>>>`` blocks are
parsed as doctests first) -- documentation drift shows up as a lint
failure, not as a reader's surprise.

Unlike the original runtime version this parses source files instead of
importing them, so it needs no ``PYTHONPATH=src`` and cannot be fooled by
docstrings inherited through the MRO.
"""

from __future__ import annotations

import ast
import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT) not in sys.path:  # direct-script runs lack the repo root
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint.rules.docstrings import undocumented_in_tree  # noqa: E402


def module_files() -> dict[str, Path]:
    """Mapping of ``repro.*`` module name -> source file under src/."""
    src = REPO_ROOT / "src"
    mapping: dict[str, Path] = {}
    for path in sorted((src / "repro").rglob("*.py")):
        parts = list(path.relative_to(src).with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(parts)
        if name == "repro":
            # Match the runtime lint, which walked with prefix="repro."
            # and so never reported the top-level package itself.
            continue
        mapping[name] = path
    return mapping


def iter_modules(selected: list[str]) -> list[str]:
    """The module names to lint (all of ``repro`` unless restricted)."""
    names = list(module_files())
    if not selected:
        return names
    missing = [s for s in selected if s not in names]
    if missing:
        raise SystemExit(f"unknown module(s): {', '.join(missing)}")
    return selected


def undocumented_items(module_name: str) -> list[str]:
    """Public items of one module lacking a docstring (empty = clean)."""
    path = module_files()[module_name]
    tree = ast.parse(path.read_text(), filename=str(path))
    return [item for _, item in undocumented_in_tree(tree)]


def main(argv: list[str]) -> int:
    """Lint the requested modules; returns a process exit code."""
    if argv and argv[0] == "--pages":
        if len(argv) > 1:
            raise SystemExit("--pages takes no further arguments")
        return pages_main()
    failures = 0
    for module_name in iter_modules(argv):
        for item in undocumented_items(module_name):
            print(f"{module_name}: undocumented public item: {item}")
            failures += 1
    if failures:
        print(f"docs lint: {failures} undocumented public item(s)")
        return 1
    print("docs lint: all public items documented")
    return 0


# -- docs/ page lint (--pages) -------------------------------------------------

DOCS_DIR = REPO_ROOT / "docs"
README_PATH = REPO_ROOT / "README.md"

_FENCE_RE = re.compile(r"^```python[ \t]*\n(.*?)^```", re.DOTALL | re.MULTILINE)


def docs_pages() -> list[Path]:
    """All markdown pages under ``docs/``."""
    return sorted(DOCS_DIR.glob("*.md"))


def unlinked_pages(readme_text: str | None = None) -> list[str]:
    """``docs/`` pages that README.md never links (orphaned documents)."""
    text = (
        README_PATH.read_text() if readme_text is None else readme_text
    )
    return [
        f"docs/{page.name}"
        for page in docs_pages()
        if f"docs/{page.name}" not in text
    ]


def snippet_errors(page: Path) -> list[str]:
    """Compile failures in one page's fenced ``python`` blocks.

    Blocks carrying ``>>>`` prompts are parsed as doctests (each example
    compiled separately); plain blocks are compiled whole.  Only syntax
    is checked -- snippets are illustrations, not executable tests.
    """
    errors = []
    text = page.read_text()
    for match in _FENCE_RE.finditer(text):
        code = match.group(1)
        line = text[: match.start()].count("\n") + 2
        try:
            if ">>>" in code:
                for example in doctest.DocTestParser().get_examples(code):
                    compile(example.source, str(page), "exec")
            else:
                compile(code, str(page), "exec")
        except SyntaxError as exc:
            errors.append(
                f"docs/{page.name}:{line}: python snippet does not "
                f"compile: {exc.msg}"
            )
    return errors


def pages_main() -> int:
    """Lint the docs/ pages; returns a process exit code."""
    failures = 0
    for orphan in unlinked_pages():
        print(f"README.md: page never linked: {orphan}")
        failures += 1
    for page in docs_pages():
        for error in snippet_errors(page):
            print(error)
            failures += 1
    if failures:
        print(f"docs pages lint: {failures} problem(s)")
        return 1
    n = len(docs_pages())
    print(f"docs pages lint: {n} page(s) linked from README, snippets compile")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
