#!/bin/sh
# CI check: workflow test suite + docs lint.
#
# Run from the repository root:
#     sh tools/ci.sh          # workflow tests + docs lint
#     CI_FULL=1 sh tools/ci.sh  # the full tier-1 suite instead
#
# The docs lint enforces that every public class/function in the library
# (including the fault-injection subsystem, repro.workflow.faults and
# repro.workflow.policies) carries a docstring.

set -e

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

if [ -n "${CI_FULL:-}" ]; then
    python -m pytest -x -q
else
    python -m pytest tests/workflow -q
fi

python tools/check_docs.py
python tools/check_docs.py repro.workflow.faults repro.workflow.policies
