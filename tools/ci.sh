#!/bin/sh
# CI check: workflow + telemetry test suites, static analysis, trace smoke.
#
# Run from the repository root:
#     sh tools/ci.sh          # workflow/telemetry tests + lint + smoke
#     CI_FULL=1 sh tools/ci.sh  # the full tier-1 suite instead
#     sh tools/ci.sh --quick  # pre-commit: changed-only lint + tier-1 tests
#
# Static analysis is repro-lint (tools/lint): determinism, clock, lock,
# concurrency, docstring and import-layering contracts, checked against
# the committed baseline (see docs/STATIC_ANALYSIS.md).  The docs lint is
# the standalone entry point of the same REP004 rule.  The sanitized pass
# re-runs the threaded suites under the runtime concurrency sanitizer
# (docs/CONCURRENCY.md): lockset race detection plus lock-order
# witnessing, failing any test that produces a report.  The smoke test
# runs a tiny task pool with tracing enabled and verifies the exported
# Chrome trace parses and validates.

set -e

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

# Summary cache: warm runs replay unchanged files (plus their
# reverse-dependency frontier) instead of re-linting them.  The dir is
# gitignored; point LINT_CACHE_DIR elsewhere to relocate it.  --jobs
# fans the rule pass out over worker processes where cores exist.
LINT_CACHE_DIR="${LINT_CACHE_DIR:-.lint-cache}"
LINT_JOBS="${LINT_JOBS:-$(nproc 2>/dev/null || echo 1)}"
LINT_FLAGS="--jobs $LINT_JOBS --cache-dir $LINT_CACHE_DIR"

# --quick: the pre-commit loop.  Lint only what changed vs HEAD (strict
# about stale baseline entries so fixes prune their debt), then the
# tier-1 suite.  Full CI below always lints everything.
if [ "${1:-}" = "--quick" ]; then
    python -m tools.lint --changed-only --strict-baseline $LINT_FLAGS
    echo "repro-lint (changed files): clean"
    python -m pytest -x -q
    echo "quick check: ok"
    exit 0
fi

if [ -n "${CI_FULL:-}" ]; then
    python -m pytest -x -q
else
    python -m pytest tests/workflow tests/telemetry tests/lint tests/products \
        tests/core/test_localization.py tests/core/test_tiling.py \
        tests/core/test_tiled_analysis.py tests/core/test_assimilation.py -q
fi

# Sanitized pass: the threaded suites again, with the lockset race
# detector and lock-order witness live on every lock in the system.
REPRO_SANITIZE=1 python -m pytest tests/workflow tests/telemetry tests/products -q
echo "sanitizer: clean"

python -m tools.lint src/repro tests benchmarks tools --strict-baseline \
    $LINT_FLAGS --format json > /dev/null
echo "repro-lint: clean"

# SARIF smoke: the same run rendered as SARIF 2.1.0 must pass the
# structural validator (a renderer regression fails here, not at the
# code-scanning upload).
lint_sarif="$(mktemp)"
python -m tools.lint src/repro tests benchmarks tools --strict-baseline \
    $LINT_FLAGS --format sarif > "$lint_sarif"
python - "$lint_sarif" <<'EOF'
import json, sys
from tools.lint.sarif import validate_sarif
problems = validate_sarif(json.load(open(sys.argv[1])))
if problems:
    raise SystemExit("SARIF validation failed:\n  " + "\n  ".join(problems))
print("repro-lint SARIF: valid")
EOF
rm -f "$lint_sarif"

python tools/check_docs.py
python tools/check_docs.py --pages
python tools/check_docs.py repro.workflow.faults repro.workflow.policies
python tools/check_docs.py \
    repro.telemetry.clock repro.telemetry.spans repro.telemetry.metrics \
    repro.telemetry.events repro.telemetry.export
python tools/check_docs.py repro.util.sanitizer repro.core.taskmodel
python tools/check_docs.py \
    repro.core.localization repro.core.tiling repro.workflow.tilepool
python tools/check_docs.py \
    repro.products.store repro.products.tiles repro.products.cache \
    repro.products.service repro.products.server

# Smoke: the differ->SVD hot-path bench at CI scale (BENCH_SMOKE shrinks
# the matrices; the committed full-size numbers live in
# benchmarks/results/BENCH_covfile_pipeline.json).  BENCH_OUTPUT_DIR
# keeps the smoke run from overwriting them.
covfile_tmp="$(mktemp -d)"
BENCH_SMOKE=1 BENCH_OUTPUT_DIR="$covfile_tmp" \
    python -m pytest benchmarks/bench_covfile_pipeline.py -q \
    --rootdir=benchmarks -p no:cacheprovider
rm -rf "$covfile_tmp"
echo "covfile pipeline smoke: ok"

# Smoke: the product-service load bench at CI scale (tiny fleet; the
# committed full-size numbers live in
# benchmarks/results/BENCH_product_service.json).
products_tmp="$(mktemp -d)"
BENCH_SMOKE=1 BENCH_OUTPUT_DIR="$products_tmp" \
    python -m pytest benchmarks/bench_product_service.py -q \
    --rootdir=benchmarks -p no:cacheprovider
rm -rf "$products_tmp"
echo "product service smoke: ok"

# Smoke: the global-vs-tiled analysis bench at CI scale (the committed
# full-size numbers live in benchmarks/results/BENCH_localized_update.json).
localized_tmp="$(mktemp -d)"
BENCH_SMOKE=1 BENCH_OUTPUT_DIR="$localized_tmp" \
    python -m pytest benchmarks/bench_localized_update.py -q \
    --rootdir=benchmarks -p no:cacheprovider
rm -rf "$localized_tmp"
echo "localized update smoke: ok"

# Smoke: the lint-engine bench at CI scale (lints tools/lint only; the
# committed full-repo numbers live in benchmarks/results/BENCH_lint.json).
lint_tmp="$(mktemp -d)"
BENCH_SMOKE=1 BENCH_OUTPUT_DIR="$lint_tmp" \
    python -m pytest benchmarks/bench_lint.py -q \
    --rootdir=benchmarks -p no:cacheprovider
rm -rf "$lint_tmp"
echo "lint bench smoke: ok"

# Smoke: a tiny traced task-pool run must export a valid Chrome trace.
python - <<'EOF'
import json
import tempfile
from pathlib import Path

from repro.core import ESSEConfig, PerturbationGenerator, synthetic_initial_subspace
from repro.core.ensemble import EnsembleRunner
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.telemetry import TraceRecorder, validate_chrome_trace, write_chrome_trace
from repro.workflow import ParallelESSEWorkflow

grid = monterey_grid(nx=12, ny=10, nz=3)
model = PEModel(grid=grid)
background = model.run(model.rest_state(), 6 * model.config.dt)
subspace = synthetic_initial_subspace(
    model.layout, grid.shape2d, grid.nz, rank=4, seed=0
)
runner = EnsembleRunner(
    model,
    PerturbationGenerator(model.layout, subspace, root_seed=3),
    duration=2 * model.config.dt,
    root_seed=3,
)
recorder = TraceRecorder()
with tempfile.TemporaryDirectory() as tmp:
    workflow = ParallelESSEWorkflow(
        runner,
        ESSEConfig(initial_ensemble_size=3, max_ensemble_size=4,
                   convergence_tolerance=1.0, max_subspace_rank=4),
        Path(tmp) / "wf",
        n_workers=2,
        telemetry=recorder,
    )
    workflow.run(background)
    trace_path = write_chrome_trace(Path(tmp) / "trace.json",
                                    spans=recorder.spans(),
                                    events=recorder.events())
    obj = json.loads(trace_path.read_text())
problems = validate_chrome_trace(obj)
if problems:
    raise SystemExit("trace smoke test failed: " + "; ".join(problems))
names = {e["name"] for e in obj["traceEvents"]}
for required in ("workflow.run", "pemodel"):
    if required not in names:
        raise SystemExit(f"trace smoke test: missing {required!r} span")
print(f"trace smoke test: valid Chrome trace "
      f"({len(obj['traceEvents'])} events)")
EOF
