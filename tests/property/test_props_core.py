"""Property-based tests of the ESSE core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.assimilation import ESSEAnalysis
from repro.core.convergence import similarity_coefficient
from repro.core.state import FieldLayout, FieldSpec
from repro.core.subspace import ErrorSubspace
from repro.obs.operators import Observation, ObservationOperator
from repro.util.linalg import orthonormal_columns


# -- strategies ---------------------------------------------------------------

field_shapes = st.one_of(
    st.tuples(st.integers(1, 6)),
    st.tuples(st.integers(1, 5), st.integers(1, 5)),
    st.tuples(st.integers(1, 3), st.integers(1, 4), st.integers(1, 4)),
)


@st.composite
def layouts(draw):
    n_fields = draw(st.integers(1, 4))
    specs = []
    for k in range(n_fields):
        shape = draw(field_shapes)
        scale = draw(st.floats(0.01, 100.0))
        specs.append(FieldSpec(f"f{k}", shape, scale=scale))
    return FieldLayout(specs)


@st.composite
def subspaces(draw, n_min=4, n_max=24, p_max=5):
    n = draw(st.integers(n_min, n_max))
    p = draw(st.integers(1, min(p_max, n)))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, p)))
    sigmas = np.sort(rng.uniform(0.1, 5.0, p))[::-1]
    return ErrorSubspace(modes=q, sigmas=sigmas, n_samples=2 * p)


# -- FieldLayout --------------------------------------------------------------


class TestLayoutProperties:
    @given(layouts(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_round_trip(self, layout, seed):
        rng = np.random.default_rng(seed)
        fields = {s.name: rng.standard_normal(s.shape) for s in layout.specs}
        back = layout.unpack(layout.pack(fields))
        for name, arr in fields.items():
            assert np.allclose(back[name], arr)

    @given(layouts(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_normalize_denormalize_inverse(self, layout, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(layout.size)
        assert np.allclose(layout.denormalize(layout.normalize(x)), x, atol=1e-9)

    @given(layouts())
    @settings(max_examples=50, deadline=None)
    def test_field_slices_partition_the_vector(self, layout):
        covered = np.zeros(layout.size, dtype=int)
        for spec in layout.specs:
            sl = layout.slice_of(spec.name)
            covered[sl] += 1
        assert np.all(covered == 1)


# -- ErrorSubspace ------------------------------------------------------------


class TestSubspaceProperties:
    @given(subspaces())
    @settings(max_examples=50, deadline=None)
    def test_variance_field_matches_dense_diagonal(self, sub):
        dense = sub.modes @ np.diag(sub.variances) @ sub.modes.T
        assert np.allclose(sub.variance_field(), np.diag(dense), atol=1e-10)
        assert np.all(sub.variance_field() >= -1e-12)

    @given(subspaces(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_covariance_action_is_psd(self, sub, seed):
        rng = np.random.default_rng(seed)
        v = rng.standard_normal(sub.state_dim)
        assert v @ sub.covariance_action(v) >= -1e-10

    @given(subspaces(), st.floats(0.2, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_truncation_keeps_leading_energy(self, sub, energy):
        t = sub.truncate(energy=energy)
        assert 1 <= t.rank <= sub.rank
        assert t.total_variance >= energy * sub.total_variance - 1e-9 or (
            t.rank == sub.rank
        )
        assert orthonormal_columns(t.modes)

    @given(st.integers(4, 20), st.integers(3, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_from_anomalies_never_exceeds_data_rank(self, n, m, seed):
        rng = np.random.default_rng(seed)
        anomalies = rng.standard_normal((n, m))
        sub = ErrorSubspace.from_anomalies(anomalies)
        assert sub.rank <= min(n, m)
        assert orthonormal_columns(sub.modes)


# -- similarity ----------------------------------------------------------------


class TestSimilarityProperties:
    @given(subspaces(n_min=10, n_max=10), subspaces(n_min=10, n_max=10))
    @settings(max_examples=60, deadline=None)
    def test_bounded_and_symmetric(self, a, b):
        rho_ab = similarity_coefficient(a, b)
        rho_ba = similarity_coefficient(b, a)
        assert 0.0 <= rho_ab <= 1.0
        assert rho_ab == pytest.approx(rho_ba, abs=1e-9)

    @given(subspaces())
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_one(self, sub):
        assert similarity_coefficient(sub, sub) == pytest.approx(1.0, abs=1e-9)


# -- assimilation -------------------------------------------------------------


@st.composite
def analysis_problems(draw):
    n = draw(st.integers(6, 20))
    p = draw(st.integers(1, 4))
    m = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    layout = FieldLayout([FieldSpec("a", (n,), scale=draw(st.floats(0.1, 10.0)))])
    q, _ = np.linalg.qr(rng.standard_normal((n, p)))
    sigmas = np.sort(rng.uniform(0.1, 3.0, p))[::-1]
    sub = ErrorSubspace(modes=q, sigmas=sigmas)
    obs = [
        Observation(
            field="a",
            level=0,
            j=0,
            i=int(rng.integers(0, n)),
            value=float(rng.normal()),
            noise_std=float(rng.uniform(0.05, 1.0)),
        )
        for _ in range(m)
    ]
    # indices may repeat: the operator allows repeated measurements
    op = ObservationOperator(layout, obs)
    x = rng.standard_normal(n)
    return layout, sub, op, x


class TestAssimilationProperties:
    @given(analysis_problems())
    @settings(max_examples=40, deadline=None)
    def test_posterior_variance_never_exceeds_prior(self, problem):
        layout, sub, op, x = problem
        result = ESSEAnalysis(layout).update(x, sub, op)
        assert (
            result.subspace.total_variance <= sub.total_variance + 1e-9
        )
        # and in every individual direction
        for k in range(result.subspace.rank):
            direction = result.subspace.modes[:, k]
            prior = direction @ sub.covariance_action(direction)
            post = direction @ result.subspace.covariance_action(direction)
            assert post <= prior + 1e-9

    @given(analysis_problems())
    @settings(max_examples=40, deadline=None)
    def test_weighted_observation_fit_never_degrades(self, problem):
        """The R^-1-weighted residual norm is non-increasing.

        (The *unweighted* RMS can grow when observation noise levels are
        heterogeneous -- hypothesis found such a case -- but the Kalman
        update guarantees d_a^T R^-1 d_a <= d_f^T R^-1 d_f because the
        analysis residual is R S^-1 d with S >= R.)
        """
        layout, sub, op, x = problem
        result = ESSEAnalysis(layout).update(x, sub, op)
        w = 1.0 / op.noise_var
        before = float(np.sum(w * result.innovation**2))
        after = float(np.sum(w * result.analysis_residual**2))
        assert after <= before + 1e-9

    @given(analysis_problems())
    @settings(max_examples=40, deadline=None)
    def test_posterior_modes_orthonormal(self, problem):
        layout, sub, op, x = problem
        result = ESSEAnalysis(layout).update(x, sub, op)
        assert orthonormal_columns(result.subspace.modes, atol=1e-7)
