"""Property-based tests: transfer conservation and config round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ConfigError, ExperimentConfig
from repro.sched.transfer import OutputReturnPlan, simulate_output_return


class TestTransferConservation:
    @given(
        st.lists(st.floats(0.0, 5000.0), min_size=1, max_size=40),
        st.sampled_from(list(OutputReturnPlan)),
        st.floats(1.0, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_file_arrives_exactly_once(self, times, plan, file_mb):
        report = simulate_output_return(times, file_mb, plan)
        # arrival accounting is exact: delays positive, drain after last file
        assert report.transfers_started >= 1
        assert report.mean_file_delay > 0
        assert report.all_home_time >= max(times)

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=2, max_size=30),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_pull_concurrency_always_respected(self, times, concurrency):
        report = simulate_output_return(
            times, 11.0, OutputReturnPlan.PULL, pull_concurrency=concurrency
        )
        assert report.peak_concurrent_streams <= concurrency


@st.composite
def config_documents(draw):
    doc = {}
    if draw(st.booleans()):
        doc["domain"] = {
            "nx": draw(st.integers(4, 60)),
            "ny": draw(st.integers(4, 60)),
            "nz": draw(st.integers(1, 12)),
        }
    if draw(st.booleans()):
        initial = draw(st.integers(2, 32))
        doc["esse"] = {
            "initial_ensemble_size": initial,
            "max_ensemble_size": draw(st.integers(initial, 256)),
            "root_seed": draw(st.integers(0, 2**31 - 1)),
        }
    if draw(st.booleans()):
        doc["timeline"] = {
            "period_hours": draw(st.floats(1.0, 96.0)),
            "n_periods": draw(st.integers(1, 10)),
        }
    return doc


class TestConfigProperties:
    @given(config_documents())
    @settings(max_examples=60, deadline=None)
    def test_valid_documents_round_trip(self, doc):
        cfg = ExperimentConfig.from_dict(doc)
        again = ExperimentConfig.from_dict(cfg.to_dict())
        assert again == cfg

    @given(config_documents(), st.text(min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_unknown_sections_always_rejected(self, doc, junk_name):
        if junk_name in ("domain", "model", "esse", "observations", "timeline"):
            return
        doc = dict(doc)
        doc[junk_name] = {}
        with pytest.raises(ConfigError):
            ExperimentConfig.from_dict(doc)
