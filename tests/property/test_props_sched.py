"""Property-based tests of the infrastructure simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sched import (
    ClusterModel,
    ClusterScheduler,
    EC2CostModel,
    EC2_INSTANCE_TYPES,
    JobSpec,
    JobState,
    Node,
    NodeSpec,
    SGEPolicy,
    Simulator,
)
from repro.sched.iomodel import IOConfiguration, SharedBandwidth


class TestSimulatorProperties:
    @given(st.lists(st.floats(0.0, 1e5), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=2, max_size=20),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_cancelled_events_never_fire(self, delays, data):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(d, lambda k=k: fired.append(k))
            for k, d in enumerate(delays)
        ]
        to_cancel = data.draw(
            st.sets(st.integers(0, len(delays) - 1), max_size=len(delays))
        )
        for k in to_cancel:
            sim.cancel(handles[k])
        sim.run()
        assert set(fired) == set(range(len(delays))) - to_cancel


class TestBandwidthProperties:
    @given(
        st.lists(st.floats(1.0, 500.0), min_size=1, max_size=15),
        st.floats(5.0, 200.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_saturated_makespan_equals_volume_over_capacity(
        self, sizes, capacity
    ):
        """All transfers started at t=0: last finishes at sum/capacity."""
        sim = Simulator()
        bw = SharedBandwidth(sim, capacity)
        finish = []
        for size in sizes:
            bw.transfer(size, lambda: finish.append(sim.now))
        sim.run()
        assert max(finish) == pytest.approx(sum(sizes) / capacity, rel=1e-6)
        assert len(finish) == len(sizes)

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 50.0), st.floats(1.0, 100.0)),
            min_size=1,
            max_size=12,
        ),
        st.floats(5.0, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_transfer_completes_no_earlier_than_unshared(
        self, starts_sizes, capacity
    ):
        """Sharing can only slow a transfer down, never speed it up."""
        sim = Simulator()
        bw = SharedBandwidth(sim, capacity)
        done = {}
        for k, (start, size) in enumerate(starts_sizes):
            def launch(k=k, start=start, size=size):
                bw.transfer(size, lambda: done.__setitem__(k, sim.now))

            sim.schedule(start, launch)
        sim.run()
        for k, (start, size) in enumerate(starts_sizes):
            assert done[k] >= start + size / capacity - 1e-9


class TestSchedulerProperties:
    @given(
        st.integers(1, 12),  # jobs
        st.integers(1, 6),  # cores
        st.floats(1.0, 500.0),  # cpu seconds
    )
    @settings(max_examples=30, deadline=None)
    def test_makespan_at_least_ideal(self, n_jobs, cores, cpu):
        sim = Simulator()
        cluster = ClusterModel(
            nodes=[Node(NodeSpec(name="n", cores=cores, local_disk_mbps=250.0))]
        )
        io = IOConfiguration(
            pert_input_mb=0.0, pemodel_input_mb=0.0, output_mb=0.0,
            prestage_cost_s=0.0,
        )
        sched = ClusterScheduler(sim, cluster, SGEPolicy(), io)
        jobs = sched.submit(
            [JobSpec(kind="pemodel", index=i, cpu_seconds=cpu) for i in range(n_jobs)]
        )
        sim.run()
        assert all(j.state is JobState.DONE for j in jobs)
        ideal = math.ceil(n_jobs / cores) * cpu
        makespan = max(j.end_time for j in jobs)
        assert makespan >= ideal - 1e-6
        # and overhead is bounded by dispatch latencies
        assert makespan <= ideal + n_jobs * 2.0 + 10.0

    @given(st.integers(1, 10), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_no_node_ever_oversubscribed(self, n_jobs, cores):
        """Instrumented invariant: busy cores never exceed capacity."""
        sim = Simulator()
        node = Node(NodeSpec(name="n", cores=cores, local_disk_mbps=250.0))
        cluster = ClusterModel(nodes=[node])
        io = IOConfiguration(
            pert_input_mb=0.0, pemodel_input_mb=0.0, output_mb=0.0,
            prestage_cost_s=0.0,
        )
        sched = ClusterScheduler(sim, cluster, SGEPolicy(), io)
        sched.submit(
            [JobSpec(kind="pert", index=i, cpu_seconds=5.0) for i in range(n_jobs)]
        )
        violations = []

        def watch():
            if node.busy_cores > node.spec.cores or node.busy_cores < 0:
                violations.append(sim.now)
            if sim.pending:
                sim.schedule(0.5, watch)

        sim.schedule(0.0, watch)
        sim.run()
        assert violations == []


class TestBillingProperties:
    @given(
        st.sampled_from(sorted(EC2_INSTANCE_TYPES)),
        st.integers(1, 50),
        st.floats(0.01, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_cost_monotone_in_instances_and_hours(self, name, n, hours):
        model = EC2CostModel()
        itype = EC2_INSTANCE_TYPES[name]
        base = model.compute_cost(itype, n, hours)
        assert model.compute_cost(itype, n + 1, hours) > base
        assert model.compute_cost(itype, n, hours + 1.0) > base
        # reserved never costs more
        assert model.compute_cost(itype, n, hours, reserved=True) <= base

    @given(st.floats(0.01, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_billed_hours_are_ceiling(self, hours):
        model = EC2CostModel()
        itype = EC2_INSTANCE_TYPES["m1.small"]
        cost = model.compute_cost(itype, 1, hours)
        assert cost == pytest.approx(
            math.ceil(hours - 1e-12) * itype.hourly_usd
        )
