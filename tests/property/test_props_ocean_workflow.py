"""Property-based tests: ocean operators, accumulator, status files."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.covariance import AnomalyAccumulator
from repro.core.state import FieldLayout, FieldSpec
from repro.ocean.masking import LandFiller
from repro.util.randomfields import GaussianRandomField2D
from repro.workflow.statefiles import StatusDirectory, TaskStatus


@st.composite
def masks(draw):
    ny = draw(st.integers(4, 10))
    nx = draw(st.integers(4, 10))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    mask = rng.random((ny, nx)) > 0.3
    return mask


class TestLandFillerProperties:
    @given(masks(), st.floats(-100.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_constant_field_is_fixed_point(self, mask, value):
        filler = LandFiller(mask)
        fld = np.full(mask.shape, value)
        out = filler(fld)
        # every filled cell equals the constant; wet cells untouched
        assert np.allclose(out[mask], value)
        count = filler._count
        fillable = (~mask) & (count > 0)
        assert np.allclose(out[fillable], value)

    @given(masks(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_fill_bounded_by_neighbour_range(self, mask, seed):
        """Filled values interpolate: they never exceed the wet range."""
        rng = np.random.default_rng(seed)
        fld = rng.standard_normal(mask.shape)
        out = LandFiller(mask)(fld)
        if mask.any():
            lo, hi = fld[mask].min(), fld[mask].max()
            filled = (~mask) & (LandFiller(mask)._count > 0)
            if filled.any():
                assert out[filled].min() >= lo - 1e-12
                assert out[filled].max() <= hi + 1e-12

    @given(masks(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_wet_cells_never_modified(self, mask, seed):
        rng = np.random.default_rng(seed)
        fld = rng.standard_normal(mask.shape)
        out = LandFiller(mask)(fld)
        assert np.array_equal(out[mask], fld[mask])


class TestAccumulatorProperties:
    @given(
        st.integers(2, 20),  # members
        st.integers(2, 10),  # state dim
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_covariance_invariant_under_arrival_order(self, n, dim, seed):
        rng = np.random.default_rng(seed)
        layout = FieldLayout([FieldSpec("a", (dim,), scale=1.7)])
        members = {k: rng.standard_normal(dim) for k in range(n)}
        order = rng.permutation(n)

        acc1 = AnomalyAccumulator(layout, np.zeros(dim))
        for k in range(n):
            acc1.add_member(k, members[k])
        acc2 = AnomalyAccumulator(layout, np.zeros(dim))
        for k in order:
            acc2.add_member(int(k), members[int(k)])

        m1, m2 = acc1.matrix(), acc2.matrix()
        assert np.allclose(m1 @ m1.T, m2 @ m2.T, atol=1e-10)

    @given(st.integers(2, 15), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_sample_variance_nonnegative(self, n, seed):
        rng = np.random.default_rng(seed)
        layout = FieldLayout([FieldSpec("a", (5,), scale=0.5)])
        acc = AnomalyAccumulator(layout, rng.standard_normal(5))
        for k in range(n):
            acc.add_member(k, rng.standard_normal(5))
        assert np.all(acc.sample_variance_field() >= 0.0)


class TestStatusDirectoryProperties:
    @given(
        st.dictionaries(
            st.integers(0, 200),
            st.sampled_from(list(TaskStatus)),
            min_size=0,
            max_size=30,
        ),
        st.integers(1, 250),
    )
    @settings(max_examples=30, deadline=None)
    def test_pending_and_completed_partition_universe(
        self, reports, universe_size
    ):
        import tempfile

        # hypothesis replays examples within one test call, so a per-example
        # fresh directory (not a pytest fixture) is required
        with tempfile.TemporaryDirectory() as tmp:
            self._check(tmp, reports, universe_size)

    @staticmethod
    def _check(tmp, reports, universe_size):
        status = StatusDirectory(tmp)
        for index, code in reports.items():
            status.write("pemodel", index, code)
        universe = range(universe_size)
        done = set(status.completed_indices("pemodel")) & set(universe)
        pending = set(status.pending_indices("pemodel", universe))
        assert done | pending == set(universe)
        assert done & pending == set()


class TestRandomFieldProperties:
    @given(
        st.integers(8, 24),
        st.integers(8, 24),
        st.floats(0.0, 6.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_fields_finite_and_zero_mean_ish(self, ny, nx, ls, seed):
        grf = GaussianRandomField2D((ny, nx), ls, seed=seed)
        fields = grf.sample_many(50)
        assert np.all(np.isfinite(fields))
        assert abs(fields.mean()) < 0.5
