"""Property-based tests for the acoustics chain."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.acoustics.modes import solve_modes
from repro.acoustics.soundspeed import mackenzie_sound_speed


class TestSoundSpeedProperties:
    @given(
        st.floats(-2.0, 30.0),
        st.floats(25.0, 40.0),
        st.floats(0.0, 4000.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_within_oceanic_range(self, t, s, d):
        c = float(mackenzie_sound_speed(t, s, d))
        assert 1380.0 < c < 1650.0

    @given(
        st.floats(-2.0, 28.0),
        st.floats(25.0, 40.0),
        st.floats(0.0, 3000.0),
        st.floats(0.1, 2.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_temperature(self, t, s, d, dt):
        assert mackenzie_sound_speed(t + dt, s, d) > mackenzie_sound_speed(t, s, d)

    @given(
        st.floats(-2.0, 30.0),
        st.floats(25.0, 40.0),
        st.floats(0.0, 3000.0),
        st.floats(10.0, 500.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_depth(self, t, s, d, dd):
        assert mackenzie_sound_speed(t, s, d + dd) > mackenzie_sound_speed(t, s, d)


@st.composite
def waveguides(draw):
    depth = draw(st.floats(60.0, 400.0))
    dz = draw(st.sampled_from([2.0, 4.0]))
    z = np.arange(0.0, depth + dz / 2, dz)
    c0 = draw(st.floats(1460.0, 1540.0))
    gradient = draw(st.floats(-0.08, 0.08))
    c = c0 + gradient * z
    freq = draw(st.floats(40.0, 250.0))
    return z, np.clip(c, 1400.0, 1600.0), freq


class TestModeProperties:
    @given(waveguides())
    @settings(max_examples=40, deadline=None)
    def test_spectral_bounds(self, wg):
        """kr lies between omega/c_max (cutoff) and omega/c_min."""
        z, c, freq = wg
        ms = solve_modes(c, z, freq)
        if ms.n_modes == 0:
            return
        omega = 2 * np.pi * freq
        assert np.all(ms.kr <= omega / c.min() + 1e-9)
        assert np.all(ms.kr > 0)

    @given(waveguides())
    @settings(max_examples=40, deadline=None)
    def test_surface_zero_and_normalization(self, wg):
        z, c, freq = wg
        ms = solve_modes(c, z, freq)
        if ms.n_modes == 0:
            return
        assert np.allclose(ms.psi[0, :], 0.0)
        dz = z[1] - z[0]
        norms = np.trapezoid(ms.psi**2, dx=dz, axis=0)
        assert np.allclose(norms, 1.0, atol=0.05)

    @given(waveguides(), st.floats(1.2, 2.5))
    @settings(max_examples=30, deadline=None)
    def test_mode_count_nondecreasing_in_frequency(self, wg, factor):
        z, c, freq = wg
        n_low = solve_modes(c, z, freq).n_modes
        n_high = solve_modes(c, z, freq * factor).n_modes
        assert n_high >= n_low
