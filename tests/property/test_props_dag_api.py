"""Properties of the workflow DAG analysis + public-API surface checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workflow.dag import (
    analyse,
    build_parallel_esse_dag,
    build_serial_esse_dag,
)


durations_strategy = st.fixed_dictionaries(
    {
        "pert": st.floats(0.1, 100.0),
        "pemodel": st.floats(1.0, 5000.0),
        "diff": st.floats(0.1, 50.0),
        "svd": st.floats(0.1, 500.0),
        "conv": st.floats(0.1, 10.0),
    }
)


class TestDagProperties:
    @given(st.integers(1, 40), durations_strategy)
    @settings(max_examples=40, deadline=None)
    def test_span_never_exceeds_work(self, n, durations):
        for builder in (build_serial_esse_dag, build_parallel_esse_dag):
            a = analyse(builder(n), durations)
            assert a.critical_path <= a.total_work + 1e-9
            assert a.average_parallelism >= 1.0 - 1e-12

    @given(st.integers(2, 40), durations_strategy)
    @settings(max_examples=40, deadline=None)
    def test_decoupling_never_lengthens_the_span(self, n, durations):
        """Fig 4's graph is a subset of Fig 3's constraints: its span can
        only be shorter or equal."""
        serial = analyse(build_serial_esse_dag(n), durations)
        parallel = analyse(build_parallel_esse_dag(n), durations)
        assert parallel.critical_path <= serial.critical_path + 1e-9
        assert parallel.total_work == pytest.approx(serial.total_work)

    @given(st.integers(1, 30), durations_strategy, st.integers(1, 500))
    @settings(max_examples=40, deadline=None)
    def test_brents_bound_consistent(self, n, durations, workers):
        a = analyse(build_parallel_esse_dag(n), durations)
        bound = a.makespan_lower_bound(workers)
        assert bound >= a.critical_path - 1e-9
        assert bound >= a.total_work / workers - 1e-9


class TestPublicAPISurface:
    """The names the README and examples rely on must stay exported."""

    def test_core_surface(self):
        import repro.core as core

        for name in (
            "ESSEConfig", "ESSEDriver", "ErrorSubspace", "ESSEAnalysis",
            "PerturbationGenerator", "synthetic_initial_subspace",
            "similarity_coefficient", "ESSESmoother", "crps",
            "verify_ensemble",
        ):
            assert name in core.__all__, name
            assert hasattr(core, name), name

    def test_sched_surface(self):
        import repro.sched as sched

        for name in (
            "Simulator", "EnsembleCampaign", "mseas_cluster",
            "TERAGRID_SITES", "EC2_INSTANCE_TYPES", "EC2CostModel",
            "federate", "ElasticEC2Pool", "simulate_output_return",
        ):
            assert name in sched.__all__, name
            assert hasattr(sched, name), name

    def test_workflow_surface(self):
        import repro.workflow as workflow

        for name in (
            "SerialESSEWorkflow", "ParallelESSEWorkflow", "StatusDirectory",
            "CovarianceFileSet", "CancellationPolicy", "ProgressMonitor",
        ):
            assert name in workflow.__all__, name

    def test_other_surfaces(self):
        import repro.acoustics as ac
        import repro.obs as obs
        import repro.realtime as rt
        from repro.config import ExperimentConfig  # noqa: F401

        assert "transmission_loss" in ac.__all__
        assert "coupled_uncertainty_modes" in ac.__all__
        assert "aosn2_network" in obs.__all__
        assert "suggest_sampling_locations" in obs.__all__
        assert "ExperimentTimeline" in rt.__all__
        assert "generate_product" in rt.__all__
