"""Typestate machines (tools/lint/typestate.py) and REP013 integration.

Checker-level tests drive :class:`ProtocolChecker` /
:class:`AttrProtocolChecker` straight over parsed functions; the
integration tests go through ``run_lint`` with ``REP013`` selected,
including the helper-mediated events that only effect summaries see.
"""

import ast
import textwrap

from tools.lint.typestate import (
    JOB_LIFECYCLE,
    SHM_BUFFER,
    STAGED_PUBLISH,
    AttrProtocolChecker,
    ProtocolChecker,
)

from tests.lint.test_rules import lint, lint_files


def check(spec, source, attr=False):
    """Run one machine over the first def in ``source``."""
    func = ast.parse(textwrap.dedent(source)).body[0]
    checker = AttrProtocolChecker(spec) if attr else ProtocolChecker(spec)
    return checker.check(func)


class TestStagedPublish:
    def test_leaked_temp_file_reported_at_exit(self):
        findings = check(
            STAGED_PUBLISH,
            """\
            def write_only(target, payload):
                tmp = target.with_suffix(".tmp")
                tmp.write_text(payload)
            """,
        )
        assert len(findings) == 1
        assert "never published" in findings[0][1]

    def test_double_publish_reported(self):
        findings = check(
            STAGED_PUBLISH,
            """\
            def publish_twice(target, payload):
                tmp = target.with_suffix(".tmp")
                tmp.write_text(payload)
                tmp.replace(target)
                tmp.replace(target)
            """,
        )
        assert [m for _, m in findings] == ["tmp published twice"]

    def test_write_after_publish_reported(self):
        findings = check(
            STAGED_PUBLISH,
            """\
            def late_write(target, payload):
                tmp = target.with_suffix(".tmp")
                tmp.write_text(payload)
                tmp.replace(target)
                tmp.write_text(payload)
            """,
        )
        assert len(findings) == 1
        assert "written after publish" in findings[0][1]

    def test_good_protocol_is_quiet(self):
        findings = check(
            STAGED_PUBLISH,
            """\
            def publish(target, payload):
                tmp = target.with_suffix(".tmp")
                tmp.write_text(payload)
                tmp.replace(target)
            """,
        )
        assert findings == []

    def test_must_semantics_on_diamond_merge(self):
        # One branch already published: the final replace is still legal
        # along the not-taken branch, so no *must* violation exists.
        findings = check(
            STAGED_PUBLISH,
            """\
            def maybe_early(target, payload, early):
                tmp = target.with_suffix(".tmp")
                tmp.write_text(payload)
                if early:
                    tmp.replace(target)
                tmp.replace(target)
            """,
        )
        assert findings == []

    def test_publish_only_on_one_branch_leaks_other(self):
        findings = check(
            STAGED_PUBLISH,
            """\
            def forgets_else(target, payload, ok):
                tmp = target.with_suffix(".tmp")
                tmp.write_text(payload)
                if ok:
                    tmp.replace(target)
            """,
        )
        # The fall-through path leaks the temp file; flagged at exit.
        assert len(findings) == 1
        assert "never published" in findings[0][1]

    def test_returned_token_escapes(self):
        findings = check(
            STAGED_PUBLISH,
            """\
            def stage_for_caller(target, payload):
                tmp = target.with_suffix(".tmp")
                tmp.write_text(payload)
                return tmp
            """,
        )
        assert findings == []


class TestShmBuffer:
    def test_use_after_close_reported(self):
        findings = check(
            SHM_BUFFER,
            """\
            def reader(spec):
                buf = SharedEnsembleBuffer(spec)
                buf.close()
                return buf.gather()
            """,
        )
        assert len(findings) == 1
        assert "used after close" in findings[0][1]

    def test_double_close_reported(self):
        findings = check(
            SHM_BUFFER,
            """\
            def sloppy(spec):
                buf = SharedEnsembleBuffer(spec)
                buf.close()
                buf.close()
            """,
        )
        assert len(findings) == 1
        assert "closed twice" in findings[0][1]

    def test_owner_teardown_close_then_unlink_is_quiet(self):
        findings = check(
            SHM_BUFFER,
            """\
            def owner(spec):
                buf = SharedEnsembleBuffer(spec)
                buf.scatter(spec)
                buf.close()
                buf.unlink()
            """,
        )
        assert findings == []

    def test_use_only_on_closed_branch_is_must_quiet(self):
        # The token may still be open on the else path: not a must-bug.
        findings = check(
            SHM_BUFFER,
            """\
            def maybe(spec, done):
                buf = SharedEnsembleBuffer(spec)
                if done:
                    buf.close()
                buf.unlink()
            """,
        )
        assert findings == []


class TestJobLifecycle:
    def test_done_is_terminal(self):
        findings = check(
            JOB_LIFECYCLE,
            """\
            def recycle(job):
                job.state = JobState.DONE
                job.state = JobState.QUEUED
            """,
            attr=True,
        )
        assert len(findings) == 1
        assert "DONE -> QUEUED" in findings[0][1]

    def test_declared_lifecycle_is_quiet(self):
        findings = check(
            JOB_LIFECYCLE,
            """\
            def run(job, ok):
                job.state = JobState.RUNNING
                if ok:
                    job.state = JobState.DONE
                else:
                    job.state = JobState.FAILED
            """,
            attr=True,
        )
        assert findings == []

    def test_loop_rebinding_does_not_self_transition(self):
        # Each iteration cancels a *different* job; the back edge must
        # not turn that into CANCELLED -> CANCELLED.
        findings = check(
            JOB_LIFECYCLE,
            """\
            def drain(jobs):
                for job in jobs:
                    job.state = JobState.CANCELLED
            """,
            attr=True,
        )
        assert findings == []

    def test_setter_method_counts_as_assignment(self):
        findings = check(
            JOB_LIFECYCLE,
            """\
            def retry_then_finish(job):
                job.state = JobState.FAILED
                job.reset_for_retry()
                job.state = JobState.DONE
            """,
            attr=True,
        )
        # reset_for_retry moves FAILED -> QUEUED; QUEUED -> DONE is not
        # declared (a job must run before it completes).
        assert len(findings) == 1
        assert "QUEUED -> DONE" in findings[0][1]


class TestREP013Integration:
    def test_rule_reports_protocol_name_and_symbol(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/products/example.py",
            """\
            def publish_twice(target, payload):
                tmp = target.with_suffix(".tmp")
                tmp.write_text(payload)
                tmp.replace(target)
                tmp.replace(target)
            """,
            select=["REP013"],
        )
        assert [f.rule for f in report.findings] == ["REP013"]
        assert "[staged-publish]" in report.findings[0].message
        assert report.findings[0].symbol == "publish_twice:staged-publish"

    def test_helper_mediated_publish_needs_summaries(self, tmp_path):
        files = {
            "src/repro/util/fsio.py": """\
                import os

                def commit(tmp, final):
                    os.replace(tmp, final)
                """,
            "src/repro/products/example.py": """\
                from repro.util.fsio import commit

                def publish_twice(target, payload):
                    tmp = target.with_suffix(".tmp")
                    tmp.write_text(payload)
                    commit(tmp, target)
                    commit(tmp, target)
                """,
        }
        with_summaries = lint_files(tmp_path, files, select=["REP013"])
        assert any(
            "published twice" in f.message for f in with_summaries.findings
        )
        without = lint_files(
            tmp_path, files, select=["REP013"], use_summaries=False
        )
        # Per-function analysis cannot classify commit(): it must drop
        # the token conservatively rather than guess.
        assert without.findings == []

    def test_suppression_comment_silences_rep013(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/products/example.py",
            """\
            def publish_twice(target, payload):
                tmp = target.with_suffix(".tmp")
                tmp.write_text(payload)
                tmp.replace(target)
                tmp.replace(target)  # repro-lint: disable=REP013 -- re-publish is idempotent here
            """,
            select=["REP013"],
        )
        assert report.findings == []
        assert report.n_suppressed == 1
