"""SARIF 2.1.0 emission (``--format sarif``) and the structural validator."""

import copy
import json
import textwrap
from pathlib import Path

from tools.lint.cli import main
from tools.lint.core import Finding, all_rules
from tools.lint.sarif import (
    FINGERPRINT_KEY,
    SARIF_SCHEMA,
    SARIF_VERSION,
    render_sarif,
    validate_sarif,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _findings():
    return [
        Finding(
            rule="REP009",
            path="src/repro/workflow/covfile.py",
            line=42,
            message="resource 'columns' may leak",
            symbol="read:columns",
        ),
        Finding(
            rule="REP011",
            path="src/repro/products/store.py",
            line=7,
            message="staged artifact renamed without fsync",
            symbol="publish:tmp",
        ),
    ]


class TestRenderSarif:
    def test_round_trip_validates(self):
        doc = render_sarif(_findings(), all_rules())
        assert validate_sarif(doc) == []
        # The document must survive JSON serialization unchanged.
        assert validate_sarif(json.loads(json.dumps(doc))) == []

    def test_envelope_pins_version_and_schema(self):
        doc = render_sarif([], all_rules())
        assert doc["version"] == SARIF_VERSION
        assert doc["$schema"] == SARIF_SCHEMA
        assert validate_sarif(doc) == []

    def test_every_registered_rule_is_described(self):
        doc = render_sarif([], all_rules())
        described = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
        assert described == sorted(all_rules())

    def test_results_reference_rules_by_index(self):
        doc = render_sarif(_findings(), all_rules())
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_result_locations_are_relative_with_uri_base(self):
        doc = render_sarif(_findings(), all_rules())
        for result in doc["runs"][0]["results"]:
            loc = result["locations"][0]["physicalLocation"]
            artifact = loc["artifactLocation"]
            assert not artifact["uri"].startswith("/")
            assert artifact["uriBaseId"] == "SRCROOT"
            assert loc["region"]["startLine"] >= 1

    def test_partial_fingerprints_match_lint_fingerprints(self):
        findings = _findings()
        doc = render_sarif(findings, all_rules())
        emitted = [
            r["partialFingerprints"][FINGERPRINT_KEY]
            for r in doc["runs"][0]["results"]
        ]
        assert sorted(emitted) == sorted(f.fingerprint for f in findings)


class TestValidateSarif:
    def _valid(self):
        return render_sarif(_findings(), all_rules())

    def test_rejects_wrong_version(self):
        doc = self._valid()
        doc["version"] = "2.0.0"
        assert any("version" in p for p in validate_sarif(doc))

    def test_rejects_missing_runs(self):
        assert validate_sarif({"version": SARIF_VERSION}) != []

    def test_rejects_unknown_rule_id(self):
        doc = self._valid()
        doc["runs"][0]["results"][0]["ruleId"] = "REP999"
        assert validate_sarif(doc) != []

    def test_rejects_mismatched_rule_index(self):
        doc = self._valid()
        result = doc["runs"][0]["results"][0]
        result["ruleIndex"] = (result["ruleIndex"] + 1) % len(
            doc["runs"][0]["tool"]["driver"]["rules"]
        )
        assert validate_sarif(doc) != []

    def test_rejects_absolute_location_uri(self):
        doc = self._valid()
        loc = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"]
        loc["artifactLocation"]["uri"] = "/etc/passwd"
        assert validate_sarif(doc) != []

    def test_rejects_zero_start_line(self):
        doc = self._valid()
        loc = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"]
        loc["region"]["startLine"] = 0
        assert validate_sarif(doc) != []

    def test_rejects_empty_message(self):
        doc = self._valid()
        doc["runs"][0]["results"][0]["message"]["text"] = ""
        assert validate_sarif(doc) != []

    def test_valid_doc_is_untouched_by_validation(self):
        doc = self._valid()
        snapshot = copy.deepcopy(doc)
        validate_sarif(doc)
        assert doc == snapshot


class TestSarifCli:
    def _bad_repo(self, tmp_path):
        mod = tmp_path / "src/repro/sched/mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            textwrap.dedent(
                """\
                import numpy as np

                rng = np.random.default_rng()
                """
            )
        )
        return tmp_path

    def test_sarif_output_validates_and_exits_1(self, tmp_path, capsys):
        root = self._bad_repo(tmp_path)
        code = main(
            ["src/repro", "--root", str(root), "--no-baseline",
             "--select", "REP001", "--format", "sarif"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["REP001"]

    def test_clean_repo_emits_empty_results(self, capsys):
        code = main(
            ["src/repro", "--root", str(REPO_ROOT), "--format", "sarif"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"] == []


class TestStrictBaseline:
    def _stale_repo(self, tmp_path):
        """A scratch repo whose baseline names an already-fixed finding."""
        mod = tmp_path / "src/repro/sched/mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import numpy as np\n\nrng = np.random.default_rng()\n")
        assert main(["src/repro", "--root", str(tmp_path), "--write-baseline"]) == 0
        mod.write_text("import numpy as np\n\nrng = np.random.default_rng(42)\n")
        return tmp_path

    def test_stale_entry_fails_under_strict(self, tmp_path, capsys):
        root = self._stale_repo(tmp_path)
        capsys.readouterr()
        code = main(
            ["src/repro", "--root", str(root), "--select", "REP001",
             "--strict-baseline"]
        )
        assert code == 1
        assert "stale" in capsys.readouterr().out

    def test_stale_entry_warns_without_strict(self, tmp_path, capsys):
        root = self._stale_repo(tmp_path)
        capsys.readouterr()
        code = main(["src/repro", "--root", str(root), "--select", "REP001"])
        assert code == 0

    def test_clean_baseline_passes_under_strict(self):
        code = main(
            ["src/repro", "tests", "--root", str(REPO_ROOT), "--strict-baseline"]
        )
        assert code == 0
