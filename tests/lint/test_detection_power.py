"""Detection-power tests: re-plant the real violations fixed in this PR.

Mirrors ``tests/workflow/test_sanitizer_race.py``: each test names the
shipped defect, replants the pre-fix shape of the code, and asserts the
rule fires on it -- then checks the shipped (fixed) shape stays quiet.
If a refactor of the rules breaks one of these, the rule has lost the
power that justified it.
"""

from tests.lint.test_rules import lint


class TestREP011CatchesUnfsyncedHeadPublish:
    """The defect fixed in ``products/store.py`` and ``benchmarks/record.py``.

    Both staged a JSON artifact next to its destination and published it
    with a bare ``os.replace`` -- after a crash the *published* head could
    be a zero-length file because the staged bytes were never forced to
    disk before the rename.
    """

    BAD = """\
        import json
        import os

        class ProductStore:
            def _publish_head(self, head):
                tmp = self.head_path.with_suffix(".tmp")
                tmp.write_text(json.dumps(head))
                os.replace(tmp, self.head_path)
        """

    FIXED = """\
        import json

        from repro.util.fsio import durable_replace

        class ProductStore:
            def _publish_head(self, head):
                tmp = self.head_path.with_suffix(".tmp")
                tmp.write_text(json.dumps(head))
                durable_replace(tmp, self.head_path)
        """

    def test_pre_fix_store_publish_fires(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/store.py", self.BAD, select=["REP011"]
        )
        assert [f.rule for f in report.findings] == ["REP011"]
        assert report.findings[0].symbol.endswith("tmp")

    def test_shipped_fix_is_quiet(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/store.py", self.FIXED, select=["REP011"]
        )
        assert report.findings == []


class TestREP009CatchesCovfileReadLeak:
    """The defect fixed in ``workflow/covfile.py`` ``read()``.

    The pre-fix order opened the column memmap first, then read and
    validated the member-id table; a truncated snapshot made the
    validation raise while the memmap's file handle was still open,
    leaking it on every torn-read retry.  The fix reads and validates
    the id table before opening the memmap.
    """

    BAD = """\
        import numpy as np

        def read_snapshot(path, state_dim, count, offset):
            columns = np.memmap(
                path, mode="r", shape=(state_dim, count), offset=offset
            )
            member_ids = np.fromfile(path, dtype=np.int64, count=count)
            if member_ids.size != count:
                raise ValueError("truncated snapshot")
            return columns, member_ids
        """

    FIXED = """\
        import numpy as np

        def read_snapshot(path, state_dim, count, offset):
            member_ids = np.fromfile(path, dtype=np.int64, count=count)
            if member_ids.size != count:
                raise ValueError("truncated snapshot")
            columns = np.memmap(
                path, mode="r", shape=(state_dim, count), offset=offset
            )
            return columns, member_ids
        """

    def test_pre_fix_read_order_fires(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/workflow/covfile.py", self.BAD, select=["REP009"]
        )
        assert [f.rule for f in report.findings] == ["REP009"]
        assert "'columns'" in report.findings[0].message

    def test_shipped_fix_is_quiet(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/workflow/covfile.py", self.FIXED, select=["REP009"]
        )
        assert report.findings == []


class TestREP010CatchesInlineBlockingHandle:
    """The defect fixed in ``products/server.py``.

    The async request loop called ``self.service.handle(...)`` inline;
    a cache miss reads and decodes snapshot files on the event loop,
    stalling every concurrent connection.  The fix offloads to a
    single-worker executor.
    """

    BAD = """\
        class ProductServer:
            async def _handle_connection(self, method, target, headers):
                response = self.service.handle(method, target, headers)
                return response

        class ProductService:
            def handle(self, method, target, headers):  # repro-lint: blocking -- cache misses read and decode snapshot files
                return (method, target, headers)
        """

    FIXED = """\
        import asyncio

        class ProductServer:
            async def _handle_connection(self, method, target, headers):
                response = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self.service.handle, method, target, headers
                )
                return response

        class ProductService:
            def handle(self, method, target, headers):  # repro-lint: blocking -- cache misses read and decode snapshot files
                return (method, target, headers)
        """

    def test_pre_fix_inline_handle_fires(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/server.py", self.BAD, select=["REP010"]
        )
        assert [f.rule for f in report.findings] == ["REP010"]
        assert "handle" in report.findings[0].message

    def test_shipped_fix_is_quiet(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/server.py", self.FIXED, select=["REP010"]
        )
        assert report.findings == []


class TestREP012CatchesRankConfusedContract:
    """The near-miss caught while annotating ``products/tiles.py``.

    ``np.full(counts.shape, np.nan)`` inherits the rank of ``counts``;
    a contract pinning the wrong rank on the reduced ``sums`` array
    (written as 3-d when the ``axis=2`` reduction makes it 2-d) must be
    rejected, while the shipped 2-d contract passes.
    """

    BAD = """\
        import numpy as np

        def downsample(blocks):
            b = np.asarray(blocks)  # shape: (tj, ti, k)
            sums = np.nansum(b, axis=2)  # shape: (tj, ti, k)
            return sums
        """

    FIXED = """\
        import numpy as np

        def downsample(blocks):
            b = np.asarray(blocks)  # shape: (tj, ti, k)
            sums = np.nansum(b, axis=2)  # shape: (tj, ti)
            return sums
        """

    def test_pre_fix_rank_mismatch_fires(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/tiles.py", self.BAD, select=["REP012"]
        )
        assert [f.rule for f in report.findings] == ["REP012"]

    def test_shipped_contract_is_quiet(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/tiles.py", self.FIXED, select=["REP012"]
        )
        assert report.findings == []
