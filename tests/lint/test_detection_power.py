"""Detection-power tests: re-plant the real violations fixed in this PR.

Mirrors ``tests/workflow/test_sanitizer_race.py``: each test names the
shipped defect, replants the pre-fix shape of the code, and asserts the
rule fires on it -- then checks the shipped (fixed) shape stays quiet.
If a refactor of the rules breaks one of these, the rule has lost the
power that justified it.
"""

from tests.lint.test_rules import lint, lint_files


class TestREP011CatchesUnfsyncedHeadPublish:
    """The defect fixed in ``products/store.py`` and ``benchmarks/record.py``.

    Both staged a JSON artifact next to its destination and published it
    with a bare ``os.replace`` -- after a crash the *published* head could
    be a zero-length file because the staged bytes were never forced to
    disk before the rename.
    """

    BAD = """\
        import json
        import os

        class ProductStore:
            def _publish_head(self, head):
                tmp = self.head_path.with_suffix(".tmp")
                tmp.write_text(json.dumps(head))
                os.replace(tmp, self.head_path)
        """

    FIXED = """\
        import json

        from repro.util.fsio import durable_replace

        class ProductStore:
            def _publish_head(self, head):
                tmp = self.head_path.with_suffix(".tmp")
                tmp.write_text(json.dumps(head))
                durable_replace(tmp, self.head_path)
        """

    def test_pre_fix_store_publish_fires(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/store.py", self.BAD, select=["REP011"]
        )
        assert [f.rule for f in report.findings] == ["REP011"]
        assert report.findings[0].symbol.endswith("tmp")

    def test_shipped_fix_is_quiet(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/store.py", self.FIXED, select=["REP011"]
        )
        assert report.findings == []


class TestREP009CatchesCovfileReadLeak:
    """The defect fixed in ``workflow/covfile.py`` ``read()``.

    The pre-fix order opened the column memmap first, then read and
    validated the member-id table; a truncated snapshot made the
    validation raise while the memmap's file handle was still open,
    leaking it on every torn-read retry.  The fix reads and validates
    the id table before opening the memmap.
    """

    BAD = """\
        import numpy as np

        def read_snapshot(path, state_dim, count, offset):
            columns = np.memmap(
                path, mode="r", shape=(state_dim, count), offset=offset
            )
            member_ids = np.fromfile(path, dtype=np.int64, count=count)
            if member_ids.size != count:
                raise ValueError("truncated snapshot")
            return columns, member_ids
        """

    FIXED = """\
        import numpy as np

        def read_snapshot(path, state_dim, count, offset):
            member_ids = np.fromfile(path, dtype=np.int64, count=count)
            if member_ids.size != count:
                raise ValueError("truncated snapshot")
            columns = np.memmap(
                path, mode="r", shape=(state_dim, count), offset=offset
            )
            return columns, member_ids
        """

    def test_pre_fix_read_order_fires(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/workflow/covfile.py", self.BAD, select=["REP009"]
        )
        assert [f.rule for f in report.findings] == ["REP009"]
        assert "'columns'" in report.findings[0].message

    def test_shipped_fix_is_quiet(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/workflow/covfile.py", self.FIXED, select=["REP009"]
        )
        assert report.findings == []


class TestREP010CatchesInlineBlockingHandle:
    """The defect fixed in ``products/server.py``.

    The async request loop called ``self.service.handle(...)`` inline;
    a cache miss reads and decodes snapshot files on the event loop,
    stalling every concurrent connection.  The fix offloads to a
    single-worker executor.
    """

    BAD = """\
        class ProductServer:
            async def _handle_connection(self, method, target, headers):
                response = self.service.handle(method, target, headers)
                return response

        class ProductService:
            def handle(self, method, target, headers):  # repro-lint: blocking -- cache misses read and decode snapshot files
                return (method, target, headers)
        """

    FIXED = """\
        import asyncio

        class ProductServer:
            async def _handle_connection(self, method, target, headers):
                response = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self.service.handle, method, target, headers
                )
                return response

        class ProductService:
            def handle(self, method, target, headers):  # repro-lint: blocking -- cache misses read and decode snapshot files
                return (method, target, headers)
        """

    def test_pre_fix_inline_handle_fires(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/server.py", self.BAD, select=["REP010"]
        )
        assert [f.rule for f in report.findings] == ["REP010"]
        assert "handle" in report.findings[0].message

    def test_shipped_fix_is_quiet(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/server.py", self.FIXED, select=["REP010"]
        )
        assert report.findings == []


class TestREP012CatchesRankConfusedContract:
    """The near-miss caught while annotating ``products/tiles.py``.

    ``np.full(counts.shape, np.nan)`` inherits the rank of ``counts``;
    a contract pinning the wrong rank on the reduced ``sums`` array
    (written as 3-d when the ``axis=2`` reduction makes it 2-d) must be
    rejected, while the shipped 2-d contract passes.
    """

    BAD = """\
        import numpy as np

        def downsample(blocks):
            b = np.asarray(blocks)  # shape: (tj, ti, k)
            sums = np.nansum(b, axis=2)  # shape: (tj, ti, k)
            return sums
        """

    FIXED = """\
        import numpy as np

        def downsample(blocks):
            b = np.asarray(blocks)  # shape: (tj, ti, k)
            sums = np.nansum(b, axis=2)  # shape: (tj, ti)
            return sums
        """

    def test_pre_fix_rank_mismatch_fires(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/tiles.py", self.BAD, select=["REP012"]
        )
        assert [f.rule for f in report.findings] == ["REP012"]

    def test_shipped_contract_is_quiet(self, tmp_path):
        report = lint(
            tmp_path, "src/repro/products/tiles.py", self.FIXED, select=["REP012"]
        )
        assert report.findings == []


class TestREP011CatchesReplaceHiddenInHelper:
    """The cross-function shape of the unfsynced-publish defect.

    Refactoring the bare ``os.replace`` into an unannotated helper hides
    the publish from per-function analysis entirely -- the caller shows a
    dirty temp path and no replace, the helper shows a replace of a
    parameter it knows nothing about.  Only the effect summary
    (``replace_src_params``) reconnects them.
    """

    HELPER_BAD = """\
        import os

        def commit_head(tmp, final):
            os.replace(tmp, final)
        """

    HELPER_FIXED = """\
        import os

        def commit_head(tmp, final):
            _fsync_path(tmp)
            os.replace(tmp, final)

        def _fsync_path(path):
            fd = os.open(path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        """

    CALLER = """\
        import json

        from repro.products.headio import commit_head

        class ProductStore:
            def _publish_head(self, head):
                tmp = self.head_path.with_suffix(".tmp")
                tmp.write_text(json.dumps(head))
                commit_head(tmp, self.head_path)
        """

    def files(self, helper):
        return {
            "src/repro/products/headio.py": helper,
            "src/repro/products/store.py": self.CALLER,
        }

    def test_caught_interprocedurally(self, tmp_path):
        report = lint_files(
            tmp_path, self.files(self.HELPER_BAD), select=["REP011"]
        )
        assert [f.rule for f in report.findings] == ["REP011"]
        assert report.findings[0].path.endswith("store.py")

    def test_missed_per_function(self, tmp_path):
        report = lint_files(
            tmp_path,
            self.files(self.HELPER_BAD),
            select=["REP011"],
            use_summaries=False,
        )
        assert report.findings == []

    def test_fsyncing_helper_is_quiet(self, tmp_path):
        report = lint_files(
            tmp_path, self.files(self.HELPER_FIXED), select=["REP011"]
        )
        assert report.findings == []


class TestREP010CatchesBlockingThroughHelperChain:
    """Transitive blocking with no annotation anywhere.

    The async connection handler calls a sync helper that reaches
    ``open()`` two hops down; no ``# repro-lint: blocking`` mark exists,
    so per-function analysis has nothing to match -- only the inferred
    summary chain convicts the call.
    """

    SERVICE = """\
        import json

        def load_snapshot(version):
            return _read(version)

        def _read(version):
            with open(version) as fh:
                return json.load(fh)
        """

    SERVER_BAD = """\
        from repro.products.service import load_snapshot

        class ProductServer:
            async def _handle(self, version):
                return load_snapshot(version)
        """

    SERVER_FIXED = """\
        import asyncio

        from repro.products.service import load_snapshot

        class ProductServer:
            async def _handle(self, version):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, load_snapshot, version)
        """

    def files(self, server):
        return {
            "src/repro/products/service.py": self.SERVICE,
            "src/repro/products/server.py": server,
        }

    def test_caught_interprocedurally(self, tmp_path):
        report = lint_files(
            tmp_path, self.files(self.SERVER_BAD), select=["REP010"]
        )
        assert [f.rule for f in report.findings] == ["REP010"]
        assert "transitively" in report.findings[0].message
        assert "load_snapshot -> _read" in report.findings[0].message

    def test_missed_per_function(self, tmp_path):
        report = lint_files(
            tmp_path,
            self.files(self.SERVER_BAD),
            select=["REP010"],
            use_summaries=False,
        )
        assert report.findings == []

    def test_executor_offload_is_quiet(self, tmp_path):
        report = lint_files(
            tmp_path, self.files(self.SERVER_FIXED), select=["REP010"]
        )
        assert report.findings == []


class TestREP009CatchesLeakThroughAcquiringHelper:
    """The covfile read-leak with the acquisition behind a helper.

    ``open_columns`` returns an open handle; the caller validates after
    acquiring, so the truncated-snapshot raise leaks the handle.
    Per-function analysis never sees an acquisition in the caller; the
    helper's ``returns_resource`` summary plants the obligation.
    """

    HELPER = """\
        def open_columns(path):
            handle = open(path, "rb")
            return handle
        """

    CALLER_BAD = """\
        import numpy as np

        from repro.workflow.snapio import open_columns

        def read_snapshot(path, count):
            columns = open_columns(path)
            member_ids = np.fromfile(path, dtype=np.int64, count=count)
            if member_ids.size != count:
                raise ValueError("truncated snapshot")
            columns.close()
            return member_ids
        """

    CALLER_FIXED = """\
        import numpy as np

        from repro.workflow.snapio import open_columns

        def read_snapshot(path, count):
            member_ids = np.fromfile(path, dtype=np.int64, count=count)
            if member_ids.size != count:
                raise ValueError("truncated snapshot")
            columns = open_columns(path)
            columns.close()
            return member_ids
        """

    def files(self, caller):
        return {
            "src/repro/workflow/snapio.py": self.HELPER,
            "src/repro/workflow/covfile.py": caller,
        }

    def test_caught_interprocedurally(self, tmp_path):
        report = lint_files(
            tmp_path, self.files(self.CALLER_BAD), select=["REP009"]
        )
        assert [f.rule for f in report.findings] == ["REP009"]
        assert "'columns'" in report.findings[0].message

    def test_missed_per_function(self, tmp_path):
        report = lint_files(
            tmp_path,
            self.files(self.CALLER_BAD),
            select=["REP009"],
            use_summaries=False,
        )
        assert report.findings == []

    def test_validate_before_acquire_is_quiet(self, tmp_path):
        report = lint_files(
            tmp_path, self.files(self.CALLER_FIXED), select=["REP009"]
        )
        assert report.findings == []
