"""Framework mechanics: fingerprints, baselines, suppressions, discovery."""

import textwrap

import pytest

from tools.lint.baseline import Baseline
from tools.lint.core import (
    Finding,
    LintError,
    Suppressions,
    iter_python_files,
    run_lint,
)


def _finding(symbol="Pool.produce:_items", path="src/repro/x.py", line=10):
    return Finding(
        rule="REP003", path=path, line=line, message="unlocked", symbol=symbol
    )


class TestFingerprints:
    def test_fingerprint_is_line_free(self):
        a = _finding(line=10)
        b = _finding(line=99)
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_symbol_and_path(self):
        assert _finding().fingerprint != _finding(symbol="other").fingerprint
        assert _finding().fingerprint != _finding(path="src/repro/y.py").fingerprint

    def test_fingerprint_survives_edits_above(self, tmp_path):
        """Inserting lines above a finding must not invalidate the baseline."""
        snippet = """\
        import numpy as np

        rng = np.random.default_rng()
        """
        path = tmp_path / "src/repro/sched/mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(textwrap.dedent(snippet))
        before = run_lint([path], root=tmp_path, select=["REP001"]).findings

        path.write_text("# a comment\n# another\n" + textwrap.dedent(snippet))
        after = run_lint([path], root=tmp_path, select=["REP001"]).findings

        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint


class TestBaseline:
    def test_from_findings_counts_duplicates(self):
        base = Baseline.from_findings([_finding(), _finding(), _finding("other")])
        assert base.entries[_finding().fingerprint] == 2
        assert base.entries[_finding("other").fingerprint] == 1

    def test_apply_splits_known_and_new(self):
        base = Baseline.from_findings([_finding()])
        result = base.apply([_finding(), _finding(line=20), _finding("other")])
        # one occurrence is known debt, the excess + the new symbol fail
        assert len(result.known) == 1
        assert {f.symbol for f in result.new} == {"Pool.produce:_items", "other"}
        assert result.stale == []

    def test_apply_reports_stale_entries(self):
        base = Baseline.from_findings([_finding(), _finding("fixed-one")])
        result = base.apply([_finding()])
        assert result.new == []
        assert result.stale == [_finding("fixed-one").fingerprint]

    def test_write_load_round_trip(self, tmp_path):
        base = Baseline.from_findings([_finding(), _finding()])
        path = tmp_path / "baseline.json"
        base.write(path)
        loaded = Baseline.load(path)
        assert loaded.entries == base.entries

    def test_missing_file_is_empty_baseline(self, tmp_path):
        loaded = Baseline.load(tmp_path / "absent.json")
        assert loaded.entries == {}

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(LintError):
            Baseline.load(path)


class TestSuppressionParsing:
    def test_parse_inline_and_file_directives(self):
        supp = Suppressions.parse(
            "x = 1  # repro-lint: disable=REP001,REP002\n"
            "# repro-lint: disable-file=REP004\n"
        )
        assert supp.by_line[1] == {"REP001", "REP002"}
        assert supp.whole_file == {"REP004"}

    def test_covers_matches_rule_line_and_all(self):
        supp = Suppressions.parse("x = 1  # repro-lint: disable=REP001\n")
        hit = Finding("REP001", "f.py", 1, "m", "s")
        other_rule = Finding("REP002", "f.py", 1, "m", "s")
        other_line = Finding("REP001", "f.py", 2, "m", "s")
        assert supp.covers(hit)
        assert not supp.covers(other_rule)
        assert not supp.covers(other_line)

        supp_all = Suppressions.parse("x = 1  # repro-lint: disable=all\n")
        assert supp_all.covers(other_rule)


class TestDiscoveryAndDriver:
    def test_iter_python_files_expands_dirs_sorted(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("")
        (tmp_path / "pkg" / "a.py").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("")
        files = iter_python_files(["pkg"], root=tmp_path)
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_iter_python_files_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError):
            iter_python_files(["no/such/dir"], root=tmp_path)

    def test_run_lint_unknown_rule_raises(self, tmp_path):
        (tmp_path / "m.py").write_text("")
        with pytest.raises(LintError):
            run_lint(["m.py"], root=tmp_path, select=["REP999"])

    def test_syntax_error_is_lint_error(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        with pytest.raises(LintError):
            run_lint(["broken.py"], root=tmp_path)
