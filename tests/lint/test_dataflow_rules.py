"""Good/bad fixtures for the dataflow rules (REP009-REP012).

Same convention as ``test_rules.py``: every bad fixture fires exactly
the selected rule; its good twin (the idiomatic fix) stays quiet.
"""

from tests.lint.test_rules import lint


class TestREP009ResourceLifecycle:
    def test_leak_on_early_return_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import numpy as np

            def read(path, n):
                m = np.memmap(path, mode="r", shape=(n, 4))
                if n < 2:
                    return None
                m._mmap.close()
                return n
            """,
            select=["REP009"],
        )
        assert [f.rule for f in report.findings] == ["REP009"]
        assert "'m'" in report.findings[0].message

    def test_try_finally_release_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            from concurrent.futures import ThreadPoolExecutor

            def run(tasks):
                pool = ThreadPoolExecutor(4)
                try:
                    return [pool.submit(t) for t in tasks]
                finally:
                    pool.shutdown()
            """,
            select=["REP009"],
        )
        assert report.findings == []

    def test_with_managed_resource_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            def read(path):
                with open(path) as fh:
                    return fh.read()
            """,
            select=["REP009"],
        )
        assert report.findings == []

    def test_rebinding_pending_resource_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import socket

            def connect(hosts):
                conn = socket.create_connection(hosts[0])
                conn = socket.create_connection(hosts[1])
                conn.close()
            """,
            select=["REP009"],
        )
        # The first connection is overwritten while still pending.
        assert len(report.findings) == 1
        assert report.findings[0].line == 4

    def test_return_escape_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import numpy as np

            def open_columns(path, shape):
                columns = np.memmap(path, mode="r", shape=shape)
                return Snapshot(columns=columns)
            """,
            select=["REP009"],
        )
        assert report.findings == []

    def test_store_on_self_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            from multiprocessing.shared_memory import SharedMemory

            class Buffer:
                def attach(self, name):
                    shm = SharedMemory(name=name)
                    self._shm = shm
            """,
            select=["REP009"],
        )
        assert report.findings == []

    def test_takes_ownership_annotation_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            from multiprocessing.shared_memory import SharedMemory

            def attach(registry, name):
                shm = SharedMemory(name=name)
                registry.adopt(shm)  # repro-lint: takes-ownership -- registry closes on shutdown
            """,
            select=["REP009"],
        )
        assert report.findings == []

    def test_release_on_one_branch_only_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import socket

            def poke(host, really):
                conn = socket.create_connection(host)
                if really:
                    conn.close()
            """,
            select=["REP009"],
        )
        assert len(report.findings) == 1

    def test_os_open_close_pair_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/util/example.py",
            """\
            import os

            def fsync_path(path):
                fd = os.open(path, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
            select=["REP009"],
        )
        assert report.findings == []


class TestREP010AsyncDiscipline:
    def test_blocking_call_in_async_def_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/products/example.py",
            """\
            import time

            async def poll(interval):
                time.sleep(interval)
            """,
            select=["REP010"],
        )
        assert [f.rule for f in report.findings] == ["REP010"]

    def test_asyncio_sleep_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/products/example.py",
            """\
            import asyncio

            async def poll(interval):
                await asyncio.sleep(interval)
            """,
            select=["REP010"],
        )
        assert report.findings == []

    def test_await_under_sync_lock_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/products/example.py",
            """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                async def refresh(self, fetch):
                    with self._lock:
                        self.data = await fetch()
            """,
            select=["REP010"],
        )
        assert len(report.findings) == 1
        assert "await" in report.findings[0].message

    def test_await_under_asyncio_lock_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/products/example.py",
            """\
            import asyncio

            class Cache:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def refresh(self, fetch):
                    async with self._lock:
                        self.data = await fetch()
            """,
            select=["REP010"],
        )
        assert report.findings == []

    def test_annotated_blocking_entry_point_fires_cross_function(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/products/example.py",
            """\
            class Service:
                def handle(self, req):  # repro-lint: blocking -- reads snapshot files
                    return req

            class Server:
                async def serve(self, service, req):
                    return service.handle(req)
            """,
            select=["REP010"],
        )
        assert len(report.findings) == 1
        assert "handle" in report.findings[0].message

    def test_executor_offload_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/products/example.py",
            """\
            import asyncio

            class Service:
                def handle(self, req):  # repro-lint: blocking -- reads snapshot files
                    return req

            class Server:
                async def serve(self, service, req):
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(None, service.handle, req)
            """,
            select=["REP010"],
        )
        assert report.findings == []


class TestREP011PublishProtocol:
    def test_replace_without_fsync_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import json
            import os

            def publish(tmp, head_path, head):
                tmp.write_text(json.dumps(head))
                os.replace(tmp, head_path)
            """,
            select=["REP011"],
        )
        assert [f.rule for f in report.findings] == ["REP011"]
        assert "fsync" in report.findings[0].message

    def test_fsync_before_replace_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import json
            import os

            def publish(tmp, head_path, head, fsync_path):
                tmp.write_text(json.dumps(head))
                fsync_path(tmp)
                os.replace(tmp, head_path)
            """,
            select=["REP011"],
        )
        assert report.findings == []

    def test_durable_replace_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import json

            from repro.util.fsio import durable_replace

            def publish(tmp, head_path, head):
                tmp.write_text(json.dumps(head))
                durable_replace(tmp, head_path)
            """,
            select=["REP011"],
        )
        assert report.findings == []

    def test_fsync_on_one_branch_only_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import os

            def publish(tmp, target, data, careful, fsync_path):
                tmp.write_bytes(data)
                if careful:
                    fsync_path(tmp)
                os.replace(tmp, target)
            """,
            select=["REP011"],
        )
        assert len(report.findings) == 1

    def test_numpy_savez_then_replace_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import os

            import numpy as np

            def write_live(tmp, target, anomalies):
                np.savez(tmp, anomalies=anomalies)
                os.replace(tmp, target)
            """,
            select=["REP011"],
        )
        assert len(report.findings) == 1

    def test_direct_write_to_published_path_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import json

            from repro.util.fsio import durable_replace

            class Store:
                def publish(self, tmp, head):
                    tmp.write_text(json.dumps(head))
                    durable_replace(tmp, self.head_path)

                def sneak(self, head):
                    self.head_path.write_text(json.dumps(head))
            """,
            select=["REP011"],
        )
        assert len(report.findings) == 1
        assert "publish" in report.findings[0].message.lower()


class TestREP012ArrayContracts:
    def test_correct_contract_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            import numpy as np

            def anomalies(n, count):
                out = np.zeros((n, count))  # shape: (n, count) # dtype: float64
                return out
            """,
            select=["REP012"],
        )
        assert report.findings == []

    def test_wrong_literal_dims_fire(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            import numpy as np

            def grid():
                out = np.zeros((4, 8))  # shape: (4, 9)
                return out
            """,
            select=["REP012"],
        )
        assert [f.rule for f in report.findings] == ["REP012"]

    def test_transpose_propagation_checks_downstream(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            import numpy as np

            def f(matrix):
                m = np.asarray(matrix)  # shape: (rows, cols)
                t = m.T  # shape: (rows, cols)
                return t
            """,
            select=["REP012"],
        )
        # m.T is (cols, rows); the declared (rows, cols) contradicts it.
        assert len(report.findings) == 1

    def test_axis_reduction_drops_dim(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            import numpy as np

            def f(blocks):
                b = np.asarray(blocks)  # shape: (tj, ti, k)
                sums = np.nansum(b, axis=2)  # shape: (tj, ti)
                return sums
            """,
            select=["REP012"],
        )
        assert report.findings == []

    def test_dtype_mismatch_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            import numpy as np

            def f(raw):
                ids = np.asarray(raw, dtype=np.int64)  # dtype: float64
                return ids
            """,
            select=["REP012"],
        )
        assert len(report.findings) == 1

    def test_malformed_contract_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            import numpy as np

            def f(n):
                out = np.zeros(n)  # shape: n by 3
                return out
            """,
            select=["REP012"],
        )
        assert len(report.findings) == 1
        assert "malformed" in report.findings[0].message

    def test_wildcard_and_symbol_dims_do_not_conflict(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            import numpy as np

            def f(matrix, n):
                m = np.asarray(matrix)  # shape: (n, ?)
                r = m.reshape((n, -1))  # shape: (n, ?)
                return r
            """,
            select=["REP012"],
        )
        assert report.findings == []

    def test_docstring_mention_is_not_a_contract(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            '''\
            def f():
                """Document the syntax: use `# shape: (a, b)` comments."""
                return None
            ''',
            select=["REP012"],
        )
        assert report.findings == []
