"""CFG-builder and forward-analysis tests, independent of any rule.

Each test asserts structural properties of the graph (which paths
exist, what cleanup they route through), not node indices -- the
builder is free to renumber as long as the paths are right.
"""

import ast
import textwrap

from tools.lint.dataflow import analyze_forward, build_cfg, iter_function_defs


def cfg_of(source):
    """Build the CFG of the first function in *source*."""
    tree = ast.parse(textwrap.dedent(source))
    func = next(iter_function_defs(tree))
    return build_cfg(func)


def stmt_node(cfg, text):
    """The unique stmt/branch/loop node whose source contains *text*."""
    hits = [
        n
        for n in cfg.nodes
        if n.stmt is not None and text in ast.unparse(n.stmt).split("\n")[0]
    ]
    assert hits, f"no node matching {text!r}"
    return hits[0]


def reachable_from(cfg, start):
    """Indices reachable from *start* by successor edges."""
    seen, stack = set(), [start]
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        stack.extend(cfg.nodes[index].succs)
    return seen


def paths_to_exit(cfg, limit=10_000):
    """All acyclic entry->exit node-index paths (tests keep CFGs tiny)."""
    out = []

    def walk(index, path):
        if len(out) >= limit:
            return
        if index == cfg.exit:
            out.append(path)
            return
        for succ in cfg.nodes[index].succs:
            if succ not in path:
                walk(succ, path + [succ])

    walk(cfg.entry, [cfg.entry])
    return out


class TestLinear:
    def test_straight_line_single_path(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                b = a + 1
                return b
            """
        )
        paths = paths_to_exit(cfg)
        assert len(paths) == 1
        kinds = [cfg.nodes[i].kind for i in paths[0]]
        assert kinds == ["entry", "stmt", "stmt", "stmt", "exit"]

    def test_if_else_joins(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        assert len(paths_to_exit(cfg)) == 2
        ret = stmt_node(cfg, "return a")
        preds = cfg.preds()[ret.index]
        assert len(preds) == 2  # both arms join at the return

    def test_if_without_else_has_fallthrough(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                return x
            """
        )
        # One path through the body, one straight from the branch node.
        assert len(paths_to_exit(cfg)) == 2


class TestLoops:
    def test_for_loop_back_edge(self):
        cfg = cfg_of(
            """
            def f(items):
                for x in items:
                    use(x)
                return None
            """
        )
        head = cfg.nodes_of_kind("loop_head")[0]
        body = stmt_node(cfg, "use(x)")
        assert head.index in body.succs  # back edge
        assert body.index in head.succs  # head enters body

    def test_while_orelse_on_normal_exhaustion(self):
        cfg = cfg_of(
            """
            def f(x):
                while x:
                    x = step(x)
                else:
                    finish()
                return x
            """
        )
        head = cfg.nodes_of_kind("loop_head")[0]
        orelse = stmt_node(cfg, "finish()")
        assert orelse.index in head.succs  # exhaustion runs the else

    def test_break_bypasses_orelse(self):
        cfg = cfg_of(
            """
            def f(items):
                for x in items:
                    if x:
                        break
                else:
                    finish()
                return x
            """
        )
        brk = stmt_node(cfg, "break")
        orelse = stmt_node(cfg, "finish()")
        ret = stmt_node(cfg, "return x")
        # break reaches the return without passing through the else
        assert ret.index in reachable_from(cfg, brk.index)
        assert orelse.index not in reachable_from(cfg, brk.index)

    def test_continue_targets_loop_head(self):
        cfg = cfg_of(
            """
            def f(items):
                for x in items:
                    if x:
                        continue
                    use(x)
            """
        )
        head = cfg.nodes_of_kind("loop_head")[0]
        cont = stmt_node(cfg, "continue")
        assert head.index in cont.succs


class TestWith:
    def test_with_exit_on_normal_path(self):
        cfg = cfg_of(
            """
            def f(path):
                with open(path) as fh:
                    data = fh.read()
                return data
            """
        )
        leave = cfg.nodes_of_kind("with_exit")
        assert len(leave) == 1
        ret = stmt_node(cfg, "return data")
        assert ret.index in leave[0].succs

    def test_early_return_unwinds_through_with_exit(self):
        cfg = cfg_of(
            """
            def f(path):
                with open(path) as fh:
                    if bad(fh):
                        return None
                    data = fh.read()
                return data
            """
        )
        # Two with_exit instances: one on the early return's unwind path,
        # one on the normal fall-through.
        leaves = cfg.nodes_of_kind("with_exit")
        assert len(leaves) == 2
        ret_none = stmt_node(cfg, "return None")
        unwind = [leave for leave in leaves if leave.index in ret_none.succs]
        assert len(unwind) == 1
        assert cfg.exit in unwind[0].succs  # early return: with_exit -> exit


class TestTry:
    def test_finally_duplicated_on_return(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    if x:
                        return early()
                    mid()
                finally:
                    cleanup()
                return late()
            """
        )
        # Two cleanup instances: the return's unwind copy and the normal one.
        cleanups = [
            n
            for n in cfg.nodes
            if n.stmt is not None and "cleanup" in ast.unparse(n.stmt)
        ]
        assert len(cleanups) == 2
        # Every entry->exit path runs cleanup exactly once.
        for path in paths_to_exit(cfg):
            n_cleanups = sum(1 for i in path if cfg.nodes[i] in cleanups)
            assert n_cleanups == 1

    def test_return_in_try_with_raising_finally(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    return value()
                finally:
                    raise Boom()
                """
        )
        # No normal completion: the single path is return -> raise -> exit.
        for path in paths_to_exit(cfg):
            texts = [
                ast.unparse(cfg.nodes[i].stmt).split("\n")[0]
                for i in path
                if cfg.nodes[i].stmt is not None and cfg.nodes[i].kind == "stmt"
            ]
            assert any("raise" in t for t in texts)

    def test_handler_sees_pre_try_and_mid_body_state(self):
        cfg = cfg_of(
            """
            def f():
                before()
                try:
                    first()
                    second()
                except ValueError:
                    handle()
            """
        )
        handler = cfg.nodes_of_kind("except")[0]
        preds = set(cfg.preds()[handler.index])
        assert stmt_node(cfg, "before()").index in preds  # pre-try frontier
        assert stmt_node(cfg, "first()").index in preds
        assert stmt_node(cfg, "second()").index in preds

    def test_simple_assign_contributes_pre_state_to_handler(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    x = acquire()
                except OSError:
                    handle()
            """
        )
        # `x = acquire()` binds only after the RHS completes, so the
        # handler must NOT receive its post-state.
        handler = cfg.nodes_of_kind("except")[0]
        assign = stmt_node(cfg, "x = acquire()")
        assert handler.index not in assign.succs

    def test_orelse_runs_only_without_exception(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    handle()
                else:
                    celebrate()
            """
        )
        handler = cfg.nodes_of_kind("except")[0]
        orelse = stmt_node(cfg, "celebrate()")
        assert orelse.index not in reachable_from(cfg, handler.index)
        assert orelse.index in reachable_from(cfg, stmt_node(cfg, "risky()").index)


class TestAnalyzeForward:
    @staticmethod
    def _assigned_names(cfg):
        """Forward may-assign analysis over frozensets of names."""

        def transfer(node, state):
            if node.kind == "stmt" and isinstance(node.stmt, ast.Assign):
                target = node.stmt.targets[0]
                if isinstance(target, ast.Name):
                    return state | {target.id}
            return state

        return analyze_forward(
            cfg, frozenset(), transfer, lambda a, b: a | b
        )

    def test_branch_states_merge_at_join(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
                return x
            """
        )
        states = self._assigned_names(cfg)
        assert states[cfg.exit] == {"a", "b"}  # union merge saw both arms

    def test_loop_reaches_fixpoint(self):
        cfg = cfg_of(
            """
            def f(items):
                total = 0
                for x in items:
                    total = total + x
                    last = x
                return total
            """
        )
        states = self._assigned_names(cfg)
        head = cfg.nodes_of_kind("loop_head")[0]
        # The back edge feeds `last` around to the head's in-state.
        assert "last" in states[head.index]

    def test_dead_code_after_return_is_not_lowered(self):
        cfg = cfg_of(
            """
            def f():
                return 1
                dead = 2
            """
        )
        # An empty frontier after `return` drops unreachable statements
        # entirely -- there is no node for rules to (mis)visit.
        assert not any(
            n.stmt is not None and "dead" in ast.unparse(n.stmt)
            for n in cfg.nodes
        )
        states = self._assigned_names(cfg)
        assert states[cfg.exit] == frozenset()
