"""The ``python -m tools.lint`` command line, driven through ``main()``."""

import json
import textwrap
from pathlib import Path

from tools.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _bad_repo(tmp_path):
    """A scratch repo with one REP001 violation."""
    mod = tmp_path / "src/repro/sched/mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(
        textwrap.dedent(
            """\
            import numpy as np

            rng = np.random.default_rng()
            """
        )
    )
    return tmp_path


class TestRealTree:
    def test_repo_lints_clean_against_committed_baseline(self):
        """Acceptance: `python -m tools.lint src/repro tests` exits 0."""
        assert main(["src/repro", "tests", "--root", str(REPO_ROOT)]) == 0

    def test_repo_lints_clean_in_json_format(self, capsys):
        code = main(
            ["src/repro", "tests", "--root", str(REPO_ROOT), "--format", "json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"] == []
        assert doc["stale_baseline"] == []
        assert doc["files"] > 100


class TestExitCodes:
    def test_findings_exit_1(self, tmp_path, capsys):
        root = _bad_repo(tmp_path)
        code = main(["src/repro", "--root", str(root), "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert "REP001" in out

    def test_baselined_findings_exit_0(self, tmp_path, capsys):
        root = _bad_repo(tmp_path)
        assert main(["src/repro", "--root", str(root), "--write-baseline"]) == 0
        capsys.readouterr()
        code = main(["src/repro", "--root", str(root), "--select", "REP001"])
        assert code == 0
        assert "(1 baselined" in capsys.readouterr().out

    def test_fixed_debt_reported_stale(self, tmp_path, capsys):
        root = _bad_repo(tmp_path)
        assert main(["src/repro", "--root", str(root), "--write-baseline"]) == 0
        (root / "src/repro/sched/mod.py").write_text(
            "import numpy as np\n\nrng = np.random.default_rng(42)\n"
        )
        capsys.readouterr()
        code = main(["src/repro", "--root", str(root), "--select", "REP001"])
        assert code == 0  # stale entries warn, they don't fail
        assert "stale baseline entry" in capsys.readouterr().out

    def test_bad_path_exit_2(self, tmp_path):
        assert main(["no/such/path", "--root", str(tmp_path)]) == 2

    def test_unknown_select_exit_2(self, tmp_path):
        _bad_repo(tmp_path)
        code = main(["src/repro", "--root", str(tmp_path), "--select", "REP999"])
        assert code == 2


class TestJsonFormat:
    def test_findings_carry_fingerprints(self, tmp_path, capsys):
        root = _bad_repo(tmp_path)
        code = main(
            [
                "src/repro",
                "--root",
                str(root),
                "--no-baseline",
                "--select",
                "REP001",
                "--format",
                "json",
            ]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        (finding,) = doc["findings"]
        assert finding["rule"] == "REP001"
        assert finding["fingerprint"].startswith("src/repro/sched/mod.py::REP001::")


class TestDeveloperHelp:
    def test_explain_every_rule(self, capsys):
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert main(["--explain", rule_id]) == 0
            out = capsys.readouterr().out
            assert rule_id in out
            assert "Bad" in out and "Good" in out

    def test_explain_unknown_rule_exit_2(self, capsys):
        assert main(["--explain", "REP999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert rule_id in out


class TestChangedOnly:
    """``--changed-only`` narrows the lint run to git-modified files."""

    def _two_file_repo(self, tmp_path):
        root = _bad_repo(tmp_path)
        clean = root / "src/repro/sched/clean.py"
        clean.write_text('"""Nothing to see."""\n\nVALUE = 1\n')
        return root, root / "src/repro/sched/mod.py", clean

    def test_only_changed_files_are_linted(self, tmp_path, capsys, monkeypatch):
        root, bad, clean = self._two_file_repo(tmp_path)
        monkeypatch.setattr(
            "tools.lint.cli._git_changed_files",
            lambda r: {clean.resolve()},
        )
        code = main(
            [
                "src/repro",
                "--root",
                str(root),
                "--no-baseline",
                "--changed-only",
                "--format",
                "json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["files"] == 1
        assert doc["findings"] == []

    def test_changed_bad_file_still_fires(self, tmp_path, capsys, monkeypatch):
        root, bad, clean = self._two_file_repo(tmp_path)
        monkeypatch.setattr(
            "tools.lint.cli._git_changed_files",
            lambda r: {bad.resolve()},
        )
        code = main(
            ["src/repro", "--root", str(root), "--no-baseline", "--changed-only"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "1 file(s)" in out

    def test_empty_changed_set_exits_0(self, tmp_path, capsys, monkeypatch):
        root, _, _ = self._two_file_repo(tmp_path)
        monkeypatch.setattr(
            "tools.lint.cli._git_changed_files", lambda r: set()
        )
        code = main(
            ["src/repro", "--root", str(root), "--no-baseline", "--changed-only"]
        )
        assert code == 0
        assert "0 file(s)" in capsys.readouterr().out

    def test_git_failure_is_a_usage_error(self, tmp_path, capsys, monkeypatch):
        from tools.lint.core import LintError

        root, _, _ = self._two_file_repo(tmp_path)

        def boom(r):
            raise LintError("--changed-only needs git")

        monkeypatch.setattr("tools.lint.cli._git_changed_files", boom)
        code = main(["src/repro", "--root", str(root), "--changed-only"])
        assert code == 2
        assert "needs git" in capsys.readouterr().err
