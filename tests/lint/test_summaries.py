"""Effect-summary propagation (tools/lint/summaries.py).

Builds small projects with :func:`build_project` and asserts the
bottom-up SCC fixpoint converges to the right per-function effects:
transitive blocking, RNG taint, param-indexed fsync/replace/close/store
effects, resource-returning helpers, the async non-propagation rule and
the manual-annotation override surface.
"""

import ast
import textwrap

from tools.lint.summaries import build_project, extract_ir


def project_of(files: dict[str, str]):
    irs = {}
    for relpath, source in files.items():
        source = textwrap.dedent(source)
        irs[relpath] = extract_ir(ast.parse(source), source, relpath)
    return build_project(irs)


class TestBlocking:
    def test_direct_blocking_call_recorded(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    import time

                    def nap():
                        time.sleep(1)
                    """,
            }
        )
        assert project.summaries["repro.a:nap"].blocking == "time.sleep"

    def test_blocking_propagates_through_call_chain(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    import time

                    def inner():
                        time.sleep(1)

                    def middle():
                        inner()

                    def outer():
                        middle()
                    """,
            }
        )
        outer = project.summaries["repro.a:outer"]
        assert outer.blocking == "middle -> inner -> time.sleep"

    def test_blocking_converges_inside_recursion_cycle(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    import time

                    def ping(n):
                        if n:
                            pong(n - 1)

                    def pong(n):
                        time.sleep(1)
                        ping(n)
                    """,
            }
        )
        assert project.summaries["repro.a:pong"].blocking == "time.sleep"
        assert project.summaries["repro.a:ping"].blocking is not None

    def test_async_callee_does_not_propagate_blocking(self):
        # An async def that blocks is async's own bug (REP010 flags it
        # there); awaiting it is not a blocking call in the caller.
        project = project_of(
            {
                "src/repro/a.py": """\
                    import time

                    async def slow():
                        time.sleep(1)

                    async def caller():
                        await slow()
                    """,
            }
        )
        assert project.summaries["repro.a:slow"].blocking == "time.sleep"
        assert project.summaries["repro.a:caller"].blocking is None

    def test_annotation_survives_into_summary(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    def fetch():  # repro-lint: blocking -- reads a snapshot
                        return 1
                    """,
            }
        )
        summ = project.summaries["repro.a:fetch"]
        assert summ.annotated_blocking
        assert summ.blocking is not None
        assert project.annotated_blocking["fetch"] == ("src/repro/a.py", 1)


class TestRngTaint:
    def test_legacy_global_rng_taints_callers(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    import numpy as np

                    def draw():
                        return np.random.rand(3)

                    def wrapper():
                        return draw()
                    """,
            }
        )
        assert project.summaries["repro.a:draw"].rng is not None
        assert "draw" in project.summaries["repro.a:wrapper"].rng


class TestParamEffects:
    def test_fsync_and_replace_params_by_index(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    import os

                    def sync(handle):
                        handle.flush()

                    def publish(tmp, final):
                        os.replace(tmp, final)
                    """,
            }
        )
        assert project.summaries["repro.a:sync"].fsync_params == {0}
        assert project.summaries["repro.a:publish"].replace_src_params == {0}

    def test_durable_replace_call_covers_fsync_and_replace(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    from repro.util import fsio

                    def publish(tmp, final):
                        fsio.durable_replace(tmp, final)
                    """,
            }
        )
        summ = project.summaries["repro.a:publish"]
        assert 0 in summ.fsync_params
        assert 0 in summ.replace_src_params

    def test_write_params_seen_through_method(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    def dump(handle, payload):
                        handle.write_text(payload)
                    """,
            }
        )
        assert 0 in project.summaries["repro.a:dump"].write_params

    def test_self_offset_on_method_params(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    import os

                    class Publisher:
                        def sync(self, handle):
                            os.fsync(handle)
                    """,
            }
        )
        # `handle` is param index 1 (after self).
        assert project.summaries["repro.a:Publisher.sync"].fsync_params == {1}

    def test_close_and_store_params(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    def finish(handle):
                        handle.close()

                    def keep(registry, handle):
                        registry.append(handle)
                    """,
            }
        )
        assert project.summaries["repro.a:finish"].close_params == {0}
        assert project.summaries["repro.a:keep"].store_params == {1}

    def test_param_effects_flow_through_wrappers(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    import os

                    def _sync(fd):
                        os.fsync(fd)

                    def sync_then_close(fd):
                        _sync(fd)
                        os.close(fd)
                    """,
            }
        )
        summ = project.summaries["repro.a:sync_then_close"]
        assert 0 in summ.fsync_params


class TestResourceReturns:
    def test_helper_returning_open_handle(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    def acquire(path):
                        handle = open(path)
                        return handle
                    """,
            }
        )
        assert project.summaries["repro.a:acquire"].returns_resource is not None

    def test_identity_returns_params(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    def passthrough(handle):
                        return handle
                    """,
            }
        )
        assert project.summaries["repro.a:passthrough"].returns_params == {0}


class TestUnknownCalls:
    def test_unresolved_call_marks_summary(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    def run(cb):
                        cb()
                    """,
            }
        )
        assert project.summaries["repro.a:run"].unknown_calls

    def test_fully_resolved_pure_function_is_clean(self):
        project = project_of(
            {
                "src/repro/a.py": """\
                    def add(a, b):
                        return a + b

                    def twice(a):
                        return add(a, a)
                    """,
            }
        )
        summ = project.summaries["repro.a:twice"]
        assert not summ.unknown_calls
        assert summ.blocking is None
        assert summ.rng is None


class TestDependencySignature:
    def test_signature_changes_when_callee_effect_changes(self):
        caller = """\
            from repro.util import helper

            def run():
                return helper()
            """
        clean = project_of(
            {
                "src/repro/util.py": "def helper():\n    return 1\n",
                "src/repro/app.py": caller,
            }
        )
        dirty = project_of(
            {
                "src/repro/util.py": (
                    "import time\n\ndef helper():\n    time.sleep(1)\n"
                ),
                "src/repro/app.py": caller,
            }
        )
        assert clean.dependency_signature(
            "src/repro/app.py"
        ) != dirty.dependency_signature("src/repro/app.py")

    def test_signature_stable_for_unrelated_change(self):
        caller = """\
            from repro.util import helper

            def run():
                return helper()
            """
        before = project_of(
            {
                "src/repro/util.py": "def helper():\n    return 1\n",
                "src/repro/app.py": caller,
            }
        )
        after = project_of(
            {
                "src/repro/util.py": (
                    "def helper():\n    return 1\n\ndef other():\n    return 2\n"
                ),
                "src/repro/app.py": caller,
            }
        )
        assert before.dependency_signature(
            "src/repro/app.py"
        ) == after.dependency_signature("src/repro/app.py")
