"""Each REP rule fires on a bad fixture and stays quiet on the good twin.

Every lint() call selects the rule under test so docstring-less fixture
snippets don't trip REP004 incidentally.
"""

import textwrap
from pathlib import Path

from tools.lint.core import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint(tmp_path, relpath, source, select):
    """Write a snippet into a scratch repo layout and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_lint([path], root=tmp_path, select=select)


def lint_files(
    tmp_path, files, select, *, use_summaries=True, jobs=1, cache_dir=None
):
    """Write a multi-file scratch project and lint all of it."""
    paths = []
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return run_lint(
        paths,
        root=tmp_path,
        select=select,
        jobs=jobs,
        use_summaries=use_summaries,
        cache_dir=cache_dir,
    )


class TestREP001Determinism:
    def test_unseeded_default_rng_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            import numpy as np

            rng = np.random.default_rng()
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]
        assert "unseeded" in report.findings[0].message

    def test_aliased_import_resolved(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            from numpy.random import default_rng

            rng = default_rng()
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]

    def test_module_level_global_state_call_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/obs/example.py",
            """\
            import numpy.random as nr

            noise = nr.standard_normal(10)
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]
        assert "global state" in report.findings[0].message

    def test_legacy_randomstate_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/obs/example.py",
            """\
            import numpy as np

            rng = np.random.RandomState(7)
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]

    def test_bare_default_rng_reference_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/ocean/example.py",
            """\
            from dataclasses import dataclass, field

            import numpy as np


            @dataclass
            class Forcing:
                rng: np.random.Generator = field(
                    default_factory=np.random.default_rng
                )
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]
        assert "default_factory" in report.findings[0].message

    def test_seeded_and_threaded_generators_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            import numpy as np


            def draw(n, rng=None):
                rng = rng if rng is not None else np.random.default_rng(42)
                return rng.normal(size=n)
            """,
            select=["REP001"],
        )
        assert report.findings == []

    def test_rng_module_itself_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/util/rng.py",
            """\
            import numpy as np

            rng = np.random.default_rng()
            """,
            select=["REP001"],
        )
        assert report.findings == []

    def test_removing_seed_from_real_schedulers_fails_lint(self, tmp_path):
        """Acceptance check: de-seeding sched/schedulers.py trips REP001."""
        original = (REPO_ROOT / "src/repro/sched/schedulers.py").read_text()
        mutated = original.replace(
            'SeedSequenceStream(0).rng("sched", "node-failures")',
            "default_rng()",
        ).replace(
            "from repro.util.rng import SeedSequenceStream",
            "from numpy.random import default_rng",
        )
        assert mutated != original, "expected fallback not found in schedulers.py"

        target = tmp_path / "src/repro/sched/schedulers.py"
        target.parent.mkdir(parents=True)

        target.write_text(original)
        clean = run_lint([target], root=tmp_path, select=["REP001"])
        assert clean.findings == []

        target.write_text(mutated)
        dirty = run_lint([target], root=tmp_path, select=["REP001"])
        assert [f.rule for f in dirty.findings] == ["REP001"]
        assert "ClusterScheduler.__init__" in dirty.findings[0].symbol


class TestREP002ClockDiscipline:
    def test_time_time_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time

            started = time.time()
            """,
            select=["REP002"],
        )
        assert [f.rule for f in report.findings] == ["REP002"]
        assert "time.time" in report.findings[0].message

    def test_aliased_perf_counter_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            from time import perf_counter as pc

            t0 = pc()
            """,
            select=["REP002"],
        )
        assert [f.rule for f in report.findings] == ["REP002"]

    def test_bare_clock_reference_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time

            clock = time.monotonic
            """,
            select=["REP002"],
        )
        assert [f.rule for f in report.findings] == ["REP002"]

    def test_datetime_now_fires_once_per_chain(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import datetime

            stamp = datetime.datetime.now().isoformat()
            """,
            select=["REP002"],
        )
        assert [f.rule for f in report.findings] == ["REP002"]

    def test_sleep_and_injected_clock_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time


            class Monitor:
                def __init__(self, clock):
                    self._clock = clock

                def tick(self):
                    time.sleep(0.01)
                    return self._clock()
            """,
            select=["REP002"],
        )
        assert report.findings == []

    def test_clock_module_itself_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/telemetry/clock.py",
            """\
            import time

            MONOTONIC = time.monotonic
            now = time.time()
            """,
            select=["REP002"],
        )
        assert report.findings == []


LOCKED_CLASS_HEADER = """\
import threading


class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def consume(self):
        with self._lock:
            return len(self._items)
"""


class TestREP003LockDiscipline:
    def test_unlocked_mutation_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER
            + """
    def produce(self, x):
        self._items.append(x)
""",
            select=["REP003"],
        )
        assert [f.rule for f in report.findings] == ["REP003"]
        assert report.findings[0].symbol == "Pool.produce:_items"

    def test_locked_mutation_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER
            + """
    def produce(self, x):
        with self._lock:
            self._items.append(x)
""",
            select=["REP003"],
        )
        assert report.findings == []

    def test_init_is_exempt_construction_path(self, tmp_path):
        # __init__ assigns self._items without the lock: allowed.
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER,
            select=["REP003"],
        )
        assert report.findings == []

    def test_nested_function_analyzed_as_unlocked(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER
            + """
    def spawn(self):
        with self._lock:
            def worker():
                self._items.append(1)
            return worker
""",
            select=["REP003"],
        )
        assert [f.rule for f in report.findings] == ["REP003"]
        assert report.findings[0].symbol == "Pool.spawn:_items"

    def test_unguarded_attribute_ignored(self, tmp_path):
        # self._scratch is never touched under the lock: thread-confined.
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER
            + """
    def note(self, x):
        self._scratch = x
""",
            select=["REP003"],
        )
        assert report.findings == []


class TestREP004Docstrings:
    def test_missing_docstrings_fire(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            class Widget:
                def frob(self):
                    return 1
            """,
            select=["REP004"],
        )
        items = {f.symbol for f in report.findings}
        assert items == {"<module docstring>", "Widget", "Widget.frob"}

    def test_documented_module_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            '''\
            """A documented module."""


            class Widget:
                """A documented class."""

                def frob(self):
                    """A documented method."""
                    return 1

                def _private(self):
                    return 2
            ''',
            select=["REP004"],
        )
        assert report.findings == []

    def test_files_outside_src_repro_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "tests/test_example.py",
            """\
            def test_something():
                assert True
            """,
            select=["REP004"],
        )
        assert report.findings == []


class TestREP005Layering:
    def test_util_importing_core_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/util/example.py",
            """\
            from repro.core.driver import ESSEConfig
            """,
            select=["REP005"],
        )
        assert [f.symbol for f in report.findings] == ["util->core"]

    def test_core_importing_workflow_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            from repro.workflow.parallel import ParallelESSEWorkflow
            """,
            select=["REP005"],
        )
        assert [f.symbol for f in report.findings] == ["core->workflow"]

    def test_sched_may_import_workflow_but_not_vice_versa(self, tmp_path):
        # The one-way edge that remains after the cycle break: the sched
        # simulator reuses the workflow's fault/retry vocabulary ...
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            from repro.workflow.faults import FaultInjector
            """,
            select=["REP005"],
        )
        assert report.findings == []
        # ... while the reverse direction (the old workflow -> sched
        # task-times read, now served by repro.core.taskmodel) fires.
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            from repro.sched.engine import Simulator
            """,
            select=["REP005"],
        )
        assert [f.symbol for f in report.findings] == ["workflow->sched"]

    def test_workflow_may_import_core_taskmodel(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            from repro.core.taskmodel import reference_task_times
            """,
            select=["REP005"],
        )
        assert report.findings == []

    def test_unknown_package_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/newpkg/example.py",
            """\
            X = 1
            """,
            select=["REP005"],
        )
        assert [f.symbol for f in report.findings] == ["unknown-package:newpkg"]

    def test_root_modules_may_import_anything(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/config.py",
            """\
            from repro.core.driver import ESSEDriver
            from repro.realtime.times import ExperimentTimeline
            """,
            select=["REP005"],
        )
        assert report.findings == []


class TestSuppressions:
    def test_inline_disable_suppresses_one_line(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            import numpy as np

            a = np.random.default_rng()  # repro-lint: disable=REP001
            b = np.random.default_rng()
            """,
            select=["REP001"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].line == 4
        assert report.n_suppressed == 1

    def test_disable_file_suppresses_everywhere(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            # repro-lint: disable-file=REP001
            import numpy as np

            a = np.random.default_rng()
            b = np.random.default_rng()
            """,
            select=["REP001"],
        )
        assert report.findings == []
        assert report.n_suppressed == 2

    def test_disable_all_covers_every_rule(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time

            t = time.time()  # repro-lint: disable=all
            """,
            select=["REP002"],
        )
        assert report.findings == []
        assert report.n_suppressed == 1

    def test_disable_list_of_rules(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time

            t = time.time()  # repro-lint: disable=REP001, REP002
            """,
            select=["REP002"],
        )
        assert report.findings == []

    def test_disable_with_justification_suffix(self, tmp_path):
        # The documented idiom: `disable=REPnnn -- why this is fine`.
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time

            t = time.time()  # repro-lint: disable=REP002 -- wall date of record
            """,
            select=["REP002"],
        )
        assert report.findings == []
        assert report.n_suppressed == 1


class TestREP006LockOrdering:
    def test_opposite_nesting_orders_fire(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            select=["REP006"],
        )
        assert [f.rule for f in report.findings] == ["REP006"]
        assert "cycle" in report.findings[0].message
        assert "self._a" in report.findings[0].message
        assert "self._b" in report.findings[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """,
            select=["REP006"],
        )
        assert report.findings == []

    def test_nested_nonreentrant_reacquisition_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
            select=["REP006"],
        )
        assert [f.rule for f in report.findings] == ["REP006"]
        assert "self-deadlock" in report.findings[0].message

    def test_reentrant_reacquisition_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.RLock()

                def work(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
            select=["REP006"],
        )
        assert report.findings == []

    def test_cycle_through_own_method_call_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def log(self):
                    with self._b:
                        pass

                def outer(self):
                    with self._a:
                        self.log()

                def other(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            select=["REP006"],
        )
        assert [f.rule for f in report.findings] == ["REP006"]
        assert "cycle" in report.findings[0].message

    def test_reacquire_through_method_call_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def log(self):
                    with self._lock:
                        pass

                def outer(self):
                    with self._lock:
                        self.log()
            """,
            select=["REP006"],
        )
        assert [f.rule for f in report.findings] == ["REP006"]
        assert "self-deadlock" in report.findings[0].message

    def test_sanitizer_factories_count_as_locks(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            from repro.util.sanitizer import new_lock

            class Pool:
                def __init__(self):
                    self._a = new_lock("a")
                    self._b = new_lock("b")

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            select=["REP006"],
        )
        assert [f.rule for f in report.findings] == ["REP006"]


class TestREP007ExceptionSafeLocking:
    def test_bare_acquire_release_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def work(self):
                    self._lock.acquire()
                    self._items.append(1)
                    self._lock.release()
            """,
            select=["REP007"],
        )
        assert [f.rule for f in report.findings] == ["REP007"]
        assert "try/finally" in report.findings[0].message

    def test_acquire_then_try_finally_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def work(self):
                    self._lock.acquire()
                    try:
                        self._items.append(1)
                    finally:
                        self._lock.release()
            """,
            select=["REP007"],
        )
        assert report.findings == []

    def test_acquire_inside_guarding_try_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    try:
                        self._lock.acquire()
                        pass
                    finally:
                        self._lock.release()
            """,
            select=["REP007"],
        )
        assert report.findings == []

    def test_with_statement_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def work(self):
                    with self._lock:
                        self._items.append(1)
            """,
            select=["REP007"],
        )
        assert report.findings == []

    def test_non_lock_acquire_methods_ignored(self, tmp_path):
        # Node.acquire() in the sched resource model is core accounting.
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            def start(node, job):
                node.acquire(job.cores)
                node.release()
            """,
            select=["REP007"],
        )
        assert report.findings == []

    def test_lock_named_parameter_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            def work(acc_lock, items):
                acc_lock.acquire()
                items.append(1)
                acc_lock.release()
            """,
            select=["REP007"],
        )
        assert [f.rule for f in report.findings] == ["REP007"]


class TestREP008NoBlockingUnderLock:
    def test_sleep_under_lock_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading
            import time

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []

                def work(self):
                    with self._lock:
                        time.sleep(0.1)
                        self._events.append(1)
            """,
            select=["REP008"],
        )
        assert [f.rule for f in report.findings] == ["REP008"]
        assert "time.sleep" in report.findings[0].message

    def test_sleep_outside_lock_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading
            import time

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []

                def work(self):
                    with self._lock:
                        self._events.append(1)
                    time.sleep(0.1)
            """,
            select=["REP008"],
        )
        assert report.findings == []

    def test_open_under_lock_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self, path):
                    with self._lock:
                        with open(path) as fh:
                            return fh.read()
            """,
            select=["REP008"],
        )
        assert [f.rule for f in report.findings] == ["REP008"]
        assert "open()" in report.findings[0].message

    def test_thread_join_under_lock_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    worker = threading.Thread(target=print)
                    worker.start()
                    with self._lock:
                        worker.join()
            """,
            select=["REP008"],
        )
        assert [f.rule for f in report.findings] == ["REP008"]
        assert "waits on a thread" in report.findings[0].message

    def test_subprocess_under_lock_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import subprocess
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    with self._lock:
                        subprocess.run(["true"])
            """,
            select=["REP008"],
        )
        assert [f.rule for f in report.findings] == ["REP008"]

    def test_blocking_queue_get_under_lock_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import queue
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    inbox = queue.Queue()
                    with self._lock:
                        return inbox.get()
            """,
            select=["REP008"],
        )
        assert [f.rule for f in report.findings] == ["REP008"]
        assert "queue" in report.findings[0].message

    def test_nonblocking_queue_get_is_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import queue
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    inbox = queue.Queue()
                    with self._lock:
                        return inbox.get(block=False)
            """,
            select=["REP008"],
        )
        assert report.findings == []

    def test_explicit_acquire_release_region_tracked(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import threading
            import time

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    self._lock.acquire()
                    try:
                        time.sleep(0.1)
                    finally:
                        self._lock.release()
                    time.sleep(0.1)
            """,
            select=["REP008"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].line == 11  # the sleep inside the region
