"""Each REP rule fires on a bad fixture and stays quiet on the good twin.

Every lint() call selects the rule under test so docstring-less fixture
snippets don't trip REP004 incidentally.
"""

import textwrap
from pathlib import Path

from tools.lint.core import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint(tmp_path, relpath, source, select):
    """Write a snippet into a scratch repo layout and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_lint([path], root=tmp_path, select=select)


class TestREP001Determinism:
    def test_unseeded_default_rng_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            import numpy as np

            rng = np.random.default_rng()
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]
        assert "unseeded" in report.findings[0].message

    def test_aliased_import_resolved(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            from numpy.random import default_rng

            rng = default_rng()
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]

    def test_module_level_global_state_call_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/obs/example.py",
            """\
            import numpy.random as nr

            noise = nr.standard_normal(10)
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]
        assert "global state" in report.findings[0].message

    def test_legacy_randomstate_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/obs/example.py",
            """\
            import numpy as np

            rng = np.random.RandomState(7)
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]

    def test_bare_default_rng_reference_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/ocean/example.py",
            """\
            from dataclasses import dataclass, field

            import numpy as np


            @dataclass
            class Forcing:
                rng: np.random.Generator = field(
                    default_factory=np.random.default_rng
                )
            """,
            select=["REP001"],
        )
        assert [f.rule for f in report.findings] == ["REP001"]
        assert "default_factory" in report.findings[0].message

    def test_seeded_and_threaded_generators_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            import numpy as np


            def draw(n, rng=None):
                rng = rng if rng is not None else np.random.default_rng(42)
                return rng.normal(size=n)
            """,
            select=["REP001"],
        )
        assert report.findings == []

    def test_rng_module_itself_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/util/rng.py",
            """\
            import numpy as np

            rng = np.random.default_rng()
            """,
            select=["REP001"],
        )
        assert report.findings == []

    def test_removing_seed_from_real_schedulers_fails_lint(self, tmp_path):
        """Acceptance check: de-seeding sched/schedulers.py trips REP001."""
        original = (REPO_ROOT / "src/repro/sched/schedulers.py").read_text()
        mutated = original.replace(
            'SeedSequenceStream(0).rng("sched", "node-failures")',
            "default_rng()",
        ).replace(
            "from repro.util.rng import SeedSequenceStream",
            "from numpy.random import default_rng",
        )
        assert mutated != original, "expected fallback not found in schedulers.py"

        target = tmp_path / "src/repro/sched/schedulers.py"
        target.parent.mkdir(parents=True)

        target.write_text(original)
        clean = run_lint([target], root=tmp_path, select=["REP001"])
        assert clean.findings == []

        target.write_text(mutated)
        dirty = run_lint([target], root=tmp_path, select=["REP001"])
        assert [f.rule for f in dirty.findings] == ["REP001"]
        assert "ClusterScheduler.__init__" in dirty.findings[0].symbol


class TestREP002ClockDiscipline:
    def test_time_time_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time

            started = time.time()
            """,
            select=["REP002"],
        )
        assert [f.rule for f in report.findings] == ["REP002"]
        assert "time.time" in report.findings[0].message

    def test_aliased_perf_counter_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            from time import perf_counter as pc

            t0 = pc()
            """,
            select=["REP002"],
        )
        assert [f.rule for f in report.findings] == ["REP002"]

    def test_bare_clock_reference_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time

            clock = time.monotonic
            """,
            select=["REP002"],
        )
        assert [f.rule for f in report.findings] == ["REP002"]

    def test_datetime_now_fires_once_per_chain(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import datetime

            stamp = datetime.datetime.now().isoformat()
            """,
            select=["REP002"],
        )
        assert [f.rule for f in report.findings] == ["REP002"]

    def test_sleep_and_injected_clock_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time


            class Monitor:
                def __init__(self, clock):
                    self._clock = clock

                def tick(self):
                    time.sleep(0.01)
                    return self._clock()
            """,
            select=["REP002"],
        )
        assert report.findings == []

    def test_clock_module_itself_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/telemetry/clock.py",
            """\
            import time

            MONOTONIC = time.monotonic
            now = time.time()
            """,
            select=["REP002"],
        )
        assert report.findings == []


LOCKED_CLASS_HEADER = """\
import threading


class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def consume(self):
        with self._lock:
            return len(self._items)
"""


class TestREP003LockDiscipline:
    def test_unlocked_mutation_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER
            + """
    def produce(self, x):
        self._items.append(x)
""",
            select=["REP003"],
        )
        assert [f.rule for f in report.findings] == ["REP003"]
        assert report.findings[0].symbol == "Pool.produce:_items"

    def test_locked_mutation_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER
            + """
    def produce(self, x):
        with self._lock:
            self._items.append(x)
""",
            select=["REP003"],
        )
        assert report.findings == []

    def test_init_is_exempt_construction_path(self, tmp_path):
        # __init__ assigns self._items without the lock: allowed.
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER,
            select=["REP003"],
        )
        assert report.findings == []

    def test_nested_function_analyzed_as_unlocked(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER
            + """
    def spawn(self):
        with self._lock:
            def worker():
                self._items.append(1)
            return worker
""",
            select=["REP003"],
        )
        assert [f.rule for f in report.findings] == ["REP003"]
        assert report.findings[0].symbol == "Pool.spawn:_items"

    def test_unguarded_attribute_ignored(self, tmp_path):
        # self._scratch is never touched under the lock: thread-confined.
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            LOCKED_CLASS_HEADER
            + """
    def note(self, x):
        self._scratch = x
""",
            select=["REP003"],
        )
        assert report.findings == []


class TestREP004Docstrings:
    def test_missing_docstrings_fire(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            class Widget:
                def frob(self):
                    return 1
            """,
            select=["REP004"],
        )
        items = {f.symbol for f in report.findings}
        assert items == {"<module docstring>", "Widget", "Widget.frob"}

    def test_documented_module_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            '''\
            """A documented module."""


            class Widget:
                """A documented class."""

                def frob(self):
                    """A documented method."""
                    return 1

                def _private(self):
                    return 2
            ''',
            select=["REP004"],
        )
        assert report.findings == []

    def test_files_outside_src_repro_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "tests/test_example.py",
            """\
            def test_something():
                assert True
            """,
            select=["REP004"],
        )
        assert report.findings == []


class TestREP005Layering:
    def test_util_importing_core_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/util/example.py",
            """\
            from repro.core.driver import ESSEConfig
            """,
            select=["REP005"],
        )
        assert [f.symbol for f in report.findings] == ["util->core"]

    def test_core_importing_workflow_fires(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/core/example.py",
            """\
            from repro.workflow.parallel import ParallelESSEWorkflow
            """,
            select=["REP005"],
        )
        assert [f.symbol for f in report.findings] == ["core->workflow"]

    def test_acknowledged_cycle_edges_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            from repro.sched.engine import Simulator
            """,
            select=["REP005"],
        )
        assert report.findings == []
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            from repro.workflow.faults import FaultInjector
            """,
            select=["REP005"],
        )
        assert report.findings == []

    def test_unknown_package_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/newpkg/example.py",
            """\
            X = 1
            """,
            select=["REP005"],
        )
        assert [f.symbol for f in report.findings] == ["unknown-package:newpkg"]

    def test_root_modules_may_import_anything(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/config.py",
            """\
            from repro.core.driver import ESSEDriver
            from repro.realtime.times import ExperimentTimeline
            """,
            select=["REP005"],
        )
        assert report.findings == []


class TestSuppressions:
    def test_inline_disable_suppresses_one_line(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            import numpy as np

            a = np.random.default_rng()  # repro-lint: disable=REP001
            b = np.random.default_rng()
            """,
            select=["REP001"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].line == 4
        assert report.n_suppressed == 1

    def test_disable_file_suppresses_everywhere(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/sched/example.py",
            """\
            # repro-lint: disable-file=REP001
            import numpy as np

            a = np.random.default_rng()
            b = np.random.default_rng()
            """,
            select=["REP001"],
        )
        assert report.findings == []
        assert report.n_suppressed == 2

    def test_disable_all_covers_every_rule(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time

            t = time.time()  # repro-lint: disable=all
            """,
            select=["REP002"],
        )
        assert report.findings == []
        assert report.n_suppressed == 1

    def test_disable_list_of_rules(self, tmp_path):
        report = lint(
            tmp_path,
            "src/repro/workflow/example.py",
            """\
            import time

            t = time.time()  # repro-lint: disable=REP001, REP002
            """,
            select=["REP002"],
        )
        assert report.findings == []
