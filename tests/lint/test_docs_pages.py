"""The docs/ page lint: README linkage and snippet compilation."""

import textwrap

from tools.check_docs import docs_pages, snippet_errors, unlinked_pages


class TestUnlinkedPages:
    def test_all_real_pages_linked_from_readme(self):
        """The repository invariant the CI gate enforces."""
        assert unlinked_pages() == []

    def test_orphan_detected(self):
        """A README that drops a link shows up as an orphan."""
        pages = docs_pages()
        assert pages  # the repo has architecture docs
        victim = pages[0].name
        readme = "\n".join(
            f"[{page.name}](docs/{page.name})"
            for page in pages
            if page.name != victim
        )
        assert unlinked_pages(readme) == [f"docs/{victim}"]

    def test_substring_link_counts(self):
        """Any mention of docs/<name> counts -- style of link is free."""
        readme = " ".join(f"see docs/{page.name}." for page in docs_pages())
        assert unlinked_pages(readme) == []


class TestSnippetErrors:
    def test_real_pages_compile(self):
        for page in docs_pages():
            assert snippet_errors(page) == [], page.name

    def test_broken_snippet_reported_with_line(self, tmp_path):
        page = tmp_path / "BROKEN.md"
        page.write_text(
            textwrap.dedent(
                """\
                # Broken

                ```python
                def f(:
                ```
                """
            )
        )
        errors = snippet_errors(page)
        assert len(errors) == 1
        assert "BROKEN.md:4" in errors[0]
        assert "does not compile" in errors[0]

    def test_non_python_fences_ignored(self, tmp_path):
        page = tmp_path / "SHELL.md"
        page.write_text("```bash\nthis is ) not python\n```\n")
        assert snippet_errors(page) == []

    def test_doctest_blocks_parsed_as_doctests(self, tmp_path):
        page = tmp_path / "DOCTEST.md"
        page.write_text(
            textwrap.dedent(
                """\
                ```python
                >>> x = 1
                >>> x + 1
                2
                ```
                """
            )
        )
        assert snippet_errors(page) == []

    def test_broken_doctest_reported(self, tmp_path):
        page = tmp_path / "DOCTEST.md"
        page.write_text("```python\n>>> def g(:\n...     pass\n```\n")
        errors = snippet_errors(page)
        assert len(errors) == 1
        assert "does not compile" in errors[0]
