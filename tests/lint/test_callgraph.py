"""Call-graph extraction/linking edge cases (tools/lint/callgraph.py).

Each test builds a tiny multi-file project IR and asserts the resolver
binds (or conservatively refuses to bind) the interesting call shapes:
aliased imports, package re-exports, decorated functions, closures,
``self.`` dispatch across inheritance, typed receivers and the
unresolvable fallback.
"""

import ast
import textwrap

from tools.lint.callgraph import CallGraph, FileIR, module_name_for_relpath
from tools.lint.summaries import extract_ir


def build(files: dict[str, str]) -> CallGraph:
    """Link a dict of ``relpath -> source`` into a CallGraph."""
    irs = {}
    for relpath, source in files.items():
        source = textwrap.dedent(source)
        irs[relpath] = extract_ir(ast.parse(source), source, relpath)
    return CallGraph(irs)


def edges_of(graph: CallGraph, key: str) -> list[str]:
    return graph.edges[key]


class TestModuleNaming:
    def test_src_prefix_stripped(self):
        assert module_name_for_relpath("src/repro/util/fsio.py") == "repro.util.fsio"

    def test_package_init_is_the_package(self):
        assert module_name_for_relpath("src/repro/sched/__init__.py") == "repro.sched"

    def test_out_of_tree_paths_get_path_names(self):
        assert module_name_for_relpath("tools/lint/core.py") == "tools.lint.core"


class TestAliasedImports:
    def test_from_import_as_binds_to_definition(self):
        graph = build(
            {
                "src/repro/util/helpers.py": """\
                    def fetch(path):
                        return path
                    """,
                "src/repro/app.py": """\
                    from repro.util.helpers import fetch as get

                    def run(p):
                        return get(p)
                    """,
            }
        )
        assert edges_of(graph, "repro.app:run") == ["repro.util.helpers:fetch"]

    def test_import_module_as_prefix(self):
        graph = build(
            {
                "src/repro/util/helpers.py": """\
                    def fetch(path):
                        return path
                    """,
                "src/repro/app.py": """\
                    import repro.util.helpers as h

                    def run(p):
                        return h.fetch(p)
                    """,
            }
        )
        assert edges_of(graph, "repro.app:run") == ["repro.util.helpers:fetch"]


class TestReExports:
    def test_package_init_reexport_chased(self):
        graph = build(
            {
                "src/repro/pkg/__init__.py": """\
                    from repro.pkg.impl import helper
                    """,
                "src/repro/pkg/impl.py": """\
                    def helper(x):
                        return x
                    """,
                "src/repro/app.py": """\
                    from repro.pkg import helper

                    def run(x):
                        return helper(x)
                    """,
            }
        )
        assert edges_of(graph, "repro.app:run") == ["repro.pkg.impl:helper"]

    def test_reexport_cycle_bounded(self):
        # a re-exports from b, b from a: resolution must terminate (None).
        graph = build(
            {
                "src/repro/a.py": "from repro.b import ghost\n",
                "src/repro/b.py": "from repro.a import ghost\n",
                "src/repro/app.py": """\
                    from repro.a import ghost

                    def run():
                        return ghost()
                    """,
            }
        )
        assert edges_of(graph, "repro.app:run") == []
        assert graph.unresolved["repro.app:run"] == 1


class TestDecoratedFunctions:
    def test_decorated_def_still_resolves_by_name(self):
        graph = build(
            {
                "src/repro/app.py": """\
                    import functools

                    def deco(fn):
                        return fn

                    @deco
                    @functools.lru_cache
                    def work(x):
                        return x

                    def run(x):
                        return work(x)
                    """,
            }
        )
        assert "repro.app:work" in edges_of(graph, "repro.app:run")


class TestClosures:
    def test_inner_def_wins_over_module_level(self):
        graph = build(
            {
                "src/repro/app.py": """\
                    def helper():
                        return "module"

                    def outer():
                        def helper():
                            return "inner"
                        return helper()
                    """,
            }
        )
        assert edges_of(graph, "repro.app:outer") == [
            "repro.app:outer.<locals>.helper"
        ]

    def test_enclosing_scope_def_found_from_nested(self):
        graph = build(
            {
                "src/repro/app.py": """\
                    def outer():
                        def a():
                            return 1
                        def b():
                            return a()
                        return b()
                    """,
            }
        )
        assert edges_of(graph, "repro.app:outer.<locals>.b") == [
            "repro.app:outer.<locals>.a"
        ]


class TestSelfDispatch:
    def test_self_call_binds_to_own_method(self):
        graph = build(
            {
                "src/repro/app.py": """\
                    class Service:
                        def handle(self):
                            return self._dispatch()

                        def _dispatch(self):
                            return 1
                    """,
            }
        )
        assert edges_of(graph, "repro.app:Service.handle") == [
            "repro.app:Service._dispatch"
        ]

    def test_self_call_resolves_through_inheritance(self):
        graph = build(
            {
                "src/repro/base.py": """\
                    class Base:
                        def shared(self):
                            return 1
                    """,
                "src/repro/app.py": """\
                    from repro.base import Base

                    class Child(Base):
                        def run(self):
                            return self.shared()
                    """,
            }
        )
        assert edges_of(graph, "repro.app:Child.run") == ["repro.base:Base.shared"]

    def test_override_shadows_base_method(self):
        graph = build(
            {
                "src/repro/app.py": """\
                    class Base:
                        def shared(self):
                            return 1

                    class Child(Base):
                        def shared(self):
                            return 2

                        def run(self):
                            return self.shared()
                    """,
            }
        )
        assert edges_of(graph, "repro.app:Child.run") == ["repro.app:Child.shared"]


class TestTypedReceivers:
    def test_attr_type_from_init_resolves_method(self):
        graph = build(
            {
                "src/repro/store.py": """\
                    class Reader:
                        def fetch(self, v):
                            return v
                    """,
                "src/repro/app.py": """\
                    from repro.store import Reader

                    class Service:
                        def __init__(self):
                            self.reader = Reader()

                        def get(self, v):
                            return self.reader.fetch(v)
                    """,
            }
        )
        assert "repro.store:Reader.fetch" in edges_of(graph, "repro.app:Service.get")

    def test_local_var_type_resolves_method(self):
        graph = build(
            {
                "src/repro/store.py": """\
                    class Store:
                        def publish(self, x):
                            return x
                    """,
                "src/repro/app.py": """\
                    from repro.store import Store

                    def run(x):
                        store = Store()
                        return store.publish(x)
                    """,
            }
        )
        assert "repro.store:Store.publish" in edges_of(graph, "repro.app:run")


class TestConstructors:
    def test_ctor_call_binds_to_init(self):
        graph = build(
            {
                "src/repro/app.py": """\
                    class Widget:
                        def __init__(self, n):
                            self.n = n

                    def make(n):
                        return Widget(n)
                    """,
            }
        )
        assert edges_of(graph, "repro.app:make") == ["repro.app:Widget.__init__"]


class TestUnresolvableFallback:
    def test_foreign_calls_count_as_unresolved(self):
        graph = build(
            {
                "src/repro/app.py": """\
                    import json

                    def run(cb, x):
                        json.dumps(x)
                        cb(x)
                        return x
                    """,
            }
        )
        assert edges_of(graph, "repro.app:run") == []
        assert graph.unresolved["repro.app:run"] == 2

    def test_untyped_receiver_is_unresolved_not_misbound(self):
        graph = build(
            {
                "src/repro/store.py": """\
                    class Store:
                        def publish(self, x):
                            return x
                    """,
                "src/repro/app.py": """\
                    def run(store, x):
                        return store.publish(x)
                    """,
            }
        )
        # `store` is a parameter with no known type: never guess by name.
        assert edges_of(graph, "repro.app:run") == []
        assert graph.unresolved["repro.app:run"] == 1


class TestSCCsAndSerialization:
    def test_sccs_bottom_up_order(self):
        graph = build(
            {
                "src/repro/app.py": """\
                    def leaf():
                        return 1

                    def a():
                        return b() + leaf()

                    def b():
                        return a()

                    def top():
                        return a()
                    """,
            }
        )
        sccs = graph.sccs_bottom_up()
        flat = {k: i for i, scc in enumerate(sccs) for k in scc}
        cycle = next(s for s in sccs if len(s) == 2)
        assert set(cycle) == {"repro.app:a", "repro.app:b"}
        assert flat["repro.app:leaf"] < flat["repro.app:a"]
        assert flat["repro.app:a"] < flat["repro.app:top"]

    def test_file_ir_round_trips_through_json_dict(self):
        import json

        source = textwrap.dedent(
            """\
            from repro.store import Store

            class Service:
                def __init__(self):
                    self.store = Store()

                def run(self, x):
                    return self.store.publish(x)
            """
        )
        ir = extract_ir(ast.parse(source), source, "src/repro/app.py")
        rebuilt = FileIR.from_dict(json.loads(json.dumps(ir.to_dict())))
        assert rebuilt.to_dict() == ir.to_dict()
        assert rebuilt.classes["Service"].attr_types == {"store": "repro.store.Store"}
