"""Interprocedural run behavior: lifted REP001, annotation precedence,
the summary cache, ``--jobs`` parity and the github renderer.

The rule-by-rule cross-function contrasts live in
``test_detection_power.py``; this file covers the machinery those
contrasts ride on.
"""

from tools.lint.core import Finding, all_rules, run_lint
from tools.lint.github import render_github

from tests.lint.test_rules import lint_files


class TestREP001TaintAcrossFunctions:
    FILES = {
        "src/repro/obs/noise.py": """\
            import numpy as np

            def perturb(field):
                return field + np.random.standard_normal(field.shape)
            """,
        "src/repro/obs/sampler.py": """\
            from repro.obs.noise import perturb

            def sample(field):
                return perturb(field)
            """,
    }

    def test_caller_of_tainted_helper_flagged(self, tmp_path):
        report = lint_files(tmp_path, self.FILES, select=["REP001"])
        by_path = {f.path.rsplit("/", 1)[-1] for f in report.findings}
        # The helper's own legacy-global call fires either way; the
        # caller-side taint finding is the interprocedural gain.
        assert by_path == {"noise.py", "sampler.py"}
        taint = [f for f in report.findings if f.path.endswith("sampler.py")]
        assert "perturb ->" in taint[0].message

    def test_caller_clean_without_summaries(self, tmp_path):
        report = lint_files(
            tmp_path, self.FILES, select=["REP001"], use_summaries=False
        )
        assert all(f.path.endswith("noise.py") for f in report.findings)


class TestBlockingAnnotationPrecedence:
    """The manual mark is now an *override*, not the only signal."""

    def test_annotation_convicts_uninferable_callee(self, tmp_path):
        # The callee's body is pure Python arithmetic -- inference sees
        # nothing blocking -- but the author knows better (say, it spins
        # on a C extension).  The annotation must still win.
        report = lint_files(
            tmp_path,
            {
                "src/repro/products/api.py": """\
                    def crunch(n):  # repro-lint: blocking -- spins in a C extension
                        return n * n

                    class Server:
                        async def handle(self, n):
                            return crunch(n)
                    """,
            },
            select=["REP010"],
        )
        assert [f.rule for f in report.findings] == ["REP010"]
        assert "annotated blocking" in report.findings[0].message

    def test_annotation_matching_still_works_without_summaries(self, tmp_path):
        # The pre-interprocedural fallback: cross-file name matching of
        # annotated functions, no call graph required.
        report = lint_files(
            tmp_path,
            {
                "src/repro/products/impl.py": """\
                    def crunch(n):  # repro-lint: blocking -- spins in a C extension
                        return n * n
                    """,
                "src/repro/products/api.py": """\
                    from repro.products.impl import crunch

                    class Server:
                        async def handle(self, n):
                            return crunch(n)
                    """,
            },
            select=["REP010"],
            use_summaries=False,
        )
        assert [f.rule for f in report.findings] == ["REP010"]


class TestSummaryCache:
    FILES = {
        "src/repro/util/io.py": """\
            def helper(path):
                return path
            """,
        "src/repro/products/api.py": """\
            from repro.util.io import helper

            class Server:
                async def handle(self, path):
                    return helper(path)
            """,
    }

    def test_warm_run_replays_from_cache(self, tmp_path):
        cache_dir = tmp_path / ".lintcache"
        cold = lint_files(
            tmp_path, self.FILES, select=["REP010"], cache_dir=cache_dir
        )
        assert cold.n_from_cache == 0
        warm = lint_files(
            tmp_path, self.FILES, select=["REP010"], cache_dir=cache_dir
        )
        assert warm.n_from_cache == warm.n_files
        assert warm.findings == cold.findings

    def test_dependency_change_invalidates_caller(self, tmp_path):
        cache_dir = tmp_path / ".lintcache"
        lint_files(tmp_path, self.FILES, select=["REP010"], cache_dir=cache_dir)
        # Make the helper blocking: api.py's bytes are unchanged but its
        # dependency signature is not -- the cached findings must NOT be
        # replayed for it.
        changed = dict(self.FILES)
        changed["src/repro/util/io.py"] = """\
            def helper(path):
                with open(path) as fh:
                    return fh.read()
            """
        warm = lint_files(
            tmp_path, changed, select=["REP010"], cache_dir=cache_dir
        )
        assert [f.rule for f in warm.findings] == ["REP010"]
        assert warm.findings[0].path.endswith("api.py")

    def test_unrelated_file_still_replays(self, tmp_path):
        cache_dir = tmp_path / ".lintcache"
        files = dict(self.FILES)
        files["src/repro/util/other.py"] = "def lonely():\n    return 1\n"
        lint_files(tmp_path, files, select=["REP010"], cache_dir=cache_dir)
        changed = dict(files)
        changed["src/repro/util/other.py"] = "def lonely():\n    return 2\n"
        warm = lint_files(
            tmp_path, changed, select=["REP010"], cache_dir=cache_dir
        )
        # Only the edited file left the cache; the untouched pair replays.
        assert warm.n_from_cache == warm.n_files - 1


class TestJobsParity:
    def test_parallel_findings_match_serial(self, tmp_path):
        files = {
            f"src/repro/mod{i}.py": f"""\
                import time

                def helper{i}():
                    time.sleep(1)

                async def handler{i}():
                    helper{i}()
                """
            for i in range(6)
        }
        serial = lint_files(tmp_path, files, select=["REP010"], jobs=1)
        parallel = lint_files(tmp_path, files, select=["REP010"], jobs=3)
        key = lambda f: (f.path, f.line, f.rule, f.message)
        assert sorted(map(key, parallel.findings)) == sorted(
            map(key, serial.findings)
        )
        assert len(serial.findings) == 6


class TestGithubRenderer:
    def test_annotation_line_shape(self):
        findings = [
            Finding(
                rule="REP010",
                path="src/repro/products/server.py",
                line=12,
                message="call to handle() blocks the event loop",
                symbol="Server.handle:blocking-call:handle",
            )
        ]
        (line,) = render_github(findings, all_rules())
        assert line.startswith(
            "::error file=src/repro/products/server.py,line=12,"
        )
        assert "title=REP010 async-discipline" in line
        assert line.endswith("::REP010 call to handle() blocks the event loop")

    def test_escaping_of_newlines_commas_and_colons(self):
        findings = [
            Finding(
                rule="REP013",
                path="src/repro/a,b.py",
                line=3,
                message="first line\nsecond: line, with commas",
                symbol="f:staged-publish",
            )
        ]
        (line,) = render_github(findings, all_rules())
        assert "file=src/repro/a%2Cb.py" in line
        assert line.endswith("::REP013 first line%0Asecond: line, with commas")
        assert "\n" not in line

    def test_cli_format_github(self, tmp_path, capsys):
        from tools.lint.cli import main

        target = tmp_path / "src" / "repro" / "x.py"
        target.parent.mkdir(parents=True)
        target.write_text("import numpy as np\n\nrng = np.random.default_rng()\n")
        code = main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--select",
                "REP001",
                "--format",
                "github",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("::error file=src/repro/x.py,line=3,")
