"""Unit tests for perturbation generation and the synthetic subspace."""

import numpy as np
import pytest

from repro.core.perturbation import (
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.core.state import FieldLayout, FieldSpec
from repro.core.subspace import ErrorSubspace
from repro.util.linalg import orthonormal_columns


@pytest.fixture()
def layout():
    return FieldLayout(
        [
            FieldSpec("eta", (8, 10), scale=2.0),
            FieldSpec("temp", (3, 8, 10), scale=0.5),
        ]
    )


@pytest.fixture()
def subspace(layout):
    return synthetic_initial_subspace(
        layout, shape2d=(8, 10), nz=3, rank=6, seed=0
    )


class TestSyntheticSubspace:
    def test_rank_and_orthonormality(self, subspace):
        assert subspace.rank == 6
        assert orthonormal_columns(subspace.modes)

    def test_sigmas_descending_positive(self, subspace):
        assert np.all(subspace.sigmas > 0)
        assert np.all(np.diff(subspace.sigmas) <= 1e-12)

    def test_deterministic_given_seed(self, layout):
        a = synthetic_initial_subspace(layout, (8, 10), 3, rank=4, seed=3)
        b = synthetic_initial_subspace(layout, (8, 10), 3, rank=4, seed=3)
        assert np.array_equal(a.modes, b.modes)

    def test_different_seed_differs(self, layout):
        a = synthetic_initial_subspace(layout, (8, 10), 3, rank=4, seed=3)
        b = synthetic_initial_subspace(layout, (8, 10), 3, rank=4, seed=4)
        assert not np.allclose(a.modes, b.modes)

    def test_validation(self, layout):
        with pytest.raises(ValueError, match="rank"):
            synthetic_initial_subspace(layout, (8, 10), 3, rank=0)
        with pytest.raises(ValueError, match="n_samples"):
            synthetic_initial_subspace(layout, (8, 10), 3, rank=10, n_samples=5)

    def test_amplitude_override_scales_modes(self, layout):
        small = synthetic_initial_subspace(
            layout, (8, 10), 3, rank=4, seed=0,
            field_amplitudes={"temp": 0.01, "eta": 0.01},
        )
        big = synthetic_initial_subspace(
            layout, (8, 10), 3, rank=4, seed=0,
            field_amplitudes={"temp": 1.0, "eta": 1.0},
        )
        assert big.total_variance > 10 * small.total_variance


class TestPerturbationGenerator:
    def test_reproducible_per_index(self, layout, subspace):
        gen = PerturbationGenerator(layout, subspace, root_seed=7)
        assert np.array_equal(gen.perturbation(3), gen.perturbation(3))

    def test_members_distinct(self, layout, subspace):
        gen = PerturbationGenerator(layout, subspace, root_seed=7)
        assert not np.allclose(gen.perturbation(0), gen.perturbation(1))

    def test_independent_of_generation_order(self, layout, subspace):
        gen1 = PerturbationGenerator(layout, subspace, root_seed=7)
        a_then_b = (gen1.perturbation(700), gen1.perturbation(900))
        gen2 = PerturbationGenerator(layout, subspace, root_seed=7)
        b_then_a = (gen2.perturbation(900), gen2.perturbation(700))
        # "perturbation 900 may very well finish before number 700" (paper)
        assert np.array_equal(a_then_b[0], b_then_a[1])
        assert np.array_equal(a_then_b[1], b_then_a[0])

    def test_member_state_adds_to_mean(self, layout, subspace):
        gen = PerturbationGenerator(layout, subspace, root_seed=7)
        mean = np.arange(layout.size, dtype=float)
        state = gen.member_state(mean, 2)
        assert np.allclose(state - mean, gen.perturbation(2))

    def test_zero_residual_stays_in_subspace(self, layout, subspace):
        gen = PerturbationGenerator(
            layout, subspace, root_seed=7, residual_fraction=0.0
        )
        p = layout.normalize(gen.perturbation(1))
        residual = p - subspace.modes @ (subspace.modes.T @ p)
        assert np.linalg.norm(residual) < 1e-10 * np.linalg.norm(p)

    def test_residual_adds_outside_subspace(self, layout, subspace):
        gen = PerturbationGenerator(
            layout, subspace, root_seed=7, residual_fraction=1.0
        )
        p = layout.normalize(gen.perturbation(1))
        residual = p - subspace.modes @ (subspace.modes.T @ p)
        assert np.linalg.norm(residual) > 0.01 * np.linalg.norm(p)

    def test_ensemble_statistics_match_subspace(self, layout, subspace):
        """The sample covariance of many perturbations ~ E S^2 E^T."""
        gen = PerturbationGenerator(
            layout, subspace, root_seed=11, residual_fraction=0.0
        )
        n = 600
        perts = np.stack(
            [layout.normalize(gen.perturbation(j)) for j in range(n)]
        )
        # project onto the subspace: coefficient variances should match
        coeffs = perts @ subspace.modes
        assert np.allclose(coeffs.std(axis=0), subspace.sigmas, rtol=0.2)

    def test_validation(self, layout, subspace):
        with pytest.raises(ValueError, match="residual_fraction"):
            PerturbationGenerator(layout, subspace, 0, residual_fraction=-1.0)
        small = ErrorSubspace(modes=np.zeros((4, 1)), sigmas=np.ones(1))
        with pytest.raises(ValueError, match="dimension"):
            PerturbationGenerator(layout, small, 0)
        gen = PerturbationGenerator(layout, subspace, 0)
        with pytest.raises(ValueError, match="mean shape"):
            gen.member_state(np.zeros(3), 0)
