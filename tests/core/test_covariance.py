"""Unit tests for the incremental anomaly accumulator."""

import numpy as np
import pytest

from repro.core.covariance import AnomalyAccumulator
from repro.core.state import FieldLayout, FieldSpec


@pytest.fixture()
def layout():
    return FieldLayout([FieldSpec("a", (6,), scale=2.0)])


@pytest.fixture()
def acc(layout):
    return AnomalyAccumulator(layout, central=np.zeros(6), capacity=2)


class TestAccumulation:
    def test_count_and_ids(self, acc):
        acc.add_member(5, np.ones(6))
        acc.add_member(2, 2 * np.ones(6))
        assert acc.count == 2
        assert acc.member_ids == (5, 2)  # arrival order, not index order
        assert acc.has_member(5) and not acc.has_member(7)

    def test_rejects_duplicate(self, acc):
        acc.add_member(1, np.ones(6))
        with pytest.raises(ValueError, match="already"):
            acc.add_member(1, np.ones(6))

    def test_rejects_wrong_shape(self, acc):
        with pytest.raises(ValueError, match="shape"):
            acc.add_member(0, np.ones(4))

    def test_rejects_nonfinite(self, acc):
        bad = np.ones(6)
        bad[2] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            acc.add_member(0, bad)

    def test_capacity_grows(self, layout):
        acc = AnomalyAccumulator(layout, np.zeros(6), capacity=1)
        for k in range(10):
            acc.add_member(k, float(k) * np.ones(6))
        assert acc.count == 10

    def test_rejects_bad_central(self, layout):
        with pytest.raises(ValueError, match="central"):
            AnomalyAccumulator(layout, np.zeros(3))
        with pytest.raises(ValueError, match="capacity"):
            AnomalyAccumulator(layout, np.zeros(6), capacity=0)


class TestMatrix:
    def test_normalized_and_scaled(self, acc, layout):
        acc.add_member(0, np.full(6, 4.0))  # anomaly 4 -> normalized 2
        acc.add_member(1, np.full(6, -4.0))
        m = acc.matrix()
        assert m.shape == (6, 2)
        assert np.allclose(m[:, 0], 2.0 / np.sqrt(1))  # / sqrt(N-1), N=2
        assert np.allclose(m[:, 1], -2.0)

    def test_matrix_requires_two(self, acc):
        acc.add_member(0, np.ones(6))
        with pytest.raises(RuntimeError, match=">= 2"):
            acc.matrix()

    def test_order_independent_covariance(self, layout):
        rng = np.random.default_rng(0)
        members = {k: rng.random(6) for k in range(5)}
        a = AnomalyAccumulator(layout, np.zeros(6))
        b = AnomalyAccumulator(layout, np.zeros(6))
        for k in range(5):
            a.add_member(k, members[k])
        for k in reversed(range(5)):
            b.add_member(k, members[k])
        ma, mb = a.matrix(), b.matrix()
        assert np.allclose(ma @ ma.T, mb @ mb.T)  # same covariance

    def test_sample_variance_field(self, layout):
        rng = np.random.default_rng(1)
        acc = AnomalyAccumulator(layout, np.zeros(6))
        data = rng.standard_normal((50, 6))
        for k, row in enumerate(data):
            acc.add_member(k, row)
        expected = np.var(data / 2.0, axis=0, ddof=1)  # scale 2 normalization
        # accumulator variance is around the central state (zero), not the
        # sample mean; correct for that
        expected_central = np.mean((data / 2.0) ** 2, axis=0) * 50 / 49
        assert np.allclose(acc.sample_variance_field(), expected_central)
        assert not np.allclose(acc.sample_variance_field(), np.zeros(6))

    def test_subspace_snapshot(self, layout):
        rng = np.random.default_rng(2)
        acc = AnomalyAccumulator(layout, np.zeros(6))
        for k in range(12):
            acc.add_member(k, rng.standard_normal(6))
        sub = acc.subspace(rank=3)
        assert sub.rank == 3
        assert sub.n_samples == 12
