"""Unit tests for ErrorSubspace."""

import numpy as np
import pytest

from repro.core.subspace import ErrorSubspace
from repro.util.linalg import orthonormal_columns


def random_subspace(n=50, p=5, seed=0, n_samples=20):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, p)))
    sigmas = np.sort(rng.random(p) + 0.1)[::-1]
    return ErrorSubspace(modes=q, sigmas=sigmas, n_samples=n_samples)


class TestConstruction:
    def test_basic(self):
        sub = random_subspace()
        assert sub.rank == 5
        assert sub.state_dim == 50
        assert sub.total_variance == pytest.approx(np.sum(sub.sigmas**2))

    def test_rejects_sigma_mismatch(self):
        with pytest.raises(ValueError, match="sigmas"):
            ErrorSubspace(modes=np.zeros((10, 3)), sigmas=np.zeros(2))

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError, match="non-negative"):
            ErrorSubspace(modes=np.zeros((10, 2)), sigmas=np.array([1.0, -0.1]))

    def test_rejects_unsorted_sigmas(self):
        with pytest.raises(ValueError, match="descending"):
            ErrorSubspace(modes=np.zeros((10, 2)), sigmas=np.array([0.1, 1.0]))

    def test_rejects_1d_modes(self):
        with pytest.raises(ValueError, match="2-D"):
            ErrorSubspace(modes=np.zeros(10), sigmas=np.array([1.0]))


class TestCovariance:
    def test_action_matches_dense(self):
        sub = random_subspace(n=30, p=4)
        dense = sub.modes @ np.diag(sub.variances) @ sub.modes.T
        rng = np.random.default_rng(3)
        v = rng.random(30)
        assert np.allclose(sub.covariance_action(v), dense @ v)

    def test_action_shape_check(self):
        sub = random_subspace()
        with pytest.raises(ValueError, match="vector"):
            sub.covariance_action(np.zeros(7))

    def test_variance_field_matches_dense_diagonal(self):
        sub = random_subspace(n=30, p=4)
        dense = sub.modes @ np.diag(sub.variances) @ sub.modes.T
        assert np.allclose(sub.variance_field(), np.diag(dense))

    def test_variance_field_nonnegative(self):
        sub = random_subspace(seed=5)
        assert np.all(sub.variance_field() >= -1e-15)


class TestSampling:
    def test_coefficient_statistics(self):
        sub = random_subspace(p=3, seed=1)
        rng = np.random.default_rng(0)
        coeffs = sub.sample_coefficients(20000, rng)
        assert coeffs.shape == (20000, 3)
        assert np.allclose(coeffs.std(axis=0), sub.sigmas, rtol=0.05)
        assert np.allclose(coeffs.mean(axis=0), 0.0, atol=0.05)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            random_subspace().sample_coefficients(-1, np.random.default_rng(0))


class TestTruncation:
    def test_by_rank(self):
        sub = random_subspace(p=5)
        t = sub.truncate(rank=2)
        assert t.rank == 2
        assert np.allclose(t.sigmas, sub.sigmas[:2])

    def test_by_energy(self):
        modes = np.eye(10)[:, :4]
        sub = ErrorSubspace(modes=modes, sigmas=np.array([10.0, 1.0, 0.1, 0.01]))
        t = sub.truncate(energy=0.99)
        assert t.rank == 1  # first mode has 100/101.0101 > 0.99 of variance

    def test_requires_argument(self):
        with pytest.raises(ValueError, match="rank= or energy="):
            random_subspace().truncate()

    def test_never_exceeds_rank(self):
        sub = random_subspace(p=3)
        assert sub.truncate(rank=10).rank == 3


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        sub = random_subspace(seed=9, n_samples=33)
        path = tmp_path / "subspace.npz"
        sub.save(path)
        back = ErrorSubspace.load(path)
        assert np.allclose(back.modes, sub.modes)
        assert np.allclose(back.sigmas, sub.sigmas)
        assert back.n_samples == 33


class TestFromAnomalies:
    def test_modes_orthonormal(self):
        rng = np.random.default_rng(2)
        anomalies = rng.standard_normal((40, 10)) / 3.0
        sub = ErrorSubspace.from_anomalies(anomalies)
        assert orthonormal_columns(sub.modes)
        assert sub.n_samples == 10

    def test_reconstructs_known_covariance(self):
        """Anomalies along one direction give a rank-1 subspace."""
        rng = np.random.default_rng(4)
        direction = np.zeros(20)
        direction[3] = 1.0
        coeffs = rng.standard_normal(2000) * 2.0
        anomalies = direction[:, None] * coeffs[None, :] / np.sqrt(1999)
        sub = ErrorSubspace.from_anomalies(anomalies, rank=1)
        assert abs(sub.modes[3, 0]) == pytest.approx(1.0)
        assert sub.sigmas[0] == pytest.approx(2.0, rel=0.05)

    def test_rejects_single_column(self):
        with pytest.raises(ValueError, match="at least 2"):
            ErrorSubspace.from_anomalies(np.zeros((10, 1)))

    def test_rank_cap(self):
        rng = np.random.default_rng(5)
        sub = ErrorSubspace.from_anomalies(rng.standard_normal((30, 12)), rank=4)
        assert sub.rank == 4
