"""Tests for the rectangular tile decomposition of the analysis grid."""

import numpy as np
import pytest
from numpy.testing import assert_allclose, assert_array_equal

from repro.core.state import FieldLayout, FieldSpec
from repro.core.tiling import Tile, TileDecomposition


class TestTile:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="invalid tile bounds"):
            Tile(index=0, j0=2, j1=2, i0=0, i1=4)
        with pytest.raises(ValueError, match="invalid tile bounds"):
            Tile(index=0, j0=-1, j1=2, i0=0, i1=4)
        with pytest.raises(ValueError, match="invalid tile bounds"):
            Tile(index=0, j0=0, j1=2, i0=4, i1=1)

    def test_n_cells(self):
        assert Tile(index=0, j0=1, j1=4, i0=2, i1=7).n_cells == 15

    def test_distance_zero_inside(self):
        tile = Tile(index=0, j0=2, j1=5, i0=3, i1=6)
        jj, ii = np.meshgrid(np.arange(2, 5), np.arange(3, 6), indexing="ij")
        assert_allclose(tile.distance_to(jj.ravel(), ii.ravel()), 0.0)

    def test_distance_axis_aligned_and_diagonal(self):
        tile = Tile(index=0, j0=2, j1=5, i0=3, i1=6)
        # Two rows above the top row of cells (j = 0 vs nearest cell j = 2).
        assert tile.distance_to(np.array([0.0]), np.array([4.0]))[0] == 2.0
        # Three columns right of the last cell column (i = 8 vs i1-1 = 5).
        assert tile.distance_to(np.array([3.0]), np.array([8.0]))[0] == 3.0
        # Diagonal corner: nearest cell is (2, 3), point is (0, 0).
        assert tile.distance_to(np.array([0.0]), np.array([0.0]))[
            0
        ] == pytest.approx(np.hypot(2.0, 3.0))


class TestTileDecomposition:
    def test_tile_count_with_ragged_edges(self):
        decomp = TileDecomposition((10, 8), (4, 4))
        assert decomp.n_tiles == 6
        # Edge tiles shrink to the grid boundary.
        last = decomp.tiles[-1]
        assert (last.j0, last.j1, last.i0, last.i1) == (8, 10, 4, 8)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="grid shape"):
            TileDecomposition((0, 8), (4, 4))
        with pytest.raises(ValueError, match="tile shape"):
            TileDecomposition((10, 8), (4, 0))

    def test_cell_tile_map_covers_grid(self):
        decomp = TileDecomposition((7, 5), (3, 2))
        cell_map = decomp.cell_tile_map()
        assert cell_map.shape == (7, 5)
        assert set(np.unique(cell_map)) == set(range(decomp.n_tiles))
        counts = np.bincount(cell_map.ravel(), minlength=decomp.n_tiles)
        assert_array_equal(counts, [t.n_cells for t in decomp.tiles])

    def test_distances_to_matches_per_tile(self):
        decomp = TileDecomposition((9, 7), (4, 3))
        rng = np.random.default_rng(0)
        jj = rng.uniform(-2, 11, 40)
        ii = rng.uniform(-2, 9, 40)
        stacked = decomp.distances_to(jj, ii)
        assert stacked.shape == (decomp.n_tiles, 40)
        for tile in decomp.tiles:
            assert_allclose(stacked[tile.index], tile.distance_to(jj, ii))

    def test_single_tile_owns_everything(self):
        decomp = TileDecomposition((6, 4), (100, 100))
        assert decomp.n_tiles == 1
        assert_array_equal(decomp.cell_tile_map(), 0)


class TestStateIndices:
    @pytest.fixture()
    def layout(self):
        return FieldLayout(
            [
                FieldSpec("ssh", (6, 4), scale=1.0),
                FieldSpec("temp", (3, 6, 4), scale=2.0),
            ]
        )

    def test_partition_is_disjoint_and_covering(self, layout):
        decomp = TileDecomposition((6, 4), (4, 3))
        indices = decomp.state_indices(layout)
        assert len(indices) == decomp.n_tiles
        combined = np.concatenate(indices)
        assert combined.size == layout.size
        assert_array_equal(np.sort(combined), np.arange(layout.size))
        for ix in indices:
            assert_array_equal(ix, np.sort(ix))

    def test_ownership_matches_cell_map_at_every_level(self, layout):
        decomp = TileDecomposition((6, 4), (4, 3))
        cell_map = decomp.cell_tile_map()
        owner = np.empty(layout.size, dtype=np.intp)
        for t, ix in enumerate(decomp.state_indices(layout)):
            owner[ix] = t
        # ssh is packed first, then temp's 3 levels; each level repeats
        # the horizontal cell -> tile map.
        expected = np.concatenate([cell_map.ravel()] * 4)
        assert_array_equal(owner, expected)

    def test_rejects_one_dimensional_field(self):
        layout = FieldLayout([FieldSpec("profile", (10,))])
        decomp = TileDecomposition((6, 4), (4, 3))
        with pytest.raises(ValueError, match="rank 1"):
            decomp.state_indices(layout)

    def test_rejects_mismatched_grid(self):
        layout = FieldLayout([FieldSpec("ssh", (5, 5))])
        decomp = TileDecomposition((6, 4), (4, 3))
        with pytest.raises(ValueError, match="grid shape"):
            decomp.state_indices(layout)
