"""Unit tests for FieldLayout packing and normalization."""

import numpy as np
import pytest

from repro.core.state import FieldLayout, FieldSpec


@pytest.fixture()
def layout():
    return FieldLayout(
        [
            FieldSpec("eta", (3, 4), scale=2.0),
            FieldSpec("temp", (2, 3, 4), scale=0.5),
        ]
    )


class TestFieldSpec:
    def test_size(self):
        assert FieldSpec("a", (3, 4)).size == 12

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            FieldSpec("", (3,))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            FieldSpec("a", (0, 3))

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            FieldSpec("a", (3,), scale=0.0)


class TestLayout:
    def test_size_and_names(self, layout):
        assert layout.size == 12 + 24
        assert layout.names == ("eta", "temp")

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            FieldLayout([FieldSpec("a", (2,)), FieldSpec("a", (3,))])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            FieldLayout([])

    def test_slice_of(self, layout):
        assert layout.slice_of("eta") == slice(0, 12)
        assert layout.slice_of("temp") == slice(12, 36)

    def test_slice_of_unknown(self, layout):
        with pytest.raises(KeyError, match="unknown"):
            layout.slice_of("nope")

    def test_spec_lookup(self, layout):
        assert layout.spec("temp").scale == 0.5
        with pytest.raises(KeyError):
            layout.spec("nope")


class TestPackUnpack:
    def test_round_trip(self, layout):
        rng = np.random.default_rng(0)
        fields = {"eta": rng.random((3, 4)), "temp": rng.random((2, 3, 4))}
        back = layout.unpack(layout.pack(fields))
        assert np.allclose(back["eta"], fields["eta"])
        assert np.allclose(back["temp"], fields["temp"])

    def test_missing_field(self, layout):
        with pytest.raises(KeyError, match="missing"):
            layout.pack({"eta": np.zeros((3, 4))})

    def test_extra_field(self, layout):
        with pytest.raises(KeyError, match="unexpected"):
            layout.pack(
                {
                    "eta": np.zeros((3, 4)),
                    "temp": np.zeros((2, 3, 4)),
                    "x": np.zeros(2),
                }
            )

    def test_shape_mismatch(self, layout):
        with pytest.raises(ValueError, match="expected shape"):
            layout.pack({"eta": np.zeros((4, 3)), "temp": np.zeros((2, 3, 4))})

    def test_unpack_wrong_size(self, layout):
        with pytest.raises(ValueError, match="shape"):
            layout.unpack(np.zeros(7))

    def test_view_is_view(self, layout):
        vec = np.zeros(layout.size)
        view = layout.view(vec, "temp")
        view[1, 2, 3] = 9.0
        assert vec[layout.slice_of("temp")].reshape(2, 3, 4)[1, 2, 3] == 9.0

    def test_unpack_copies(self, layout):
        vec = np.zeros(layout.size)
        out = layout.unpack(vec)
        out["eta"][0, 0] = 5.0
        assert vec[0] == 0.0


class TestNormalization:
    def test_vector_round_trip(self, layout):
        rng = np.random.default_rng(1)
        x = rng.random(layout.size)
        assert np.allclose(layout.denormalize(layout.normalize(x)), x)

    def test_scales_applied_per_field(self, layout):
        x = np.ones(layout.size)
        z = layout.normalize(x)
        assert np.allclose(z[layout.slice_of("eta")], 0.5)
        assert np.allclose(z[layout.slice_of("temp")], 2.0)

    def test_matrix_normalization(self, layout):
        m = np.ones((layout.size, 3))
        z = layout.normalize(m)
        assert z.shape == m.shape
        assert np.allclose(z[layout.slice_of("eta"), :], 0.5)

    def test_wrong_leading_dim(self, layout):
        with pytest.raises(ValueError, match="leading dimension"):
            layout.normalize(np.zeros(5))

    def test_scales_read_only(self, layout):
        with pytest.raises(ValueError):
            layout.scales[0] = 3.0
