"""Unit tests for the subspace similarity / convergence criterion."""

import numpy as np
import pytest

from repro.core.convergence import ConvergenceCriterion, similarity_coefficient
from repro.core.subspace import ErrorSubspace


def subspace_from(q, sigmas, n=0):
    return ErrorSubspace(modes=q, sigmas=np.asarray(sigmas, dtype=float), n_samples=n)


def orthonormal(n, p, seed):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, p)))
    return q


class TestSimilarity:
    def test_identical_subspaces_give_one(self):
        q = orthonormal(40, 5, 0)
        s = subspace_from(q, [5.0, 4.0, 3.0, 2.0, 1.0])
        assert similarity_coefficient(s, s) == pytest.approx(1.0)

    def test_orthogonal_subspaces_give_zero(self):
        q = orthonormal(40, 10, 1)
        a = subspace_from(q[:, :5], [1.0] * 5)
        b = subspace_from(q[:, 5:], [1.0] * 5)
        assert similarity_coefficient(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_bounded_in_unit_interval(self):
        for seed in range(5):
            a = subspace_from(orthonormal(30, 4, seed), [4.0, 3.0, 2.0, 1.0])
            b = subspace_from(orthonormal(30, 6, seed + 100), [3.0] * 6)
            rho = similarity_coefficient(a, b)
            assert 0.0 <= rho <= 1.0

    def test_symmetric(self):
        a = subspace_from(orthonormal(30, 4, 2), [4.0, 3.0, 2.0, 1.0])
        b = subspace_from(orthonormal(30, 5, 3), [5.0, 4.0, 3.0, 2.0, 1.0])
        assert similarity_coefficient(a, b) == pytest.approx(
            similarity_coefficient(b, a)
        )

    def test_spectrum_mismatch_lowers_rho(self):
        """Same span, different weighting -> rho < 1."""
        q = orthonormal(40, 2, 4)
        a = subspace_from(q, [10.0, 1.0])
        b = subspace_from(q, [10.0, 10.0])
        assert similarity_coefficient(a, b) < 0.999

    def test_different_sizes_compared(self):
        q = orthonormal(40, 6, 5)
        a = subspace_from(q[:, :4], [4.0, 3.0, 2.0, 1.0])
        b = subspace_from(q, [4.0, 3.0, 2.0, 1.0, 0.5, 0.25])
        rho = similarity_coefficient(a, b)
        assert 0.9 < rho <= 1.0  # small extra modes barely matter

    def test_rejects_dim_mismatch(self):
        a = subspace_from(orthonormal(30, 3, 6), [3.0, 2.0, 1.0])
        b = subspace_from(orthonormal(20, 3, 7), [3.0, 2.0, 1.0])
        with pytest.raises(ValueError, match="state spaces"):
            similarity_coefficient(a, b)

    def test_rejects_zero_variance(self):
        q = orthonormal(30, 2, 8)
        a = subspace_from(q, [0.0, 0.0])
        with pytest.raises(ValueError, match="zero-variance"):
            similarity_coefficient(a, a)


class TestCriterion:
    def test_validation(self):
        with pytest.raises(ValueError, match="tolerance"):
            ConvergenceCriterion(tolerance=0.0)
        with pytest.raises(ValueError, match="min_checks"):
            ConvergenceCriterion(min_checks=0)

    def test_first_update_returns_none(self):
        crit = ConvergenceCriterion()
        s = subspace_from(orthonormal(30, 3, 0), [3.0, 2.0, 1.0])
        assert crit.update(s) is None
        assert not crit.converged

    def test_converges_on_identical(self):
        crit = ConvergenceCriterion(tolerance=0.95)
        s = subspace_from(orthonormal(30, 3, 0), [3.0, 2.0, 1.0], n=10)
        crit.update(s)
        rho = crit.update(s)
        assert rho == pytest.approx(1.0)
        assert crit.converged

    def test_does_not_converge_on_disjoint(self):
        crit = ConvergenceCriterion(tolerance=0.95)
        q = orthonormal(40, 6, 1)
        crit.update(subspace_from(q[:, :3], [1.0] * 3))
        crit.update(subspace_from(q[:, 3:], [1.0] * 3))
        assert not crit.converged

    def test_min_checks_delays_convergence(self):
        crit = ConvergenceCriterion(tolerance=0.9, min_checks=2)
        s = subspace_from(orthonormal(30, 3, 2), [3.0, 2.0, 1.0])
        crit.update(s)
        crit.update(s)
        assert not crit.converged  # only one comparison so far
        crit.update(s)
        assert crit.converged

    def test_history_records_sample_counts(self):
        crit = ConvergenceCriterion()
        a = subspace_from(orthonormal(30, 3, 3), [3.0, 2.0, 1.0], n=8)
        b = subspace_from(orthonormal(30, 3, 3), [3.0, 2.0, 1.0], n=16)
        crit.update(a)
        crit.update(b)
        assert crit.history[0][0] == 16

    def test_reset(self):
        crit = ConvergenceCriterion()
        s = subspace_from(orthonormal(30, 3, 4), [3.0, 2.0, 1.0])
        crit.update(s)
        crit.update(s)
        crit.reset()
        assert crit.history == []
        assert crit.update(s) is None


class TestStatisticalConvergence:
    def test_rho_grows_with_ensemble_size(self):
        """Estimates from bigger samples of one covariance agree more."""
        rng = np.random.default_rng(0)
        n = 60
        true_modes = orthonormal(n, 3, 99)
        sig = np.array([3.0, 2.0, 1.0])

        def estimate(n_members, seed):
            r = np.random.default_rng(seed)
            coeffs = r.standard_normal((3, n_members)) * sig[:, None]
            anomalies = true_modes @ coeffs / np.sqrt(n_members - 1)
            anomalies += 0.05 * r.standard_normal((n, n_members))
            return ErrorSubspace.from_anomalies(anomalies, rank=3)

        rho_small = similarity_coefficient(estimate(10, 1), estimate(10, 2))
        rho_large = similarity_coefficient(estimate(400, 3), estimate(400, 4))
        assert rho_large > rho_small
        assert rho_large > 0.95
