"""Tests for the ensemble runner and the ESSE driver (fast, tiny grids)."""

import numpy as np
import pytest

from repro.core import (
    ESSEConfig,
    ESSEDriver,
    EnsembleRunner,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid


@pytest.fixture(scope="module")
def tiny_setup():
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        model.layout, grid.shape2d, grid.nz, rank=8, seed=0
    )
    return model, background, subspace


class TestEnsembleRunner:
    def _runner(self, model, subspace, duration=4 * 400.0):
        perturber = PerturbationGenerator(model.layout, subspace, root_seed=5)
        return EnsembleRunner(model, perturber, duration, root_seed=5)

    def test_central_forecast_advances_time(self, tiny_setup):
        model, background, subspace = tiny_setup
        runner = self._runner(model, subspace)
        central = runner.central_forecast(background)
        assert central.time > background.time

    def test_member_forecast_ok(self, tiny_setup):
        model, background, subspace = tiny_setup
        runner = self._runner(model, subspace)
        res = runner.run_member(background, 0)
        assert res.ok
        assert res.forecast.shape == (model.layout.size,)

    def test_members_distinct_from_central(self, tiny_setup):
        model, background, subspace = tiny_setup
        runner = self._runner(model, subspace)
        central = model.to_vector(runner.central_forecast(background))
        res = runner.run_member(background, 0)
        assert not np.allclose(res.forecast, central)

    def test_member_reproducible(self, tiny_setup):
        model, background, subspace = tiny_setup
        a = self._runner(model, subspace).run_member(background, 3)
        b = self._runner(model, subspace).run_member(background, 3)
        assert np.array_equal(a.forecast, b.forecast)

    def test_failure_captured_not_raised(self, tiny_setup):
        model, background, subspace = tiny_setup
        runner = self._runner(model, subspace)
        bad = background.copy()
        bad.u = model.grid.apply_mask(np.full(model.grid.shape2d, np.nan))
        res = runner.run_member(bad, 0)
        assert not res.ok
        assert "FloatingPointError" in res.error

    def test_run_members_batch(self, tiny_setup):
        model, background, subspace = tiny_setup
        runner = self._runner(model, subspace)
        results = runner.run_members(background, [0, 1, 2])
        assert [r.member_index for r in results] == [0, 1, 2]
        assert all(r.ok for r in results)

    def test_duration_validation(self, tiny_setup):
        model, _, subspace = tiny_setup
        perturber = PerturbationGenerator(model.layout, subspace, root_seed=5)
        with pytest.raises(ValueError, match="duration"):
            EnsembleRunner(model, perturber, 0.0, root_seed=5)


class TestESSEConfig:
    def test_stage_sizes_geometric(self):
        cfg = ESSEConfig(initial_ensemble_size=10, growth_factor=2.0, max_ensemble_size=50)
        assert cfg.stage_sizes() == [10, 20, 40, 50]

    def test_single_stage_when_initial_is_max(self):
        cfg = ESSEConfig(initial_ensemble_size=16, max_ensemble_size=16)
        assert cfg.stage_sizes() == [16]

    def test_validation(self):
        with pytest.raises(ValueError):
            ESSEConfig(initial_ensemble_size=1)
        with pytest.raises(ValueError):
            ESSEConfig(growth_factor=1.0)
        with pytest.raises(ValueError):
            ESSEConfig(initial_ensemble_size=20, max_ensemble_size=10)
        with pytest.raises(ValueError):
            ESSEConfig(max_subspace_rank=0)


class TestDriver:
    def test_forecast_produces_subspace(self, tiny_setup):
        model, background, subspace = tiny_setup
        driver = ESSEDriver(
            model,
            ESSEConfig(
                initial_ensemble_size=4,
                max_ensemble_size=8,
                convergence_tolerance=0.5,
                max_subspace_rank=6,
            ),
            root_seed=1,
        )
        fc = driver.forecast(background, subspace, duration=4 * 400.0)
        assert fc.ensemble_size >= 4
        assert fc.subspace.rank <= 6
        assert fc.member_forecasts.shape[0] == fc.ensemble_size
        assert fc.wall_seconds > 0

    def test_convergence_stops_growth(self, tiny_setup):
        """A loose tolerance converges at the first comparison (N=8)."""
        model, background, subspace = tiny_setup
        driver = ESSEDriver(
            model,
            ESSEConfig(
                initial_ensemble_size=4,
                max_ensemble_size=64,
                convergence_tolerance=0.05,
            ),
            root_seed=1,
        )
        fc = driver.forecast(background, subspace, duration=2 * 400.0)
        assert fc.converged
        assert fc.ensemble_size == 8  # stopped after the second stage

    def test_deadline_stops_growth(self, tiny_setup):
        model, background, subspace = tiny_setup
        driver = ESSEDriver(
            model,
            ESSEConfig(
                initial_ensemble_size=4,
                max_ensemble_size=512,
                convergence_tolerance=1.0,
                deadline_seconds=0.0,  # expire immediately after stage 1
            ),
            root_seed=1,
        )
        fc = driver.forecast(background, subspace, duration=2 * 400.0)
        assert not fc.converged
        assert fc.ensemble_size <= 8

    def test_history_grows_with_stages(self, tiny_setup):
        model, background, subspace = tiny_setup
        driver = ESSEDriver(
            model,
            ESSEConfig(
                initial_ensemble_size=4,
                max_ensemble_size=16,
                convergence_tolerance=1.0,  # never converge
            ),
            root_seed=1,
        )
        fc = driver.forecast(background, subspace, duration=2 * 400.0)
        assert len(fc.convergence_history) == 2  # (8 vs 4), (16 vs 8)
        assert fc.ensemble_size == 16
