"""Tests for the warm-started incremental SVD path.

The documented accuracy contract (``docs/COVFILE_PROTOCOL.md``): on
decaying spectra the incremental estimator's retained singular values
agree with an exact ``thin_svd`` recompute to a relative 1e-6, and the
retained subspaces align to principal angles below 1e-4 -- across a full
staged enlargement N -> N2 -> ... -> Nmax.  The guard (``guard_tol``,
ratio of discarded to retained energy since the last exact
factorization) is a drift backstop, tested separately with a flat
spectrum where truncation sheds real energy fast.
"""

import numpy as np
import pytest

from repro.core import ESSEConfig
from repro.core.subspace import ErrorSubspace, IncrementalSubspaceEstimator
from repro.util.linalg import (
    orthonormal_columns,
    randomized_svd,
    subspace_principal_angles,
    svd_rank_update,
    thin_svd,
    truncated_svd,
    warm_randomized_svd,
)

SIGMA_RTOL = 1e-6  # documented singular-value agreement
ANGLE_TOL = 1e-4  # documented subspace alignment (radians)


def esse_like_columns(n, count, signal_rank=6, noise=1e-9, seed=0):
    """Columns with a decaying dominant subspace plus a tiny noise floor,
    the spectrum shape the ESSE anomaly stream produces."""
    rng = np.random.default_rng(seed)
    basis, _ = np.linalg.qr(rng.standard_normal((n, signal_rank)))
    weights = np.geomspace(1.0, 1e-3, signal_rank)
    coeffs = rng.standard_normal((signal_rank, count)) * weights[:, None]
    return basis @ coeffs + noise * rng.standard_normal((n, count))


class TestSvdRankUpdate:
    def test_exact_on_full_rank_factorization(self):
        a = esse_like_columns(40, 6, seed=1)
        c = esse_like_columns(40, 3, seed=2)
        u, s, _ = thin_svd(a)
        u2, s2 = svd_rank_update(u, s, c)
        u_ref, s_ref, _ = thin_svd(np.hstack([a, c]))
        assert np.allclose(s2, s_ref, rtol=1e-10, atol=1e-12)
        assert orthonormal_columns(u2)
        k = 6  # compare the well-conditioned dominant block
        # arccos resolves angles only to ~sqrt(eps) near zero
        angles = subspace_principal_angles(u2[:, :k], u_ref[:, :k])
        assert np.max(angles) < 1e-6

    def test_single_vector_update(self):
        a = esse_like_columns(30, 4, seed=3)
        u, s, _ = thin_svd(a)
        u2, s2 = svd_rank_update(u, s, np.ones(30))
        u_ref, s_ref, _ = thin_svd(np.hstack([a, np.ones((30, 1))]))
        assert np.allclose(s2, s_ref, rtol=1e-10, atol=1e-12)

    def test_rank_truncation(self):
        a = esse_like_columns(30, 8, seed=4)
        u, s, _ = thin_svd(a)
        u2, s2 = svd_rank_update(u, s, esse_like_columns(30, 2, seed=5), rank=5)
        assert u2.shape == (30, 5)
        assert s2.shape == (5,)

    def test_truncated_carry_error_bounded_by_discard(self):
        """With a truncated U, the update error stays at the discarded level."""
        a = esse_like_columns(50, 12, noise=1e-8, seed=6)
        u, s, _ = thin_svd(a)
        keep = 8
        u2, s2 = svd_rank_update(
            u[:, :keep], s[:keep], esse_like_columns(50, 3, noise=1e-8, seed=7)
        )
        s_ref = thin_svd(np.hstack([a, esse_like_columns(50, 3, noise=1e-8, seed=7)]))[1]
        discarded = np.sqrt(np.sum(s[keep:] ** 2))
        assert np.all(np.abs(s2[:keep] - s_ref[:keep]) <= 10 * discarded + 1e-12)

    def test_shape_validation(self):
        u, s, _ = thin_svd(np.ones((4, 2)))
        with pytest.raises(ValueError, match="incompatible"):
            svd_rank_update(u, s, np.ones((5, 1)))
        with pytest.raises(ValueError, match="does not match"):
            svd_rank_update(u, np.ones(3), np.ones((4, 1)))


class TestWarmRandomizedSvd:
    def test_recovers_low_rank_matrix(self):
        a = esse_like_columns(80, 30, noise=0.0, seed=8)
        basis = thin_svd(a[:, :10])[0][:, :6]  # previous checkpoint's modes
        u, s, _ = warm_randomized_svd(a, rank=6, basis=basis)
        s_ref = thin_svd(a)[1]
        assert np.allclose(s, s_ref[:6], rtol=1e-8)
        assert orthonormal_columns(u)

    def test_none_basis_falls_back_to_cold_sketch(self):
        a = esse_like_columns(40, 12, seed=9)
        u_cold, s_cold, _ = randomized_svd(a, rank=4)
        u_warm, s_warm, _ = warm_randomized_svd(a, rank=4, basis=None)
        # different default keyed streams, but both deterministic and accurate
        assert np.allclose(s_warm, thin_svd(a)[1][:4], rtol=1e-6)
        assert np.allclose(s_cold, thin_svd(a)[1][:4], rtol=1e-6)

    def test_validation(self):
        a = np.ones((6, 3))
        with pytest.raises(ValueError, match="incompatible"):
            warm_randomized_svd(a, rank=2, basis=np.ones((5, 2)))
        with pytest.raises(ValueError, match="rank"):
            warm_randomized_svd(a, rank=0, basis=np.ones((6, 2)))


class TestIncrementalSubspaceEstimator:
    def test_staged_enlargement_matches_thin_svd(self):
        """The documented equivalence: every checkpoint of a staged
        enlargement agrees with an exact recompute to SIGMA_RTOL/ANGLE_TOL."""
        n, stages = 200, [8, 16, 32, 64]
        columns = esse_like_columns(n, stages[-1], seed=10)
        est = IncrementalSubspaceEstimator(rank=6, rank_buffer=16)
        for count in stages:
            scale = 1.0 / np.sqrt(count - 1)
            sub = est.update(columns[:, :count], scale=scale)
            u_ref, s_ref, _ = truncated_svd(columns[:, :count] * scale, rank=6)
            assert sub.n_samples == count
            assert np.allclose(sub.sigmas, s_ref, rtol=SIGMA_RTOL)
            angles = subspace_principal_angles(sub.modes, u_ref)
            assert np.max(angles) < ANGLE_TOL
        assert est.last_path in ("update", "warm")  # warm path actually used

    def test_first_update_is_exact(self):
        est = IncrementalSubspaceEstimator(rank=4)
        est.update(esse_like_columns(30, 8, seed=11))
        assert est.last_path == "exact"

    def test_large_batch_takes_warm_sketch_path(self):
        est = IncrementalSubspaceEstimator(
            rank=4, rank_buffer=2, warm_batch_factor=0.5
        )
        columns = esse_like_columns(60, 40, seed=12)
        est.update(columns[:, :8])
        sub = est.update(columns)
        assert est.last_path == "warm"
        s_ref = truncated_svd(columns, rank=4)[1]
        assert np.allclose(sub.sigmas, s_ref, rtol=1e-5)

    def test_noise_floor_does_not_trip_default_guard(self):
        """A stationary noise floor is unavoidable truncation, not drift.

        The guard meters energy shed *since the last exact
        factorization* against the energy retained; an earlier draft
        compared cumulative discard against total stream energy with a
        1e-9 tolerance, which tripped on any realistic spectrum and
        silently degenerated every checkpoint into an exact recompute.
        """
        rng = np.random.default_rng(7)
        n, count = 400, 96
        basis, _ = np.linalg.qr(rng.standard_normal((n, 12)))
        sig = np.geomspace(5.0, 0.3, 12)
        cols = (basis * sig) @ rng.standard_normal((12, count))
        cols += 0.25 * rng.standard_normal((n, count))  # genuine floor
        est = IncrementalSubspaceEstimator(rank=6, rank_buffer=8)
        paths = []
        for k in range(16, count + 1, 16):
            est.update(cols, count=k)
            paths.append(est.last_path)
        assert paths[0] == "exact"
        assert all(p in ("update", "warm") for p in paths[1:])

    def test_guard_trips_to_exact_recompute(self):
        """Once truncation has discarded more than guard_tol times the
        retained energy, the next update recomputes from scratch."""
        est = IncrementalSubspaceEstimator(rank=2, rank_buffer=0, guard_tol=1e-12)
        rng = np.random.default_rng(13)
        full = rng.standard_normal((20, 12))  # flat spectrum: heavy discard
        est.update(full[:, :4])
        est.update(full[:, :8])  # rank update discards real energy
        sub = est.update(full)
        assert est.last_path == "guard"
        s_ref = truncated_svd(full, rank=2)[1]
        assert np.allclose(sub.sigmas, s_ref, rtol=1e-10)

    def test_shrinking_stream_restarts(self):
        est = IncrementalSubspaceEstimator(rank=4)
        columns = esse_like_columns(30, 10, seed=14)
        est.update(columns)
        est.update(columns[:, :4])
        assert est.last_path == "exact"

    def test_count_limits_valid_columns(self):
        columns = esse_like_columns(30, 10, seed=15)
        a = IncrementalSubspaceEstimator(rank=4).update(columns, count=6)
        b = IncrementalSubspaceEstimator(rank=4).update(columns[:, :6])
        assert np.allclose(a.sigmas, b.sigmas)
        assert a.n_samples == 6

    def test_scale_applies_to_sigmas_only(self):
        columns = esse_like_columns(30, 8, seed=16)
        a = IncrementalSubspaceEstimator(rank=4).update(columns, scale=1.0)
        b = IncrementalSubspaceEstimator(rank=4).update(columns, scale=0.5)
        assert np.allclose(b.sigmas, 0.5 * a.sigmas)
        assert np.allclose(np.abs(np.sum(a.modes * b.modes, axis=0)), 1.0)

    def test_energy_cut_matches_truncated_svd(self):
        columns = esse_like_columns(40, 12, seed=17)
        sub = IncrementalSubspaceEstimator(energy=0.9).update(columns)
        u_ref, s_ref, _ = truncated_svd(columns, energy=0.9)
        assert sub.rank == s_ref.size
        assert np.allclose(sub.sigmas, s_ref, rtol=SIGMA_RTOL)

    def test_reset_forgets_carry(self):
        est = IncrementalSubspaceEstimator(rank=4)
        est.update(esse_like_columns(30, 8, seed=18))
        est.reset()
        assert est.last_path is None
        est.update(esse_like_columns(30, 8, seed=18))
        assert est.last_path == "exact"

    def test_returns_error_subspace(self):
        sub = IncrementalSubspaceEstimator(rank=3).update(
            esse_like_columns(30, 8, seed=19)
        )
        assert isinstance(sub, ErrorSubspace)
        assert sub.rank <= 3
        assert orthonormal_columns(sub.modes)

    def test_validation(self):
        with pytest.raises(ValueError, match="rank"):
            IncrementalSubspaceEstimator(rank=0)
        with pytest.raises(ValueError, match="guard_tol"):
            IncrementalSubspaceEstimator(guard_tol=-0.1)
        est = IncrementalSubspaceEstimator()
        with pytest.raises(ValueError, match="2-D"):
            est.update(np.ones(5))
        with pytest.raises(ValueError, match="count"):
            est.update(np.ones((5, 4)), count=9)


class TestConfigWiring:
    def test_config_builds_estimator(self):
        est = ESSEConfig().subspace_estimator()
        assert isinstance(est, IncrementalSubspaceEstimator)
        assert est.rank == ESSEConfig().max_subspace_rank

    def test_warm_start_off_disables_estimator(self):
        assert ESSEConfig(svd_warm_start=False).subspace_estimator() is None

    def test_randomized_method_keeps_cold_sketch_path(self):
        assert ESSEConfig(svd_method="randomized").subspace_estimator() is None

    def test_config_validation(self):
        with pytest.raises(ValueError, match="svd_rank_buffer"):
            ESSEConfig(svd_rank_buffer=-1)
        with pytest.raises(ValueError, match="svd_guard_tol"):
            ESSEConfig(svd_guard_tol=-1.0)
