"""Tests for the localized, tiled ESSE analysis engine.

Covers the three core contracts of ``TiledESSEAnalysis``:

- equivalence: one tile, no taper, unit inflation reproduces the global
  :class:`ESSEAnalysis` update (mean, sigmas, variance field),
- contraction: with unit inflation the stitched posterior pointwise
  variance never exceeds the prior, for any tiling/taper combination,
- degradation: tiles whose tasks fail terminally keep their prior and
  the analysis raises :class:`DegradedEnsembleWarning`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from numpy.testing import assert_allclose

from repro.core.assimilation import (
    ESSEAnalysis,
    TiledESSEAnalysis,
    run_tiles_serial,
)
from repro.core.localization import (
    AdaptiveInflation,
    CutoffTaper,
    GaspariCohnTaper,
)
from repro.core.state import FieldLayout, FieldSpec
from repro.core.subspace import ErrorSubspace
from repro.core.taskmodel import DegradedEnsembleWarning
from repro.obs.operators import Observation, ObservationOperator
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import TraceRecorder

GRID = (8, 6)


@pytest.fixture()
def layout():
    # A 2-D field and a 2-level 3-D field on the same horizontal grid,
    # with distinct scales so normalization is exercised.
    return FieldLayout(
        [
            FieldSpec("ssh", (*GRID,), scale=0.5),
            FieldSpec("temp", (2, *GRID), scale=2.0),
        ]
    )


def make_subspace(layout, p=6, seed=0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((layout.size, p)))
    sigmas = np.linspace(1.0, 0.3, p)
    return ErrorSubspace(modes=q, sigmas=sigmas, n_samples=40)


def make_operator(layout, seed=0, n_obs=12, noise_std=0.2):
    rng = np.random.default_rng(seed)
    ny, nx = GRID
    observations = []
    for _ in range(n_obs):
        field = rng.choice(["ssh", "temp"])
        level = 0 if field == "ssh" else int(rng.integers(0, 2))
        observations.append(
            Observation(
                field=str(field),
                level=level,
                j=int(rng.integers(0, ny)),
                i=int(rng.integers(0, nx)),
                value=float(rng.normal(0.0, 1.0)),
                noise_std=noise_std,
            )
        )
    return ObservationOperator(layout, observations)


def variance_field(layout, subspace):
    """Physical pointwise variance of the subspace covariance."""
    return layout.denormalize(layout.denormalize(subspace.variance_field()))


class TestValidation:
    def test_rejects_bad_energy_floor(self, layout):
        with pytest.raises(ValueError, match="local_energy_floor"):
            TiledESSEAnalysis(layout, GRID, local_energy_floor=1.0)

    def test_rejects_negative_halo(self, layout):
        with pytest.raises(ValueError, match="halo"):
            TiledESSEAnalysis(layout, GRID, halo=-1.0)

    def test_rejects_bad_mean_shape(self, layout):
        engine = TiledESSEAnalysis(layout, GRID)
        with pytest.raises(ValueError, match="forecast mean shape"):
            engine.update(
                np.zeros(3), make_subspace(layout), make_operator(layout)
            )

    def test_rejects_nongridded_layout(self):
        bad = FieldLayout([FieldSpec("profile", (7,))])
        with pytest.raises(ValueError, match="rank 1"):
            TiledESSEAnalysis(bad, GRID)

    def test_runner_length_mismatch_is_an_error(self, layout):
        engine = TiledESSEAnalysis(
            layout, GRID, tile_shape=(4, 3), task_runner=lambda tasks: []
        )
        with pytest.raises(RuntimeError, match="task runner returned"):
            engine.update(
                np.zeros(layout.size), make_subspace(layout), make_operator(layout)
            )


class TestGlobalEquivalence:
    def test_single_tile_no_taper_matches_global(self, layout):
        subspace = make_subspace(layout)
        operator = make_operator(layout)
        mean = np.random.default_rng(3).normal(0.0, 1.0, layout.size)

        global_result = ESSEAnalysis(layout).update(mean, subspace, operator)
        tiled_result = TiledESSEAnalysis(
            layout, GRID, tile_shape=(64, 64)
        ).update(mean, subspace, operator)

        assert_allclose(tiled_result.mean, global_result.mean, rtol=1e-10)
        assert_allclose(
            tiled_result.subspace.sigmas,
            global_result.subspace.sigmas,
            rtol=1e-8,
        )
        # Modes may differ by rotation/sign; the covariance diagonal is
        # the rotation-invariant comparison.
        assert_allclose(
            variance_field(layout, tiled_result.subspace),
            variance_field(layout, global_result.subspace),
            rtol=1e-8,
            atol=1e-12,
        )

    def test_many_tiles_no_taper_same_mean_space(self, layout):
        # Without localization each tile sees every observation, so the
        # tiled mean must still match the global analysis mean exactly
        # (the mean path does not depend on the stitching).
        subspace = make_subspace(layout, seed=5)
        operator = make_operator(layout, seed=5)
        mean = np.zeros(layout.size)
        global_result = ESSEAnalysis(layout).update(mean, subspace, operator)
        tiled_result = TiledESSEAnalysis(
            layout, GRID, tile_shape=(3, 2)
        ).update(mean, subspace, operator)
        assert_allclose(tiled_result.mean, global_result.mean, rtol=1e-10)


class TestVarianceContraction:
    @pytest.mark.parametrize(
        "taper,tile_shape",
        [
            (None, (4, 3)),
            (GaspariCohnTaper(radius=5.0), (4, 3)),
            (CutoffTaper(radius=4.0), (2, 2)),
        ],
    )
    def test_pointwise_variance_never_grows(self, layout, taper, tile_shape):
        subspace = make_subspace(layout, seed=7)
        operator = make_operator(layout, seed=7, n_obs=16)
        prior_var = variance_field(layout, subspace)
        result = TiledESSEAnalysis(
            layout, GRID, tile_shape=tile_shape, taper=taper
        ).update(np.zeros(layout.size), subspace, operator)
        post_var = variance_field(layout, result.subspace)
        assert np.all(post_var <= prior_var * (1.0 + 1e-9) + 1e-12)

    def test_posterior_modes_orthonormal(self, layout):
        subspace = make_subspace(layout, seed=2)
        result = TiledESSEAnalysis(
            layout, GRID, tile_shape=(4, 3), taper=GaspariCohnTaper(6.0)
        ).update(np.zeros(layout.size), subspace, make_operator(layout, seed=2))
        modes = result.subspace.modes
        assert_allclose(modes.T @ modes, np.eye(modes.shape[1]), atol=1e-9)
        assert np.all(np.diff(result.subspace.sigmas) <= 1e-12)

    def test_energy_floor_truncates_but_stays_contracted(self, layout):
        subspace = make_subspace(layout, seed=9)
        operator = make_operator(layout, seed=9)
        prior_var = variance_field(layout, subspace)
        result = TiledESSEAnalysis(
            layout,
            GRID,
            tile_shape=(2, 2),
            taper=GaspariCohnTaper(4.0),
            local_energy_floor=0.05,
        ).update(np.zeros(layout.size), subspace, operator)
        post_var = variance_field(layout, result.subspace)
        assert np.all(post_var <= prior_var * (1.0 + 1e-9) + 1e-12)

    def test_adaptive_inflation_may_exceed_prior(self, layout):
        # Documented caveat: the contraction bound is relative to the
        # *inflated* prior; adaptive inflation can raise posterior
        # variance above the uninflated prior by design.
        subspace = make_subspace(layout, seed=11)
        subspace = ErrorSubspace(
            modes=subspace.modes,
            sigmas=subspace.sigmas * 0.05,  # overconfident prior
            n_samples=subspace.n_samples,
        )
        operator = make_operator(layout, seed=11, n_obs=20)
        result = TiledESSEAnalysis(
            layout,
            GRID,
            tile_shape=(4, 3),
            inflation=AdaptiveInflation(min_factor=1.0, max_factor=2.0),
        ).update(np.zeros(layout.size), subspace, operator)
        prior_var = variance_field(layout, subspace)
        post_var = variance_field(layout, result.subspace)
        assert np.any(post_var > prior_var)


class TestLocalization:
    def test_far_tiles_skipped_and_unchanged(self, layout):
        # All observations in the top-left corner with a tight cutoff:
        # the far corner tile selects nothing, keeps its prior mean, and
        # is counted as skipped.
        observations = [
            Observation(
                field="ssh", level=0, j=0, i=0, value=5.0, noise_std=0.1
            ),
            Observation(
                field="ssh", level=0, j=1, i=1, value=5.0, noise_std=0.1
            ),
        ]
        operator = ObservationOperator(layout, observations)
        subspace = make_subspace(layout, seed=4)
        metrics = MetricsRegistry()
        engine = TiledESSEAnalysis(
            layout,
            GRID,
            tile_shape=(4, 3),
            taper=CutoffTaper(radius=2.0),
            metrics=metrics,
        )
        mean = np.ones(layout.size)
        result = engine.update(mean, subspace, operator)
        far = engine.decomposition.tiles[-1]
        assert far.distance_to(np.array([0.0]), np.array([0.0]))[0] > 2.0
        owned = engine._tile_indices[far.index]
        assert_allclose(result.mean[owned], mean[owned])
        assert metrics.counter("analysis.tiles_skipped", kind="tile").value >= 1

    def test_telemetry_span_records_tiling(self, layout):
        recorder = TraceRecorder()
        engine = TiledESSEAnalysis(
            layout, GRID, tile_shape=(4, 3), telemetry=recorder
        )
        engine.update(
            np.zeros(layout.size), make_subspace(layout), make_operator(layout)
        )
        spans = [s for s in recorder.spans() if s.name == "analysis.tiled"]
        assert len(spans) == 1
        attrs = dict(spans[0].attrs)
        assert attrs["tiles"] == engine.decomposition.n_tiles
        assert attrs["updated"] + attrs["skipped"] == engine.decomposition.n_tiles
        assert attrs["degraded"] == 0


class TestDegradation:
    def test_all_tiles_failed_keeps_prior(self, layout):
        subspace = make_subspace(layout, seed=6)
        operator = make_operator(layout, seed=6)
        mean = np.random.default_rng(6).normal(0.0, 1.0, layout.size)
        engine = TiledESSEAnalysis(
            layout,
            GRID,
            tile_shape=(4, 3),
            task_runner=lambda tasks: [None] * len(tasks),
        )
        with pytest.warns(DegradedEnsembleWarning, match="kept their prior"):
            result = engine.update(mean, subspace, operator)
        assert_allclose(result.mean, mean)
        assert_allclose(result.subspace.sigmas, subspace.sigmas, rtol=1e-10)
        assert_allclose(
            variance_field(layout, result.subspace),
            variance_field(layout, subspace),
            rtol=1e-9,
            atol=1e-13,
        )

    def test_partial_failure_updates_surviving_tiles_only(self, layout):
        subspace = make_subspace(layout, seed=8)
        operator = make_operator(layout, seed=8, n_obs=20)
        mean = np.zeros(layout.size)

        def drop_first(tasks):
            results = run_tiles_serial(tasks)
            results[0] = None
            return results

        metrics = MetricsRegistry()
        engine = TiledESSEAnalysis(
            layout,
            GRID,
            tile_shape=(4, 3),
            task_runner=drop_first,
            metrics=metrics,
        )
        with pytest.warns(DegradedEnsembleWarning, match="1 tile"):
            result = engine.update(mean, subspace, operator)
        # The degraded tile keeps its prior mean; with no taper every
        # tile has observations, so the first task is tile 0.
        owned = engine._tile_indices[0]
        assert_allclose(result.mean[owned], mean[owned])
        others = np.setdiff1d(np.arange(layout.size), owned)
        assert np.any(result.mean[others] != 0.0)
        assert metrics.counter("analysis.tiles_degraded", kind="tile").value == 1
        assert (
            metrics.counter("analysis.tiles_updated", kind="tile").value
            == engine.decomposition.n_tiles - 1
        )


class TestPropertyInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        tile_ny=st.integers(1, 8),
        tile_nx=st.integers(1, 6),
        radius=st.floats(1.5, 10.0),
        floor=st.sampled_from([0.0, 0.02, 0.1]),
    )
    def test_contraction_and_orthonormality(
        self, seed, tile_ny, tile_nx, radius, floor
    ):
        layout = FieldLayout(
            [
                FieldSpec("ssh", (*GRID,), scale=0.5),
                FieldSpec("temp", (2, *GRID), scale=2.0),
            ]
        )
        subspace = make_subspace(layout, seed=seed)
        operator = make_operator(layout, seed=seed, n_obs=10)
        result = TiledESSEAnalysis(
            layout,
            GRID,
            tile_shape=(tile_ny, tile_nx),
            taper=GaspariCohnTaper(radius),
            local_energy_floor=floor,
        ).update(np.zeros(layout.size), subspace, operator)
        prior_var = variance_field(layout, subspace)
        post_var = variance_field(layout, result.subspace)
        assert np.all(post_var <= prior_var * (1.0 + 1e-9) + 1e-12)
        modes = result.subspace.modes
        assert_allclose(modes.T @ modes, np.eye(modes.shape[1]), atol=1e-8)
