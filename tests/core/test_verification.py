"""Tests (incl. property-based) for the verification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.verification import (
    anomaly_correlation,
    bias,
    crps,
    rank_histogram,
    rmse,
    spread_skill_ratio,
    verify_ensemble,
)


class TestDeterministic:
    def test_rmse_and_bias_known_values(self):
        f = np.array([1.0, 2.0, 3.0])
        t = np.array([0.0, 2.0, 5.0])
        assert rmse(f, t) == pytest.approx(np.sqrt(5 / 3))
        assert bias(f, t) == pytest.approx(-1.0 / 3.0)

    def test_perfect_forecast(self):
        f = np.random.default_rng(0).random((4, 5))
        assert rmse(f, f) == 0.0
        assert bias(f, f) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            rmse(np.zeros(3), np.zeros(4))

    def test_anomaly_correlation_bounds(self):
        rng = np.random.default_rng(1)
        clim = np.zeros(50)
        t = rng.standard_normal(50)
        assert anomaly_correlation(t, t, clim) == pytest.approx(1.0)
        assert anomaly_correlation(-t, t, clim) == pytest.approx(-1.0)

    def test_anomaly_correlation_degenerate(self):
        with pytest.raises(ValueError, match="undefined"):
            anomaly_correlation(np.ones(5), np.ones(5), np.ones(5))


class TestEnsembleCalibration:
    def test_spread_skill_near_one_for_consistent_ensemble(self):
        """Truth exchangeable with the members -> ratio ~ 1."""
        rng = np.random.default_rng(2)
        center = rng.standard_normal((40, 40))
        truth = center + rng.standard_normal((40, 40))
        members = center[None] + rng.standard_normal((50, 40, 40))
        assert spread_skill_ratio(members, truth) == pytest.approx(1.0, rel=0.25)

    def test_underdispersed_ensemble_flagged(self):
        rng = np.random.default_rng(3)
        truth = rng.standard_normal((30, 30))
        members = truth[None] + 0.1 * rng.standard_normal((50, 30, 30)) + 1.0
        assert spread_skill_ratio(members, truth) < 0.5

    def test_rank_histogram_flat_for_exchangeable_truth(self):
        rng = np.random.default_rng(4)
        n, m = 9, 20000
        members = rng.standard_normal((n, m))
        truth = rng.standard_normal(m)
        hist = rank_histogram(members, truth)
        assert hist.shape == (n + 1,)
        assert hist.sum() == m
        expected = m / (n + 1)
        assert np.all(np.abs(hist - expected) < 5 * np.sqrt(expected))

    def test_rank_histogram_u_shaped_when_underdispersed(self):
        rng = np.random.default_rng(5)
        members = 0.1 * rng.standard_normal((9, 5000))
        truth = rng.standard_normal(5000)
        hist = rank_histogram(members, truth)
        assert hist[0] + hist[-1] > 0.5 * hist.sum()


class TestCRPS:
    def test_single_member_is_mae(self):
        rng = np.random.default_rng(6)
        member = rng.standard_normal((1, 100))
        truth = rng.standard_normal(100)
        assert crps(member, truth) == pytest.approx(
            np.mean(np.abs(member[0] - truth))
        )

    def test_sharper_correct_ensemble_scores_better(self):
        rng = np.random.default_rng(7)
        truth = np.zeros(2000)
        sharp = 0.3 * rng.standard_normal((20, 2000))
        blunt = 2.0 * rng.standard_normal((20, 2000))
        assert crps(sharp, truth) < crps(blunt, truth)

    @given(st.integers(2, 12), st.integers(5, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_nonnegative(self, n, m, seed):
        rng = np.random.default_rng(seed)
        members = rng.standard_normal((n, m))
        truth = rng.standard_normal(m)
        assert crps(members, truth) >= 0.0

    @given(st.integers(2, 10), st.integers(5, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_translation_invariant(self, n, m, seed):
        rng = np.random.default_rng(seed)
        members = rng.standard_normal((n, m))
        truth = rng.standard_normal(m)
        shifted = crps(members + 3.7, truth + 3.7)
        assert shifted == pytest.approx(crps(members, truth), abs=1e-9)


class TestReport:
    def test_verify_ensemble(self):
        rng = np.random.default_rng(8)
        center = rng.standard_normal((20, 20))
        truth = center + rng.standard_normal((20, 20))
        members = center[None] + rng.standard_normal((30, 20, 20))
        report = verify_ensemble(members, truth)
        assert report.n_members == 30
        assert report.rmse > 0
        assert 0.5 < report.spread_skill < 2.0
        line = report.render()
        assert "RMSE" in line and "CRPS" in line

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 2"):
            verify_ensemble(np.zeros((1, 4)), np.zeros(4))
        with pytest.raises(ValueError, match="truth shape"):
            verify_ensemble(np.zeros((3, 4)), np.zeros(5))
