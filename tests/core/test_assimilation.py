"""Unit tests for the ESSE analysis update."""

import numpy as np
import pytest

from repro.core.assimilation import ESSEAnalysis
from repro.core.state import FieldLayout, FieldSpec
from repro.core.subspace import ErrorSubspace
from repro.obs.operators import Observation, ObservationOperator


@pytest.fixture()
def layout():
    # one 1-scale field so normalized == physical, plus a scaled field
    return FieldLayout(
        [FieldSpec("a", (10,), scale=1.0), FieldSpec("b", (5,), scale=2.0)]
    )


def make_subspace(layout, p=4, seed=0, sigma0=1.0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((layout.size, p)))
    sigmas = sigma0 * np.linspace(1.0, 0.4, p)
    return ErrorSubspace(modes=q, sigmas=sigmas, n_samples=50)


def obs_at(layout, entries, noise_std=0.1):
    """entries: list of (field, flat_index_in_field, value)."""
    observations = []
    for fieldname, flat, value in entries:
        observations.append(
            Observation(
                field=fieldname, level=0, j=0, i=flat, value=value, noise_std=noise_std
            )
        )
    return ObservationOperator(layout, observations)


class TestMeanUpdate:
    def test_moves_toward_observation(self, layout):
        sub = make_subspace(layout)
        analysis = ESSEAnalysis(layout)
        x = np.zeros(layout.size)
        op = obs_at(layout, [("a", 3, 2.0)])
        result = analysis.update(x, sub, op)
        assert 0.0 < result.mean[3] <= 2.0
        assert result.analysis_rms <= result.innovation_rms

    def test_zero_innovation_keeps_mean(self, layout):
        sub = make_subspace(layout)
        analysis = ESSEAnalysis(layout)
        x = np.arange(layout.size, dtype=float)
        op = obs_at(layout, [("a", 3, 3.0)])  # x[3] = 3 already
        result = analysis.update(x, sub, op)
        assert np.allclose(result.mean, x)

    def test_small_noise_fits_observation(self, layout):
        """With tiny R and large prior variance, the analysis ~ the data."""
        sub = make_subspace(layout, sigma0=50.0)
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 2, 1.5)], noise_std=1e-4)
        result = analysis.update(np.zeros(layout.size), sub, op)
        assert result.mean[2] == pytest.approx(1.5, abs=0.05)

    def test_large_noise_keeps_forecast(self, layout):
        sub = make_subspace(layout, sigma0=0.01)
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 2, 10.0)], noise_std=100.0)
        result = analysis.update(np.zeros(layout.size), sub, op)
        assert abs(result.mean[2]) < 0.01

    def test_update_confined_to_subspace(self, layout):
        """The increment must lie in span(D E)."""
        sub = make_subspace(layout, p=2)
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 0, 5.0), ("b", 1, 1.0)])
        result = analysis.update(np.zeros(layout.size), sub, op)
        incr_norm = layout.normalize(result.mean)  # increment, normalized
        # project out the subspace; the residual must vanish
        residual = incr_norm - sub.modes @ (sub.modes.T @ incr_norm)
        assert np.linalg.norm(residual) < 1e-10 * max(np.linalg.norm(incr_norm), 1)

    def test_matches_dense_kalman_formula(self, layout):
        """Woodbury path equals the textbook dense gain."""
        sub = make_subspace(layout, p=3, seed=7)
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 1, 1.0), ("a", 4, -2.0), ("b", 0, 0.5)])
        x = np.zeros(layout.size)
        result = analysis.update(x, sub, op)

        d = np.asarray(layout.scales)
        de = sub.modes * d[:, None]
        p_dense = de @ np.diag(sub.variances) @ de.T
        h_rows = np.zeros((op.size, layout.size))
        for k, idx in enumerate(op.state_indices):
            h_rows[k, idx] = 1.0
        s = h_rows @ p_dense @ h_rows.T + np.diag(op.noise_var)
        gain = p_dense @ h_rows.T @ np.linalg.inv(s)
        expected = x + gain @ (op.values - h_rows @ x)
        assert np.allclose(result.mean, expected, atol=1e-8)

    def test_validation(self, layout):
        analysis = ESSEAnalysis(layout)
        sub = make_subspace(layout)
        op = obs_at(layout, [("a", 0, 1.0)])
        with pytest.raises(ValueError, match="forecast mean"):
            analysis.update(np.zeros(3), sub, op)
        with pytest.raises(ValueError, match="inflation"):
            ESSEAnalysis(layout, inflation=0.5)


class TestPosteriorSubspace:
    def test_variance_never_increases(self, layout):
        sub = make_subspace(layout)
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 0, 1.0), ("a", 5, 0.0)])
        result = analysis.update(np.zeros(layout.size), sub, op)
        assert result.subspace.total_variance <= sub.total_variance + 1e-12

    def test_posterior_variance_reduced_in_observed_direction(self, layout):
        sub = make_subspace(layout)
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 0, 1.0)], noise_std=0.01)
        result = analysis.update(np.zeros(layout.size), sub, op)
        e0 = np.zeros(layout.size)
        e0[0] = 1.0
        prior_var = e0 @ sub.covariance_action(e0)
        post_var = e0 @ result.subspace.covariance_action(e0)
        assert post_var < prior_var

    def test_posterior_modes_orthonormal(self, layout):
        sub = make_subspace(layout)
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 0, 1.0), ("b", 2, 0.2)])
        result = analysis.update(np.zeros(layout.size), sub, op)
        gram = result.subspace.modes.T @ result.subspace.modes
        assert np.allclose(gram, np.eye(result.subspace.rank), atol=1e-10)

    def test_unobserved_directions_untouched(self, layout):
        """Modes orthogonal to all observed rows keep their variance."""
        # Build a subspace with a mode that is zero at every observed index.
        rng = np.random.default_rng(11)
        m1 = np.zeros(layout.size)
        m1[7] = 1.0  # unobserved direction
        m2 = np.zeros(layout.size)
        m2[0] = 1.0  # will be observed
        sub = ErrorSubspace(
            modes=np.stack([m2, m1], axis=1), sigmas=np.array([1.0, 0.5])
        )
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 0, 1.0)], noise_std=0.01)
        result = analysis.update(np.zeros(layout.size), sub, op)
        e7 = np.zeros(layout.size)
        e7[7] = 1.0
        post_var = e7 @ result.subspace.covariance_action(e7)
        assert post_var == pytest.approx(0.25, rel=1e-6)

    def test_zero_variance_modes_dropped(self, layout):
        q, _ = np.linalg.qr(np.random.default_rng(0).standard_normal((layout.size, 3)))
        sub = ErrorSubspace(modes=q, sigmas=np.array([1.0, 0.5, 0.0]))
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 0, 1.0)])
        result = analysis.update(np.zeros(layout.size), sub, op)
        assert result.subspace.rank <= 2

    def test_empty_subspace_rejected(self, layout):
        analysis = ESSEAnalysis(layout)
        sub = ErrorSubspace(modes=np.zeros((layout.size, 0)), sigmas=np.zeros(0))
        op = obs_at(layout, [("a", 0, 1.0)])
        with pytest.raises(ValueError, match="empty subspace"):
            analysis.update(np.zeros(layout.size), sub, op)


class TestEnsembleUpdate:
    def test_members_pulled_toward_observation(self, layout):
        sub = make_subspace(layout, sigma0=10.0)
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 3, 5.0)], noise_std=0.05)
        rng = np.random.default_rng(0)
        members = rng.standard_normal((20, layout.size))
        updated = analysis.update_ensemble(members, sub, op, rng)
        before = np.abs(members[:, 3] - 5.0).mean()
        after = np.abs(updated[:, 3] - 5.0).mean()
        assert after < before

    def test_spread_reduced_at_observed_point(self, layout):
        sub = make_subspace(layout, sigma0=10.0)
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 3, 0.0)], noise_std=0.1)
        rng = np.random.default_rng(1)
        members = 3.0 * rng.standard_normal((40, layout.size))
        updated = analysis.update_ensemble(members, sub, op, rng)
        assert updated[:, 3].std() < members[:, 3].std()

    def test_shape_validation(self, layout):
        analysis = ESSEAnalysis(layout)
        sub = make_subspace(layout)
        op = obs_at(layout, [("a", 0, 1.0)])
        with pytest.raises(ValueError, match="members"):
            analysis.update_ensemble(
                np.zeros(layout.size), sub, op, np.random.default_rng(0)
            )


class TestEnsembleUpdateRegressions:
    """Failing-before/passing-after guards for the update_ensemble fixes.

    Two latent bugs: (a) an empty subspace raised IndexError on
    ``sigmas[0]`` instead of the ValueError ``update`` raises, and when
    every mode sat below the variance floor a rank-0 subspace was
    silently constructed; (b) the perturbed-observation update solved the
    same Woodbury system once per member instead of once for all members.
    """

    def test_empty_subspace_raises_value_error(self, layout):
        # Before the fix: IndexError from indexing sigmas[0] on rank 0.
        analysis = ESSEAnalysis(layout)
        empty = ErrorSubspace(modes=np.zeros((layout.size, 0)), sigmas=np.zeros(0))
        op = obs_at(layout, [("a", 3, 1.0)])
        members = np.zeros((3, layout.size))
        with pytest.raises(ValueError, match="empty subspace"):
            analysis.update_ensemble(members, empty, op, np.random.default_rng(0))

    def test_all_modes_below_floor_raise(self, layout):
        # Before the fix: a rank-0 subspace was built silently and the
        # downstream solve produced garbage instead of an error.
        sub = make_subspace(layout)
        dead = ErrorSubspace(
            modes=sub.modes, sigmas=np.zeros(sub.rank), n_samples=sub.n_samples
        )
        op = obs_at(layout, [("a", 3, 1.0)])
        members = np.zeros((3, layout.size))
        with pytest.raises(ValueError, match="no positive-variance modes"):
            ESSEAnalysis(layout).update_ensemble(
                members, dead, op, np.random.default_rng(0)
            )

    def test_guards_agree_with_update(self, layout):
        """Both public paths reject degenerate subspaces identically."""
        analysis = ESSEAnalysis(layout)
        op = obs_at(layout, [("a", 3, 1.0)])
        members = np.zeros((2, layout.size))
        for bad in (
            ErrorSubspace(modes=np.zeros((layout.size, 0)), sigmas=np.zeros(0)),
            ErrorSubspace(
                modes=make_subspace(layout).modes, sigmas=np.zeros(4)
            ),
        ):
            with pytest.raises(ValueError) as from_update:
                analysis.update(np.zeros(layout.size), bad, op)
            with pytest.raises(ValueError) as from_ensemble:
                analysis.update_ensemble(
                    members, bad, op, np.random.default_rng(0)
                )
            assert str(from_update.value) == str(from_ensemble.value)

    def test_single_woodbury_solve_for_all_members(self, layout, monkeypatch):
        """All N member innovations go through ONE innovation-cov solve.

        The old implementation called ``_solve_innovation_cov`` once per
        member; this fails against it (N calls) and passes now (1 call).
        """
        analysis = ESSEAnalysis(layout)
        sub = make_subspace(layout)
        op = obs_at(layout, [("a", 1, 1.0), ("b", 2, 0.5)])
        members = np.random.default_rng(3).standard_normal((6, layout.size))
        calls = []
        original = analysis._solve_innovation_cov

        def counted(hde, variances, noise_var, rhs):
            calls.append(np.shape(rhs))
            return original(hde, variances, noise_var, rhs)

        monkeypatch.setattr(analysis, "_solve_innovation_cov", counted)
        analysis.update_ensemble(members, sub, op, np.random.default_rng(0))
        assert len(calls) == 1
        assert calls[0] == (op.size, 6)  # the stacked (m, N) rhs

    def test_noise_stream_order_preserved(self, layout):
        """The batched path consumes the RNG exactly like the old loop.

        Perturbed-observation draws must stay member-by-member so a fixed
        seed keeps producing the historical noise sequence.
        """
        analysis = ESSEAnalysis(layout)
        sub = make_subspace(layout)
        op = obs_at(layout, [("a", 1, 1.0), ("b", 2, 0.5)])
        members = np.random.default_rng(3).standard_normal((5, layout.size))
        rng_batched = np.random.default_rng(7)
        analysis.update_ensemble(members, sub, op, rng_batched)
        rng_loop = np.random.default_rng(7)
        for _ in range(5):
            op.perturbed_values(rng_loop)
        # Same stream position afterwards => identical draw order.
        assert rng_batched.random() == rng_loop.random()

    def test_matches_per_member_loop(self, layout):
        """Batched update equals the historical per-member loop.

        The comparison is at near-ULP tolerance rather than bitwise:
        the (m, N) matmul and the per-member matvec take different BLAS
        kernels (gemm vs gemv) whose accumulation orders differ in the
        last bits.  The noise draws themselves are bit-identical
        (``test_noise_stream_order_preserved``).
        """
        analysis = ESSEAnalysis(layout, inflation=1.05)
        sub = make_subspace(layout, p=3, sigma0=2.0)
        op = obs_at(layout, [("a", 1, 1.0), ("a", 4, -0.5), ("b", 2, 0.5)])
        members = np.random.default_rng(3).standard_normal((6, layout.size))

        out = analysis.update_ensemble(members, sub, op, np.random.default_rng(11))

        rng = np.random.default_rng(11)
        kept = sub  # all sigmas positive in this fixture
        sigmas = kept.sigmas * analysis.inflation
        variances = sigmas**2
        hde = analysis._observed_modes(kept, op)
        expected = np.empty_like(members)
        for j in range(members.shape[0]):
            d_j = op.perturbed_values(rng) - op.observe(members[j])
            solved = analysis._solve_innovation_cov(
                hde, variances, op.noise_var, d_j
            )
            coeffs = variances * (hde.T @ solved)
            expected[j] = members[j] + layout.denormalize(kept.modes @ coeffs)
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-13)
