"""Tests for distance tapers, observation selection and inflation models."""

from types import SimpleNamespace

import numpy as np
import pytest
from numpy.testing import assert_allclose

from repro.core.localization import (
    AdaptiveInflation,
    CutoffTaper,
    GaspariCohnTaper,
    MultiplicativeInflation,
    make_inflation,
    make_taper,
    observation_coords,
    select_observations,
)


class TestGaspariCohnTaper:
    def test_boundary_values(self):
        taper = GaspariCohnTaper(radius=8.0)
        w = taper(np.array([0.0, 8.0, 12.0, 100.0]))
        assert w[0] == 1.0
        assert w[1] == pytest.approx(0.0, abs=1e-12)
        assert w[2] == 0.0
        assert w[3] == 0.0

    def test_monotone_decreasing_on_support(self):
        taper = GaspariCohnTaper(radius=10.0)
        d = np.linspace(0.0, 10.0, 201)
        w = taper(d)
        assert np.all(np.diff(w) <= 1e-12)
        assert np.all((w >= 0.0) & (w <= 1.0))

    def test_halfwidth_value(self):
        # At d == c == radius/2 the polynomial evaluates to
        # -1/4 + 1/2 + 5/8 - 5/3 + 1 = 5/24.
        taper = GaspariCohnTaper(radius=6.0)
        assert taper(np.array([3.0]))[0] == pytest.approx(5.0 / 24.0)

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError, match="radius"):
            GaspariCohnTaper(0.0)
        with pytest.raises(ValueError, match="radius"):
            GaspariCohnTaper(-3.0)


class TestCutoffTaper:
    def test_hard_cut(self):
        taper = CutoffTaper(radius=4.0)
        assert_allclose(
            taper(np.array([0.0, 3.999, 4.0, 9.0])), [1.0, 1.0, 0.0, 0.0]
        )

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError, match="radius"):
            CutoffTaper(0.0)


class TestMakeTaper:
    def test_by_name(self):
        assert make_taper("none", 5.0) is None
        assert isinstance(make_taper("gaspari_cohn", 5.0), GaspariCohnTaper)
        assert isinstance(make_taper("cutoff", 5.0), CutoffTaper)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown taper"):
            make_taper("boxcar", 5.0)


class TestObservationCoords:
    def test_coords_shape_and_order(self):
        op = SimpleNamespace(
            observations=[
                SimpleNamespace(j=2, i=7),
                SimpleNamespace(j=0, i=1),
            ]
        )
        coords = observation_coords(op)
        assert coords.shape == (2, 2)
        assert_allclose(coords, [[2.0, 7.0], [0.0, 1.0]])

    def test_empty_operator(self):
        op = SimpleNamespace(observations=[])
        assert observation_coords(op).shape == (0, 2)


class TestSelectObservations:
    def test_no_taper_no_cutoff_selects_all(self):
        idx, w = select_observations(np.array([0.0, 5.0, 100.0]))
        assert_allclose(idx, [0, 1, 2])
        assert_allclose(w, 1.0)

    def test_taper_drops_zero_weight(self):
        taper = GaspariCohnTaper(radius=4.0)
        idx, w = select_observations(np.array([0.0, 2.0, 4.0, 10.0]), taper=taper)
        assert_allclose(idx, [0, 1])
        assert w[0] == 1.0
        assert 0.0 < w[1] < 1.0

    def test_cutoff_applies_on_top_of_taper(self):
        taper = GaspariCohnTaper(radius=20.0)
        idx, _ = select_observations(
            np.array([0.0, 3.0, 6.0]), taper=taper, cutoff=5.0
        )
        assert_allclose(idx, [0, 1])

    def test_min_weight_floor(self):
        # Weight 1e-12 would inflate local R by 1e12; it must be dropped.
        taper = lambda d: np.where(d < 1.0, 1.0, 1e-12)  # noqa: E731
        idx, w = select_observations(np.array([0.5, 2.0]), taper=taper)
        assert_allclose(idx, [0])
        assert_allclose(w, [1.0])


class TestInflation:
    def test_multiplicative_constant(self):
        model = MultiplicativeInflation(1.25)
        f = model.factor(
            np.array([1.0]), np.ones((1, 3)), np.ones(3), np.array([0.1])
        )
        assert f == 1.25

    def test_multiplicative_rejects_deflation(self):
        with pytest.raises(ValueError, match="factor"):
            MultiplicativeInflation(0.9)

    def test_adaptive_unit_when_consistent(self):
        # Innovation magnitude matching tr(HPH^T) + tr(R) gives lambda = 1.
        hde = np.array([[2.0, 0.0], [0.0, 1.0]])
        variances = np.array([1.0, 1.0])
        noise_var = np.array([0.5, 0.5])
        signal = np.sum(hde**2 * variances[None, :])  # 5.0
        d = np.sqrt(signal + noise_var.sum()) * np.array([1.0, 0.0])
        f = AdaptiveInflation(min_factor=0.1, max_factor=10.0).factor(
            d, hde, variances, noise_var
        )
        assert f == pytest.approx(1.0)

    def test_adaptive_clips_to_bounds(self):
        hde = np.ones((2, 2))
        variances = np.ones(2)
        noise_var = np.full(2, 0.1)
        model = AdaptiveInflation(min_factor=1.0, max_factor=2.0)
        # Huge innovation -> clipped to max_factor.
        assert model.factor(np.full(2, 1e4), hde, variances, noise_var) == 2.0
        # Tiny innovation -> clipped up to min_factor (never deflate).
        assert model.factor(np.zeros(2), hde, variances, noise_var) == 1.0

    def test_adaptive_degenerate_signal(self):
        model = AdaptiveInflation(min_factor=1.0, max_factor=2.0)
        f = model.factor(
            np.array([3.0]), np.zeros((1, 2)), np.ones(2), np.array([0.1])
        )
        assert f == 1.0
        assert (
            model.factor(np.zeros(0), np.ones((0, 2)), np.ones(2), np.zeros(0))
            == 1.0
        )

    def test_adaptive_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="min_factor"):
            AdaptiveInflation(min_factor=0.0)
        with pytest.raises(ValueError, match="max_factor"):
            AdaptiveInflation(min_factor=2.0, max_factor=1.0)

    def test_make_inflation(self):
        assert isinstance(
            make_inflation("multiplicative", factor=1.1), MultiplicativeInflation
        )
        adaptive = make_inflation("adaptive", max_factor=3.0)
        assert isinstance(adaptive, AdaptiveInflation)
        assert adaptive.max_factor == 3.0
        with pytest.raises(ValueError, match="unknown inflation"):
            make_inflation("relaxation")
