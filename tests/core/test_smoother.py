"""Tests for the one-lag ESSE smoother (reanalysis of past states)."""

import numpy as np
import pytest

from repro.core import (
    ESSEConfig,
    ESSEDriver,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.core.smoother import ESSESmoother
from repro.obs.network import aosn2_network
from repro.ocean import PEModel, StochasticForcing
from repro.ocean.bathymetry import monterey_grid


@pytest.fixture(scope="module")
def smoothing_setup():
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    layout = model.layout
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=8, seed=1
    )
    root_seed = 42
    # twin truth: a *different* draw from the same subspace at t0
    truth_perturber = PerturbationGenerator(layout, subspace, root_seed=31337)
    x_truth0 = truth_perturber.member_state(model.to_vector(background), 0)
    truth_model = PEModel(
        grid=grid, noise=StochasticForcing(grid, rng=np.random.default_rng(9))
    )
    duration = 8 * 400.0
    truth1 = truth_model.run(
        model.from_vector(x_truth0, time=background.time), duration
    )

    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=16,
            max_ensemble_size=32,
            convergence_tolerance=0.95,
            max_subspace_rank=8,
        ),
        root_seed=root_seed,
    )
    forecast = driver.forecast(background, subspace, duration=duration)
    network = aosn2_network(grid, layout, rng=np.random.default_rng(5))
    batch = network.observe(truth1)

    smoother = ESSESmoother(layout, root_seed=root_seed)
    result = smoother.smooth(
        model.to_vector(background), subspace, forecast, batch.operator
    )
    return {
        "model": model,
        "layout": layout,
        "background": background,
        "subspace": subspace,
        "x_truth0": x_truth0,
        "forecast": forecast,
        "batch": batch,
        "result": result,
        "root_seed": root_seed,
    }


class TestSmoother:
    def test_initial_error_reduced(self, smoothing_setup):
        """Future observations must improve the *past* state estimate."""
        s = smoothing_setup
        layout, model = s["layout"], s["model"]
        prior = model.to_vector(s["background"])
        e_prior = np.linalg.norm(layout.normalize(prior - s["x_truth0"]))
        e_smooth = np.linalg.norm(
            layout.normalize(s["result"].smoothed_initial_mean - s["x_truth0"])
        )
        assert e_smooth < e_prior

    def test_posterior_initial_subspace_shrinks(self, smoothing_setup):
        s = smoothing_setup
        # compare against the reconstructed prior t0 sample variance
        smoother = ESSESmoother(s["layout"], root_seed=s["root_seed"])
        z0 = smoother._initial_anomalies(
            s["model"].to_vector(s["background"]),
            s["subspace"],
            s["forecast"].member_ids,
        )
        prior_var = float(np.sum(z0**2))
        assert s["result"].initial_subspace.total_variance < prior_var

    def test_innovation_recorded(self, smoothing_setup):
        assert smoothing_setup["result"].innovation_rms > 0

    def test_subspace_modes_orthonormal(self, smoothing_setup):
        from repro.util.linalg import orthonormal_columns

        assert orthonormal_columns(
            smoothing_setup["result"].initial_subspace.modes, atol=1e-7
        )

    def test_validation(self, smoothing_setup):
        s = smoothing_setup
        smoother = ESSESmoother(s["layout"], root_seed=s["root_seed"])
        with pytest.raises(ValueError, match="initial mean"):
            smoother.smooth(
                np.zeros(3), s["subspace"], s["forecast"], s["batch"].operator
            )
        with pytest.raises(ValueError, match="inflation"):
            ESSESmoother(s["layout"], root_seed=0, inflation=0.5)

    def test_wrong_seed_degrades_smoothing(self, smoothing_setup):
        """Reconstruction depends on the true root seed; a wrong seed
        decorrelates the cross-time statistics."""
        s = smoothing_setup
        layout, model = s["layout"], s["model"]
        wrong = ESSESmoother(layout, root_seed=s["root_seed"] + 1).smooth(
            model.to_vector(s["background"]),
            s["subspace"],
            s["forecast"],
            s["batch"].operator,
        )
        right_err = np.linalg.norm(
            layout.normalize(s["result"].smoothed_initial_mean - s["x_truth0"])
        )
        wrong_err = np.linalg.norm(
            layout.normalize(wrong.smoothed_initial_mean - s["x_truth0"])
        )
        assert right_err < wrong_err
