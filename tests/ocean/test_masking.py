"""Unit tests for the coastal land-fill stencil."""

import numpy as np
import pytest

from repro.ocean.masking import LandFiller


def cross_mask():
    """5x5 mask with a single land cell in the middle."""
    mask = np.ones((5, 5), dtype=bool)
    mask[2, 2] = False
    return mask


class TestLandFiller:
    def test_fills_with_neighbour_mean(self):
        mask = cross_mask()
        fld = np.arange(25, dtype=float).reshape(5, 5)
        out = LandFiller(mask)(fld)
        expected = (fld[1, 2] + fld[3, 2] + fld[2, 1] + fld[2, 3]) / 4.0
        assert out[2, 2] == pytest.approx(expected)

    def test_ocean_values_unchanged(self):
        mask = cross_mask()
        fld = np.random.default_rng(0).random((5, 5))
        out = LandFiller(mask)(fld)
        assert np.array_equal(out[mask], fld[mask])

    def test_interior_land_untouched(self):
        """Land cells with no wet neighbour keep their value."""
        mask = np.ones((6, 6), dtype=bool)
        mask[2:5, 2:5] = False
        fld = np.zeros((6, 6))
        fld[3, 3] = 42.0  # fully interior land cell
        out = LandFiller(mask)(fld)
        assert out[3, 3] == 42.0

    def test_constant_field_invariant(self):
        """A uniform field stays uniform: the fill is zero-gradient."""
        mask = cross_mask()
        out = LandFiller(mask)(np.full((5, 5), 3.7))
        assert np.allclose(out, 3.7)

    def test_3d_stack(self):
        mask = cross_mask()
        fld = np.stack([np.full((5, 5), 1.0), np.full((5, 5), 2.0)])
        out = LandFiller(mask)(fld)
        assert out[0, 2, 2] == pytest.approx(1.0)
        assert out[1, 2, 2] == pytest.approx(2.0)

    def test_input_not_modified(self):
        mask = cross_mask()
        fld = np.ones((5, 5))
        fld[2, 2] = -5.0
        LandFiller(mask)(fld)
        assert fld[2, 2] == -5.0

    def test_rejects_bad_mask(self):
        with pytest.raises(ValueError, match="2-D"):
            LandFiller(np.ones(5, dtype=bool))

    def test_rejects_bad_field_shape(self):
        filler = LandFiller(cross_mask())
        with pytest.raises(ValueError, match="incompatible"):
            filler(np.ones((4, 4)))

    def test_edge_land_cell(self):
        """Coastline on the array edge is filled from the available side."""
        mask = np.ones((4, 4), dtype=bool)
        mask[0, :] = False
        fld = np.zeros((4, 4))
        fld[1, :] = 5.0
        out = LandFiller(mask)(fld)
        assert np.allclose(out[0, :], 5.0)
