"""Batched ensemble stepping: bit-identity with the serial member path."""

import numpy as np
import pytest

from repro.ocean import PEModel, StochasticForcing
from repro.ocean.model import EnsembleState
from repro.ocean.stochastic import BatchedStochasticForcing

N = 3


def perturbed_states(model, base, n=N, amplitude=0.01):
    """Small deterministic per-member temperature bumps on a base state."""
    states = []
    for i in range(n):
        member = base.copy()
        member.temp = member.temp + amplitude * (i + 1) * model.grid.mask
        states.append(member)
    return states


class TestEnsembleState:
    def test_from_states_round_trip(self, small_model, spun_up_state):
        states = perturbed_states(small_model, spun_up_state)
        batch = EnsembleState.from_states(states)
        assert batch.count == N
        assert batch.time == spun_up_state.time
        for i, state in enumerate(states):
            member = batch.member(i)
            assert np.array_equal(member.u, state.u)
            assert np.array_equal(member.temp, state.temp)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            EnsembleState.from_states([])

    def test_time_disagreement_rejected(self, small_model, spun_up_state):
        late = spun_up_state.copy()
        late.time = spun_up_state.time + 400.0
        with pytest.raises(ValueError, match="disagree"):
            EnsembleState.from_states([spun_up_state.copy(), late])


class TestMatrixRoundTrip:
    def test_columns_match_to_vector(self, small_model, spun_up_state):
        states = perturbed_states(small_model, spun_up_state)
        batch = EnsembleState.from_states(states)
        matrix = small_model.ensemble_to_matrix(batch)
        assert matrix.shape == (small_model.layout.size, N)
        for j, state in enumerate(states):
            assert np.array_equal(matrix[:, j], small_model.to_vector(state))

    def test_from_matrix_round_trip(self, small_model, spun_up_state):
        states = perturbed_states(small_model, spun_up_state)
        batch = EnsembleState.from_states(states)
        matrix = small_model.ensemble_to_matrix(batch)
        again = small_model.ensemble_from_matrix(matrix, time=batch.time)
        for i in range(N):
            # The unpacked batch is re-masked; wet points round-trip
            # exactly and land points come back zeroed.
            wet = small_model.grid.mask
            assert np.array_equal(again.u[i][wet], batch.u[i][wet])
            assert np.array_equal(
                again.temp[i][:, wet], batch.temp[i][:, wet]
            )


class TestDeterministicBatchEquality:
    def test_step_matches_serial(self, small_model, spun_up_state):
        states = perturbed_states(small_model, spun_up_state)
        batch = small_model.step_ensemble(EnsembleState.from_states(states))
        for i, state in enumerate(states):
            serial = small_model.step(state)
            member = batch.member(i)
            assert np.array_equal(member.u, serial.u)
            assert np.array_equal(member.v, serial.v)
            assert np.array_equal(member.eta, serial.eta)
            assert np.array_equal(member.temp, serial.temp)
            assert np.array_equal(member.salt, serial.salt)

    def test_run_matches_serial(self, small_model, spun_up_state):
        duration = 4 * small_model.config.dt
        states = perturbed_states(small_model, spun_up_state)
        batch, failed = small_model.run_ensemble(
            EnsembleState.from_states(states), duration
        )
        assert failed == {}
        for i, state in enumerate(states):
            serial = small_model.run(state, duration)
            member = batch.member(i)
            assert member.time == serial.time
            assert np.array_equal(member.u, serial.u)
            assert np.array_equal(member.temp, serial.temp)


class TestNoisyBatchEquality:
    def test_batched_forcing_matches_per_member_serial(
        self, small_model, spun_up_state
    ):
        """Member i of a noisy batched run is bitwise the serial run
        of a model forced by the same generator."""
        duration = 3 * small_model.config.dt
        states = perturbed_states(small_model, spun_up_state)
        noise = BatchedStochasticForcing(
            small_model.grid,
            rngs=[np.random.default_rng(100 + i) for i in range(N)],
        )
        batch, failed = small_model.run_ensemble(
            EnsembleState.from_states(states), duration, noise=noise
        )
        assert failed == {}
        for i, state in enumerate(states):
            serial_model = small_model.with_noise(
                StochasticForcing(
                    small_model.grid, rng=np.random.default_rng(100 + i)
                )
            )
            serial = serial_model.run(state, duration)
            member = batch.member(i)
            assert np.array_equal(member.u, serial.u)
            assert np.array_equal(member.eta, serial.eta)
            assert np.array_equal(member.temp, serial.temp)
            assert np.array_equal(member.salt, serial.salt)

    def test_member_count_must_match(self, small_model, spun_up_state):
        states = perturbed_states(small_model, spun_up_state)
        noise = BatchedStochasticForcing(
            small_model.grid, rngs=[np.random.default_rng(0)]
        )
        with pytest.raises(ValueError, match="batch size"):
            small_model.step_ensemble(
                EnsembleState.from_states(states), noise=noise
            )


class TestBlowupIsolation:
    def test_exploding_member_does_not_poison_siblings(
        self, small_model, spun_up_state
    ):
        duration = small_model.config.check_interval * small_model.config.dt
        states = perturbed_states(small_model, spun_up_state)
        bomb = spun_up_state.copy()
        bomb.u = bomb.u + 1e6 * small_model.grid.mask  # CFL catastrophe
        batch, failed = small_model.run_ensemble(
            EnsembleState.from_states(states + [bomb]), duration
        )
        assert list(failed) == [N]
        assert "blow-up" in failed[N]
        # The lost member's slice is zeroed, the survivors are bitwise
        # what a batch without the bomb produces.
        assert np.array_equal(batch.u[N], np.zeros_like(batch.u[N]))
        clean, clean_failed = small_model.run_ensemble(
            EnsembleState.from_states(states), duration
        )
        assert clean_failed == {}
        for i in range(N):
            assert np.array_equal(batch.u[i], clean.u[i])
            assert np.array_equal(batch.temp[i], clean.temp[i])
