"""Unit tests for repro.ocean.grid."""

import numpy as np
import pytest

from repro.ocean.grid import OceanGrid, demo_grid


def make_grid(**kw):
    defaults = dict(nx=8, ny=6, dx=1000.0, dy=2000.0, z_levels=(5.0, 20.0, 50.0))
    defaults.update(kw)
    return OceanGrid(**defaults)


class TestConstruction:
    def test_basic_properties(self):
        g = make_grid()
        assert g.nz == 3
        assert g.shape2d == (6, 8)
        assert g.shape3d == (3, 6, 8)
        assert g.n_ocean == 48  # default mask is all ocean

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError, match="at least 4x4"):
            make_grid(nx=2)

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError, match="spacing"):
            make_grid(dx=-1.0)

    def test_rejects_descending_levels(self):
        with pytest.raises(ValueError, match="ascending"):
            make_grid(z_levels=(50.0, 20.0))

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            make_grid(z_levels=(-5.0, 20.0))

    def test_rejects_wrong_mask_shape(self):
        with pytest.raises(ValueError, match="mask shape"):
            make_grid(mask=np.ones((3, 3), dtype=bool))

    def test_coriolis_positive_in_northern_hemisphere(self):
        g = make_grid(lat0=36.7)
        assert 8.0e-5 < g.coriolis < 9.5e-5

    def test_coordinates(self):
        g = make_grid()
        assert np.allclose(g.x_coords(), np.arange(8) * 1000.0)
        assert np.allclose(g.y_coords(), np.arange(6) * 2000.0)


class TestIndexing:
    def test_level_index_nearest(self):
        g = make_grid()
        assert g.level_index(4.0) == 0
        assert g.level_index(22.0) == 1
        assert g.level_index(1000.0) == 2

    def test_nearest_point_simple(self):
        g = make_grid()
        assert g.nearest_point(0.0, 0.0) == (0, 0)
        assert g.nearest_point(3000.0, 4000.0) == (2, 3)

    def test_nearest_point_clips_outside_domain(self):
        g = make_grid()
        j, i = g.nearest_point(1e9, 1e9)
        assert (j, i) == (5, 7)

    def test_nearest_point_avoids_land(self):
        mask = np.ones((6, 8), dtype=bool)
        mask[0, 0] = False
        g = make_grid(mask=mask)
        j, i = g.nearest_point(0.0, 0.0)
        assert g.mask[j, i]
        assert (j, i) != (0, 0)

    def test_nearest_point_all_land_raises(self):
        mask = np.zeros((6, 8), dtype=bool)
        g = make_grid(mask=mask)
        with pytest.raises(ValueError, match="no ocean"):
            g.nearest_point(0.0, 0.0)


class TestMasking:
    def test_apply_mask_2d(self):
        mask = np.ones((6, 8), dtype=bool)
        mask[2, 3] = False
        g = make_grid(mask=mask)
        fld = np.ones(g.shape2d)
        out = g.apply_mask(fld, fill=-9.0)
        assert out[2, 3] == -9.0
        assert out[0, 0] == 1.0
        assert fld[2, 3] == 1.0  # input untouched

    def test_apply_mask_3d(self):
        mask = np.ones((6, 8), dtype=bool)
        mask[1, 1] = False
        g = make_grid(mask=mask)
        out = g.apply_mask(np.ones(g.shape3d))
        assert np.all(out[:, 1, 1] == 0.0)

    def test_apply_mask_wrong_shape(self):
        g = make_grid()
        with pytest.raises(ValueError, match="incompatible"):
            g.apply_mask(np.ones((3, 3)))


def test_demo_grid_is_closed_basin():
    g = demo_grid()
    assert not g.mask[0, :].any()
    assert not g.mask[-1, :].any()
    assert not g.mask[:, 0].any()
    assert not g.mask[:, -1].any()
    assert g.mask[5, 5]
