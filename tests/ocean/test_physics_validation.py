"""Physical validation of the shallow-water substrate.

The ESSE reproduction only needs qualitatively right mesoscale physics;
these tests pin the classic dynamical signatures so regressions in the
solver show up as physics, not just numbers.
"""

import numpy as np
import pytest

from repro.ocean import AtmosphericForcing, PEModel
from repro.ocean.grid import OceanGrid, demo_grid


def closed_basin(nx=30, ny=30, lat0=36.7):
    mask = np.ones((ny, nx), dtype=bool)
    mask[0, :] = mask[-1, :] = mask[:, 0] = mask[:, -1] = False
    return OceanGrid(
        nx=nx, ny=ny, dx=3000.0, dy=3000.0, z_levels=(5.0, 50.0), mask=mask,
        lat0=lat0,
    )


class TestGeostrophicAdjustment:
    def test_eta_anomaly_spins_up_rotational_flow(self):
        """A pressure bump under rotation adjusts toward a geostrophic
        vortex: flow along, not across, the eta contours."""
        grid = closed_basin()
        model = PEModel(
            grid=grid,
            forcing=AtmosphericForcing(grid, mean_tau=0.0, heat_flux_amplitude=0.0),
        )
        state = model.rest_state()
        y, x = np.mgrid[0:grid.ny, 0:grid.nx]
        bump = 0.5 * np.exp(-(((x - 15) / 4.0) ** 2 + ((y - 15) / 4.0) ** 2))
        state.eta = grid.apply_mask(bump)
        # several inertial periods: f ~ 8.7e-5 -> T_inertial ~ 20 h
        out = model.run(state, 3 * 86400.0)
        wet = grid.mask
        # flow developed (weak: the bump partly diffuses/radiates away)
        speed = np.sqrt(out.u**2 + out.v**2)
        assert speed[wet].max() > 1e-4
        # geostrophic balance: u ~ -(g'/f) d(eta)/dy at the bump flanks
        from repro.ocean.dynamics import ddy

        g_over_f = model.dynamics.g_reduced / grid.coriolis
        u_geo = -g_over_f * ddy(out.eta, grid.dy)
        interior = np.zeros_like(wet)
        interior[8:22, 8:22] = True
        interior &= wet
        corr = np.corrcoef(out.u[interior], u_geo[interior])[0, 1]
        assert corr > 0.8

    def test_anticyclone_around_high(self):
        """Northern hemisphere: clockwise flow around high pressure."""
        grid = closed_basin()
        model = PEModel(
            grid=grid,
            forcing=AtmosphericForcing(grid, mean_tau=0.0, heat_flux_amplitude=0.0),
        )
        state = model.rest_state()
        y, x = np.mgrid[0:grid.ny, 0:grid.nx]
        state.eta = grid.apply_mask(
            0.5 * np.exp(-(((x - 15) / 4.0) ** 2 + ((y - 15) / 4.0) ** 2))
        )
        out = model.run(state, 3 * 86400.0)
        # east of the high: v < 0 (southward) for clockwise circulation
        east_v = out.v[13:18, 20:23].mean()
        west_v = out.v[13:18, 8:11].mean()
        assert east_v < 0 < west_v


class TestUpwellingResponse:
    def test_equatorward_wind_drops_coastal_interface(self):
        """Along-shore equatorward wind on an eastern boundary -> offshore
        Ekman transport -> interface uplift (eta < 0) at the coast."""
        from repro.ocean.bathymetry import monterey_grid

        grid = monterey_grid(nx=24, ny=20, nz=3)
        model = PEModel(grid=grid)
        out = model.run(model.rest_state(), 5 * 86400.0)
        wet = grid.mask
        # coastal strip: last 3 wet cells of each row
        coastal = np.zeros_like(wet)
        for j in range(grid.ny):
            ii = np.nonzero(wet[j])[0]
            if ii.size >= 3:
                coastal[j, ii[-3:]] = True
        offshore = wet & ~coastal
        assert out.eta[coastal].mean() < out.eta[offshore].mean()

    def test_upwelled_water_is_cold(self):
        from repro.ocean.bathymetry import monterey_grid

        grid = monterey_grid(nx=24, ny=20, nz=3)
        model = PEModel(grid=grid)
        out = model.run(model.rest_state(), 10 * 86400.0)
        wet = grid.mask
        coastal = np.zeros_like(wet)
        for j in range(grid.ny):
            ii = np.nonzero(wet[j])[0]
            if ii.size >= 3:
                coastal[j, ii[-3:]] = True
        offshore = wet & ~coastal
        sst = out.temp[0]
        assert sst[coastal].mean() < sst[offshore].mean()
