"""Unit tests for atmospheric and stochastic forcing."""

import numpy as np
import pytest

from repro.ocean.forcing import AtmosphericForcing, upwelling_wind_stress
from repro.ocean.grid import demo_grid
from repro.ocean.stochastic import StochasticForcing


@pytest.fixture()
def grid():
    return demo_grid(nx=16, ny=14, nz=3)


class TestWindStress:
    def test_equatorward_alongshore(self, grid):
        tau_x, tau_y = upwelling_wind_stress(grid)
        assert tau_y[grid.mask].max() < 0  # southward everywhere

    def test_masked_on_land(self, grid):
        tau_x, tau_y = upwelling_wind_stress(grid)
        assert np.all(tau_x[~grid.mask] == 0)
        assert np.all(tau_y[~grid.mask] == 0)

    def test_amplitude_scales(self, grid):
        _, t1 = upwelling_wind_stress(grid, amplitude=0.05)
        _, t2 = upwelling_wind_stress(grid, amplitude=0.10)
        assert np.allclose(t2, 2.0 * t1)


class TestAtmosphericForcing:
    def test_synoptic_modulation(self, grid):
        f = AtmosphericForcing(grid, synoptic_amplitude=0.5)
        _, ty0 = f.wind_stress(0.0)
        _, ty1 = f.wind_stress(f.synoptic_period / 4.0)  # sin peak
        wet = grid.mask
        assert np.abs(ty1[wet]).max() > np.abs(ty0[wet]).max()

    def test_steady_when_amplitude_zero(self, grid):
        f = AtmosphericForcing(grid, synoptic_amplitude=0.0)
        _, a = f.wind_stress(0.0)
        _, b = f.wind_stress(1e5)
        assert np.allclose(a, b)

    def test_heat_flux_daily_cycle_has_zero_mean(self, grid):
        f = AtmosphericForcing(grid, synoptic_amplitude=0.0)
        times = np.arange(0, 86400, 400.0)
        wet_j, wet_i = np.nonzero(grid.mask)
        j, i = wet_j[0], wet_i[0]
        series = [f.heat_flux(t)[j, i] for t in times]
        # daily cosine + slow synoptic; mean over one day is near zero
        assert abs(np.mean(series)) < 0.35 * f.heat_flux_amplitude

    def test_validation(self, grid):
        with pytest.raises(ValueError, match="synoptic_period"):
            AtmosphericForcing(grid, synoptic_period=0.0)
        with pytest.raises(ValueError, match="synoptic_amplitude"):
            AtmosphericForcing(grid, synoptic_amplitude=2.0)


class TestStochasticForcing:
    def test_quiet_is_inactive(self, grid):
        assert not StochasticForcing.quiet(grid).is_active()

    def test_default_is_active(self, grid):
        assert StochasticForcing(grid).is_active()

    def test_increments_masked(self, grid):
        n = StochasticForcing(grid, rng=np.random.default_rng(0))
        du, dv = n.momentum_increment(400.0)
        assert np.all(du[~grid.mask] == 0)
        d_eta = n.eta_increment(400.0)
        assert np.all(d_eta[~grid.mask] == 0)

    def test_tracer_noise_decays_with_depth(self, grid):
        n = StochasticForcing(grid, rng=np.random.default_rng(0))
        stds = []
        for _ in range(60):
            dT, _ = n.tracer_increments(400.0)
            stds.append([dT[k][grid.mask].std() for k in range(grid.nz)])
        mean_std = np.mean(stds, axis=0)
        assert mean_std[0] > mean_std[-1]

    def test_scaling_with_sqrt_dt(self, grid):
        """Wiener increments scale like sqrt(dt)."""
        draws = 200
        n1 = StochasticForcing(grid, rng=np.random.default_rng(1))
        n2 = StochasticForcing(grid, rng=np.random.default_rng(1))
        s1 = np.std([n1.eta_increment(100.0)[grid.mask] for _ in range(draws)])
        s2 = np.std([n2.eta_increment(400.0)[grid.mask] for _ in range(draws)])
        assert s2 / s1 == pytest.approx(2.0, rel=0.15)

    def test_negative_amplitude_rejected(self, grid):
        with pytest.raises(ValueError):
            StochasticForcing(grid, momentum_amplitude=-1.0)

    def test_salt_noise_smaller_than_temp(self, grid):
        n = StochasticForcing(grid, rng=np.random.default_rng(3))
        t_stds, s_stds = [], []
        for _ in range(50):
            dT, dS = n.tracer_increments(400.0)
            t_stds.append(dT[0][grid.mask].std())
            s_stds.append(dS[0][grid.mask].std())
        assert np.mean(s_stds) < 0.5 * np.mean(t_stds)
