"""Unit tests for tracer dynamics and diagnostics."""

import numpy as np
import pytest

from repro.ocean import PEModel
from repro.ocean.diagnostics import (
    cfl_number,
    ensemble_std,
    kinetic_energy,
    max_current_speed,
    sea_surface_temperature,
    temperature_at_depth,
    total_volume_anomaly,
)
from repro.ocean.grid import demo_grid
from repro.ocean.tracers import TracerDynamics, climatological_profile


@pytest.fixture()
def grid():
    return demo_grid(nx=14, ny=12, nz=4)


@pytest.fixture()
def tracers(grid):
    return TracerDynamics(grid)


class TestClimatology:
    def test_monotone_profiles(self):
        z = np.linspace(0.0, 400.0, 20)
        temp, salt = climatological_profile(z)
        assert np.all(np.diff(temp) <= 0)  # cooler with depth
        assert np.all(np.diff(salt) >= 0)  # saltier with depth

    def test_limits(self):
        z = np.array([0.0, 5000.0])
        temp, salt = climatological_profile(z)
        assert temp[0] == pytest.approx(15.0, abs=1.0)
        assert temp[1] == pytest.approx(7.0, abs=0.5)


class TestTracerTendencies:
    def _zero_fields(self, grid):
        t_prof, s_prof = climatological_profile(np.asarray(grid.z_levels))
        temp = np.broadcast_to(t_prof[:, None, None], grid.shape3d).copy()
        salt = np.broadcast_to(s_prof[:, None, None], grid.shape3d).copy()
        zeros = np.zeros(grid.shape2d)
        return temp, salt, zeros

    def test_rest_climatology_is_steady(self, grid, tracers):
        temp, salt, zeros = self._zero_fields(grid)
        dT, dS = tracers.tendencies(temp, salt, zeros, zeros, zeros, zeros)
        assert np.allclose(dT[..., grid.mask], 0.0, atol=1e-12)
        assert np.allclose(dS[..., grid.mask], 0.0, atol=1e-12)

    def test_relaxation_pulls_back_to_climatology(self, grid, tracers):
        temp, salt, zeros = self._zero_fields(grid)
        warm = temp + 1.0
        dT, _ = tracers.tendencies(warm, salt, zeros, zeros, zeros, zeros)
        assert np.all(dT[..., grid.mask] < 0)

    def test_surface_heating_warms_top_level_only(self, grid, tracers):
        temp, salt, zeros = self._zero_fields(grid)
        heat = grid.apply_mask(np.full(grid.shape2d, 200.0))
        dT, _ = tracers.tendencies(temp, salt, zeros, zeros, zeros, heat)
        assert np.all(dT[0][grid.mask] > 0)
        assert np.allclose(dT[1:][..., grid.mask], 0.0, atol=1e-12)

    def test_upwelling_cools(self, grid, tracers):
        """Negative interface tendency (uplift) cools the thermocline."""
        temp, salt, zeros = self._zero_fields(grid)
        deta_dt = grid.apply_mask(np.full(grid.shape2d, -1e-4))
        dT, dS = tracers.tendencies(temp, salt, zeros, zeros, deta_dt, zeros)
        k = int(np.argmax(np.abs(np.gradient(temp[:, 6, 6]))))
        assert dT[k, 6, 6] < 0  # cooling at the thermocline
        assert dS[k, 6, 6] > 0  # and salinification

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            TracerDynamics(grid, diffusivity=-1.0)
        with pytest.raises(ValueError):
            TracerDynamics(grid, relaxation_time=0.0)


class TestDiagnostics:
    def test_rest_state_diagnostics(self, small_model):
        s = small_model.rest_state()
        grid = small_model.grid
        assert kinetic_energy(grid, s) == 0.0
        assert max_current_speed(grid, s) == 0.0
        assert total_volume_anomaly(grid, s) == 0.0

    def test_sst_and_depth_extraction(self, small_model, spun_up_state):
        grid = small_model.grid
        sst = sea_surface_temperature(spun_up_state)
        assert np.array_equal(sst, spun_up_state.temp[0])
        t_mid = temperature_at_depth(grid, spun_up_state, grid.z_levels[2])
        assert np.array_equal(t_mid, spun_up_state.temp[2])

    def test_cfl_number_positive_and_small(self, small_model, spun_up_state):
        grid = small_model.grid
        cfl = cfl_number(
            grid, spun_up_state, small_model.config.dt,
            small_model.dynamics.gravity_wave_speed,
        )
        assert 0.0 < cfl < 1.0  # the run is CFL-stable

    def test_ensemble_std(self):
        rng = np.random.default_rng(0)
        stack = 2.0 + 0.5 * rng.standard_normal((300, 6, 7))
        sigma = ensemble_std(stack)
        assert sigma.shape == (6, 7)
        assert np.allclose(sigma, 0.5, rtol=0.25)

    def test_ensemble_std_requires_two(self):
        with pytest.raises(ValueError, match="at least 2"):
            ensemble_std(np.zeros((1, 4, 4)))
