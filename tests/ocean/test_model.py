"""Unit tests for PEModel: stepping, packing, stability, stochastic spread."""

import numpy as np
import pytest

from repro.ocean import (
    AtmosphericForcing,
    ModelConfig,
    PEModel,
    StochasticForcing,
)
from repro.ocean.diagnostics import kinetic_energy, max_current_speed


class TestConstruction:
    def test_default_model_builds(self, small_model):
        assert small_model.grid.nz == 4
        assert small_model.layout.size > 0

    def test_rejects_cfl_violating_dt(self, small_monterey_grid):
        with pytest.raises(ValueError, match="CFL"):
            PEModel(grid=small_monterey_grid, config=ModelConfig(dt=1e5))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="dt"):
            ModelConfig(dt=-1.0)
        with pytest.raises(ValueError, match="check_interval"):
            ModelConfig(check_interval=0)


class TestRestState:
    def test_at_rest(self, small_model):
        s = small_model.rest_state()
        assert np.all(s.u == 0) and np.all(s.v == 0) and np.all(s.eta == 0)

    def test_stratified(self, small_model):
        s = small_model.rest_state()
        wet = small_model.grid.mask
        surface = s.temp[0][wet].mean()
        deep = s.temp[-1][wet].mean()
        assert surface > deep  # warm on top

    def test_validate_accepts_rest(self, small_model):
        small_model.rest_state().validate(small_model.grid)

    def test_validate_rejects_nan(self, small_model):
        s = small_model.rest_state()
        jj, ii = np.nonzero(small_model.grid.mask)
        s.u[jj[0], ii[0]] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            s.validate(small_model.grid)

    def test_validate_rejects_wrong_shape(self, small_model):
        s = small_model.rest_state()
        s.u = np.zeros((2, 2))
        with pytest.raises(ValueError, match="expected shape"):
            s.validate(small_model.grid)


class TestStepping:
    def test_time_advances(self, small_model):
        s = small_model.rest_state()
        s2 = small_model.step(s)
        assert s2.time == pytest.approx(small_model.config.dt)

    def test_run_duration_rounds_up(self, small_model):
        s = small_model.rest_state()
        dt = small_model.config.dt
        out = small_model.run(s, duration=2.5 * dt)
        assert out.time == pytest.approx(3 * dt)

    def test_run_zero_duration_is_copy(self, small_model):
        s = small_model.rest_state()
        out = small_model.run(s, 0.0)
        assert out.time == s.time
        assert out is not s

    def test_run_negative_duration_raises(self, small_model):
        with pytest.raises(ValueError, match="duration"):
            small_model.run(small_model.rest_state(), -1.0)

    def test_input_state_not_modified(self, small_model):
        s = small_model.rest_state()
        u0 = s.u.copy()
        small_model.run(s, 10 * small_model.config.dt)
        assert np.array_equal(s.u, u0)

    def test_callback_invoked_each_step(self, small_model):
        seen = []
        small_model.run(
            small_model.rest_state(),
            3 * small_model.config.dt,
            callback=lambda k, st: seen.append(k),
        )
        assert seen == [0, 1, 2]

    def test_wind_spins_up_flow(self, small_model, spun_up_state):
        assert kinetic_energy(small_model.grid, spun_up_state) > 0
        assert max_current_speed(small_model.grid, spun_up_state) > 1e-5

    def test_week_long_run_remains_bounded(self, small_model, spun_up_state):
        s = small_model.run(spun_up_state, 4 * 86400.0)
        wet = small_model.grid.mask
        assert max_current_speed(small_model.grid, s) < 2.0
        assert np.abs(s.eta[wet]).max() < 20.0
        assert 0.0 < s.temp[0][wet].min() < s.temp[0][wet].max() < 25.0

    def test_quiet_model_preserves_climatology(self, small_monterey_grid):
        forcing = AtmosphericForcing(
            small_monterey_grid, mean_tau=0.0, heat_flux_amplitude=0.0
        )
        m = PEModel(grid=small_monterey_grid, forcing=forcing)
        s0 = m.rest_state()
        s1 = m.run(s0, 2 * 86400.0)
        wet = small_monterey_grid.mask
        assert np.allclose(s1.temp[..., wet], s0.temp[..., wet], atol=1e-6)

    def test_blowup_raises_floating_point_error(self, small_monterey_grid):
        m = PEModel(grid=small_monterey_grid)
        s = m.rest_state()
        s.u = m.grid.apply_mask(np.full(m.grid.shape2d, 1e6))
        with pytest.raises(FloatingPointError, match="blow-up"):
            m.run(s, 100 * m.config.dt)


class TestVectorRoundTrip:
    def test_round_trip(self, small_model, spun_up_state):
        vec = small_model.to_vector(spun_up_state)
        back = small_model.from_vector(vec, time=spun_up_state.time)
        for name in ("u", "v", "eta", "temp", "salt"):
            assert np.allclose(getattr(back, name), getattr(spun_up_state, name))
        assert back.time == spun_up_state.time

    def test_vector_size_matches_layout(self, small_model, spun_up_state):
        vec = small_model.to_vector(spun_up_state)
        assert vec.shape == (small_model.layout.size,)

    def test_from_vector_masks_land(self, small_model):
        vec = np.ones(small_model.layout.size)
        state = small_model.from_vector(vec)
        assert np.all(state.u[~small_model.grid.mask] == 0)


class TestStochasticEnsembleSpread:
    def test_members_diverge(self, noisy_model, small_monterey_grid):
        base = noisy_model.run(noisy_model.rest_state(), 86400.0)
        m1 = PEModel(
            grid=small_monterey_grid,
            noise=StochasticForcing(small_monterey_grid, rng=np.random.default_rng(1)),
        )
        m2 = PEModel(
            grid=small_monterey_grid,
            noise=StochasticForcing(small_monterey_grid, rng=np.random.default_rng(2)),
        )
        s1 = m1.run(base, 86400.0)
        s2 = m2.run(base, 86400.0)
        wet = small_monterey_grid.mask
        assert not np.allclose(s1.temp[0][wet], s2.temp[0][wet])

    def test_same_seed_reproduces(self, small_monterey_grid):
        def run_with_seed(seed):
            m = PEModel(
                grid=small_monterey_grid,
                noise=StochasticForcing(
                    small_monterey_grid, rng=np.random.default_rng(seed)
                ),
            )
            return m.run(m.rest_state(), 86400.0)

        a = run_with_seed(7)
        b = run_with_seed(7)
        assert np.array_equal(a.temp, b.temp)
        assert np.array_equal(a.u, b.u)

    def test_with_noise_clone_shares_grid(self, small_model, small_monterey_grid):
        clone = small_model.with_noise(
            StochasticForcing(small_monterey_grid, rng=np.random.default_rng(0))
        )
        assert clone.grid is small_model.grid
        assert clone.noise.is_active()
        assert not small_model.noise.is_active()
