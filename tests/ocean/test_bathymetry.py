"""Unit tests for the synthetic Monterey bathymetry."""

import numpy as np
import pytest

from repro.ocean.bathymetry import (
    SyntheticBathymetry,
    monterey_bathymetry,
    monterey_grid,
)


class TestMontereyBathymetry:
    def test_shapes_and_mask(self):
        b = monterey_bathymetry(nx=42, ny=36)
        assert b.depth.shape == (36, 42)
        assert b.mask.shape == (36, 42)
        assert b.mask.dtype == bool

    def test_coast_on_east_side(self):
        b = monterey_bathymetry()
        ny, nx = b.mask.shape
        # west interior column mostly ocean, east edge all land
        assert b.mask[1:-1, 1].all()
        assert not b.mask[:, -1].any()

    def test_outer_ring_closed(self):
        b = monterey_bathymetry()
        assert not b.mask[0, :].any()
        assert not b.mask[-1, :].any()
        assert not b.mask[:, 0].any()

    def test_bay_indentation(self):
        """The bay pushes the waterline east at the bay-centre latitude."""
        b = monterey_bathymetry(nx=60, ny=50)
        ny = b.mask.shape[0]
        bay_row = int(0.55 * (ny - 1))
        far_row = 3
        bay_extent = np.max(np.nonzero(b.mask[bay_row])[0])
        far_extent = np.max(np.nonzero(b.mask[far_row])[0])
        assert bay_extent > far_extent

    def test_canyon_is_deep(self):
        b = monterey_bathymetry()
        assert b.max_depth > 2000.0

    def test_land_has_zero_depth(self):
        b = monterey_bathymetry()
        assert np.all(b.depth[~b.mask] == 0.0)

    def test_invalid_coast_fraction(self):
        with pytest.raises(ValueError, match="coast_fraction"):
            monterey_bathymetry(coast_fraction=0.1)


class TestSyntheticBathymetryValidation:
    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError, match="non-negative"):
            SyntheticBathymetry(
                depth=np.full((4, 4), -1.0), mask=np.ones((4, 4), dtype=bool)
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes differ"):
            SyntheticBathymetry(
                depth=np.ones((4, 4)), mask=np.ones((5, 4), dtype=bool)
            )


class TestMontereyGrid:
    def test_default_dimensions(self):
        g = monterey_grid()
        assert (g.ny, g.nx, g.nz) == (36, 42, 10)

    def test_levels_stretched_toward_surface(self):
        g = monterey_grid()
        dz = np.diff(g.z_levels)
        assert np.all(dz > 0)
        assert dz[0] < dz[-1]  # finer near the surface

    def test_mask_matches_bathymetry(self):
        g = monterey_grid(nx=30, ny=24)
        b = monterey_bathymetry(nx=30, ny=24)
        assert np.array_equal(g.mask, b.mask)
