"""Tests for the one-way-coupled phytoplankton tracer."""

import numpy as np
import pytest

from repro.ocean.biology import BioParameters, PhytoplanktonModel


@pytest.fixture()
def bio(small_model):
    return PhytoplanktonModel(small_model)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            BioParameters(max_growth_per_day=0.0)
        with pytest.raises(ValueError):
            BioParameters(light_efolding_depth=-1.0)
        with pytest.raises(ValueError):
            BioParameters(background=0.0)


class TestInitialField:
    def test_shape_and_masking(self, bio, small_model):
        p0 = bio.initial_field()
        assert p0.shape == small_model.grid.shape3d
        assert np.all(p0[..., ~small_model.grid.mask] == 0)

    def test_decays_with_depth(self, bio, small_model):
        p0 = bio.initial_field()
        wet = small_model.grid.mask
        assert p0[0][wet].mean() > p0[-1][wet].mean()


class TestStepping:
    def test_concentrations_stay_nonnegative(self, bio, small_model, spun_up_state):
        phyto = bio.initial_field()
        state = spun_up_state
        for _ in range(20):
            phyto = bio.step(phyto, state)
        assert np.all(phyto >= 0)
        assert np.all(np.isfinite(phyto))

    def test_surface_grows_faster_than_deep(self, bio, small_model, spun_up_state):
        phyto = bio.initial_field()
        wet = small_model.grid.mask
        ratio0 = phyto[0][wet].mean() / max(phyto[-1][wet].mean(), 1e-12)
        for _ in range(60):
            phyto = bio.step(phyto, spun_up_state)
        ratio1 = phyto[0][wet].mean() / max(phyto[-1][wet].mean(), 1e-12)
        assert ratio1 > ratio0  # light limitation differentiates the levels

    def test_upwelling_feeds_growth(self, bio, small_model, spun_up_state):
        """Uplifted-interface (eta < 0) regions grow faster."""
        state_up = spun_up_state.copy()
        state_up.eta = small_model.grid.apply_mask(
            np.full(small_model.grid.shape2d, -5.0)
        )
        state_down = spun_up_state.copy()
        state_down.eta = small_model.grid.apply_mask(
            np.full(small_model.grid.shape2d, +5.0)
        )
        p_up = p_down = bio.initial_field()
        for _ in range(50):
            p_up = bio.step(p_up, state_up)
            p_down = bio.step(p_down, state_down)
        wet = small_model.grid.mask
        assert p_up[0][wet].mean() > p_down[0][wet].mean()

    def test_mortality_caps_the_bloom(self, small_model, spun_up_state):
        """With strong mortality, concentrations reach a bounded steady
        state instead of growing without limit."""
        bio = PhytoplanktonModel(
            small_model, BioParameters(mortality_per_day=2.0)
        )
        phyto = bio.initial_field()
        for _ in range(200):
            phyto = bio.step(phyto, spun_up_state)
        assert phyto.max() < 10.0


class TestCoupledRun:
    def test_run_along_returns_consistent_pair(self, bio, small_model, spun_up_state):
        phyto, state = bio.run_along(spun_up_state, 0.5 * 86400.0)
        assert phyto.shape == small_model.grid.shape3d
        assert state.time == pytest.approx(
            spun_up_state.time + 0.5 * 86400.0, rel=0.01
        )
        assert np.all(phyto >= 0)

    def test_surface_chlorophyll_extraction(self, bio):
        phyto = bio.initial_field()
        sfc = bio.surface_chlorophyll(phyto)
        assert np.array_equal(sfc, phyto[0])

    def test_bad_initial_shape_rejected(self, bio, spun_up_state):
        with pytest.raises(ValueError, match="shape"):
            bio.run_along(spun_up_state, 400.0, phyto0=np.zeros((2, 2)))

    def test_coastal_bloom_structure(self, bio, small_model, spun_up_state):
        """After a few days the surface chlorophyll is spatially
        structured (blooms where the physics upwells)."""
        phyto, _ = bio.run_along(spun_up_state, 2 * 86400.0)
        wet = small_model.grid.mask
        sfc = bio.surface_chlorophyll(phyto)[wet]
        assert sfc.std() > 0.01 * sfc.mean()
