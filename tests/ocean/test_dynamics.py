"""Unit tests for the shallow-water dynamics and its operators."""

import numpy as np
import pytest

from repro.ocean.dynamics import ShallowWaterDynamics, ddx, ddy, laplacian
from repro.ocean.grid import OceanGrid, demo_grid


@pytest.fixture()
def grid():
    return demo_grid(nx=20, ny=18, nz=2)


@pytest.fixture()
def dyn(grid):
    return ShallowWaterDynamics(grid)


class TestOperators:
    def test_ddx_linear_exact(self):
        x = np.arange(10) * 2.0
        fld = np.tile(3.0 * x, (6, 1))
        assert np.allclose(ddx(fld, 2.0), 3.0)

    def test_ddy_linear_exact(self):
        y = np.arange(6)[:, None] * 4.0
        fld = np.tile(0.5 * y, (1, 10))
        assert np.allclose(ddy(fld, 4.0), 0.5)

    def test_ddx_3d_broadcast(self):
        fld = np.random.default_rng(0).random((3, 6, 10))
        out = ddx(fld, 1.0)
        assert out.shape == fld.shape
        for k in range(3):
            assert np.allclose(out[k], ddx(fld[k], 1.0))

    def test_laplacian_quadratic_interior(self):
        x = np.arange(12) * 1.0
        y = np.arange(10)[:, None] * 1.0
        fld = x**2 + y**2
        lap = laplacian(fld, 1.0, 1.0)
        assert np.allclose(lap[2:-2, 2:-2], 4.0)

    def test_laplacian_of_constant_is_zero(self):
        assert np.allclose(laplacian(np.full((8, 8), 7.0), 1.0, 1.0), 0.0)


class TestConstruction:
    def test_wave_speed(self, dyn):
        expected = np.sqrt(dyn.g_reduced * dyn.h0)
        assert dyn.gravity_wave_speed == pytest.approx(expected)

    def test_max_stable_dt_scales_with_spacing(self, grid):
        d1 = ShallowWaterDynamics(grid).max_stable_dt()
        g2 = OceanGrid(
            nx=grid.nx, ny=grid.ny, dx=2 * grid.dx, dy=2 * grid.dy,
            z_levels=grid.z_levels, mask=grid.mask,
        )
        d2 = ShallowWaterDynamics(g2).max_stable_dt()
        assert d2 == pytest.approx(2 * d1)

    def test_rejects_nonpositive_h0(self, grid):
        with pytest.raises(ValueError, match="h0"):
            ShallowWaterDynamics(grid, h0=0.0)

    def test_rejects_negative_viscosity(self, grid):
        with pytest.raises(ValueError):
            ShallowWaterDynamics(grid, viscosity=-1.0)


class TestStepDynamics:
    def test_rest_stays_at_rest(self, grid, dyn):
        zeros = np.zeros(grid.shape2d)
        u, v, eta, deta = dyn.step_dynamics(zeros, zeros, zeros, zeros, zeros, 400.0)
        assert np.allclose(u, 0) and np.allclose(v, 0) and np.allclose(eta, 0)
        assert np.allclose(deta, 0)

    def test_gravity_wave_stability(self, grid, dyn):
        """Noise-seeded free waves must decay, not grow (FB scheme)."""
        rng = np.random.default_rng(0)
        eta = grid.apply_mask(rng.standard_normal(grid.shape2d) * 1e-2)
        u = np.zeros(grid.shape2d)
        v = np.zeros(grid.shape2d)
        tau = np.zeros(grid.shape2d)
        sponge = dyn.sponge_factors(400.0)
        amp0 = np.abs(eta).max()
        for _ in range(600):
            u, v, eta, _ = dyn.step_dynamics(u, v, eta, tau, tau, 400.0)
            u, v, eta = dyn.enforce_boundaries(u, v, eta, sponge)
        assert np.all(np.isfinite(eta))
        assert np.abs(eta).max() < 20 * amp0  # bounded (in practice decays)

    def test_wind_accelerates_flow(self, grid, dyn):
        zeros = np.zeros(grid.shape2d)
        tau_x = grid.apply_mask(np.full(grid.shape2d, 0.05))
        u, v, eta, _ = dyn.step_dynamics(zeros, zeros, zeros, tau_x, zeros, 400.0)
        assert u[grid.mask].max() > 0

    def test_land_velocity_zeroed_by_boundaries(self, grid, dyn):
        ones = grid.apply_mask(np.ones(grid.shape2d)) + 1.0  # nonzero on land
        u, v, eta = dyn.enforce_boundaries(ones, ones, ones)
        assert np.all(u[~grid.mask] == 0)
        assert np.all(eta[~grid.mask] == 0)

    def test_mass_conservation_without_sponge(self, grid):
        """Flux-form continuity conserves total volume (no sponge/diffusion)."""
        dyn = ShallowWaterDynamics(grid, eta_diffusivity=0.0)
        rng = np.random.default_rng(1)
        eta = grid.apply_mask(rng.standard_normal(grid.shape2d) * 0.01)
        u = grid.apply_mask(rng.standard_normal(grid.shape2d) * 0.01)
        v = grid.apply_mask(rng.standard_normal(grid.shape2d) * 0.01)
        tau = np.zeros(grid.shape2d)
        vol0 = eta[grid.mask].sum()
        for _ in range(50):
            u, v, eta, _ = dyn.step_dynamics(u, v, eta, tau, tau, 200.0)
            u, v, eta = dyn.enforce_boundaries(u, v, eta)
        # interior divergence rearranges mass; edge one-sided stencils leak
        # only marginally
        assert eta[grid.mask].sum() == pytest.approx(vol0, abs=0.05 * max(abs(vol0), 1.0))


class TestSponge:
    def test_factors_in_unit_interval(self, dyn):
        s = dyn.sponge_factors(400.0)
        assert np.all(s > 0) and np.all(s <= 1.0)

    def test_interior_untouched(self, dyn, grid):
        s = dyn.sponge_factors(400.0, width=3)
        assert np.all(s[8:10, 8:12] == 1.0)

    def test_stronger_at_rim(self, dyn):
        s = dyn.sponge_factors(400.0)
        assert s[5, 0] < s[5, 3] <= 1.0
