"""Unit tests for the discrete-event engine."""

import pytest

from repro.sched.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for k in range(5):
            sim.schedule(2.0, lambda k=k: fired.append(k))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_callbacks_can_schedule(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(sim.now)
            if n > 0:
                sim.schedule(1.0, lambda: chain(n - 1))

        sim.schedule(0.0, lambda: chain(3))
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [5.0]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            Simulator().schedule(-1.0, lambda: None)


class TestCancelAndUntil:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(handle)
        sim.run()
        assert fired == []

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == ["late"]

    def test_run_until_past_all_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_pending_counts_cancellations(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.cancel(h)
        assert sim.pending == 1
