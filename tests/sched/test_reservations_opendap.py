"""Tests for advance reservations (Sec 5.3.4) and OpenDAP input (Sec 5.3.2)."""

import numpy as np
import pytest

from repro.sched import (
    ClusterModel,
    ClusterScheduler,
    EnsembleCampaign,
    JobSpec,
    Node,
    NodeSpec,
    SGEPolicy,
    Simulator,
    TERAGRID_SITES,
)
from repro.sched.gridsites import run_reserved_campaign
from repro.sched.iomodel import IOConfiguration, IOMode


class TestAdvanceReservations:
    def test_reservation_removes_queue_wait(self):
        site = TERAGRID_SITES["ORNL"]
        rng = np.random.default_rng(0)
        reserved = run_reserved_campaign(site, 32, window_seconds=3 * 3600.0, rng=rng)
        unreserved = run_reserved_campaign(site, 32, window_seconds=None, rng=rng)
        assert reserved["queue_wait_s"] == 0.0
        assert unreserved["queue_wait_s"] > 0.0

    def test_tight_window_truncates_the_ensemble(self):
        """A reservation too short for the full ensemble loses members --
        tolerable for ESSE, catastrophic for a parameter scan."""
        site = TERAGRID_SITES["Purdue"]
        # Purdue pemodel ~1107 s on 128 cores; 64 members need one wave
        short = run_reserved_campaign(site, 200, window_seconds=1200.0)
        long = run_reserved_campaign(site, 200, window_seconds=24 * 3600.0)
        assert long["completed"] == 200
        assert short["completed"] < 200
        assert short["completed"] + short["cancelled"] == 200

    def test_without_reservation_results_may_be_late(self):
        """'jobs submitted may very well end up running ... outside the
        useful time window' -- finish time includes the queue wait."""
        site = TERAGRID_SITES["ORNL"]
        rng = np.random.default_rng(3)
        res = run_reserved_campaign(site, 16, window_seconds=None, rng=rng)
        assert res["finish_time_s"] > res["queue_wait_s"]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_reserved_campaign(TERAGRID_SITES["local"], 0, None)


class TestOpenDAPInput:
    def _cluster(self, cores=8):
        return ClusterModel(
            nodes=[Node(NodeSpec(name="n", cores=cores, local_disk_mbps=250.0))],
            nfs_bandwidth_mbps=1250.0,
        )

    def _run(self, mode, **io_kw):
        sim = Simulator()
        io = IOConfiguration(
            mode=mode, pert_input_mb=200.0, pemodel_input_mb=0.0,
            output_mb=0.0, prestage_cost_s=0.0, **io_kw,
        )
        sched = ClusterScheduler(sim, self._cluster(), SGEPolicy(), io)
        jobs = sched.submit(
            [JobSpec(kind="pert", index=i, cpu_seconds=6.21) for i in range(8)]
        )
        sim.run()
        return sim.now, jobs

    def test_opendap_much_slower_than_nfs(self):
        """Hundreds of requests to a central WAN server: 'a less desirable
        solution' than the cluster file server."""
        t_nfs, _ = self._run(IOMode.NFS)
        t_dap, _ = self._run(IOMode.OPENDAP)
        assert t_dap > 3.0 * t_nfs

    def test_opendap_bandwidth_configurable(self):
        t_slow, _ = self._run(IOMode.OPENDAP, opendap_bandwidth_mbps=10.0)
        t_fast, _ = self._run(IOMode.OPENDAP, opendap_bandwidth_mbps=400.0)
        assert t_fast < t_slow

    def test_validation(self):
        with pytest.raises(ValueError, match="opendap"):
            IOConfiguration(opendap_bandwidth_mbps=0.0)

    def test_opendap_campaign_worse_than_prestaged(self):
        campaign_dap = EnsembleCampaign(
            self._cluster(),
            io_config=IOConfiguration(mode=IOMode.OPENDAP, prestage_cost_s=0.0),
        )
        campaign_pre = EnsembleCampaign(
            self._cluster(),
            io_config=IOConfiguration(mode=IOMode.PRESTAGED, prestage_cost_s=0.0),
        )
        s_dap = campaign_dap.run(campaign_dap.ensemble_specs(16))
        s_pre = campaign_pre.run(campaign_pre.ensemble_specs(16))
        assert s_dap.makespan_seconds > s_pre.makespan_seconds
