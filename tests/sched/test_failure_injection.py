"""Infrastructure-level failure injection (paper Sec 4 point 3)."""

import numpy as np
import pytest

from repro.sched import EnsembleCampaign, mseas_cluster
from repro.sched.iomodel import IOConfiguration, IOMode
from repro.sched.schedulers import ClusterScheduler, SGEPolicy
from repro.sched.engine import Simulator
from repro.sched.jobs import JobSpec, JobState
from repro.sched.resources import ClusterModel, Node, NodeSpec


def quick_io():
    return IOConfiguration(
        mode=IOMode.PRESTAGED, prestage_cost_s=0.0,
        pert_input_mb=0.0, pemodel_input_mb=0.0, output_mb=0.0,
    )


class TestSchedulerFailures:
    def test_failed_jobs_marked_and_counted(self):
        sim = Simulator()
        cluster = ClusterModel(nodes=[Node(NodeSpec(name="n", cores=4))])
        sched = ClusterScheduler(
            sim, cluster, SGEPolicy(), quick_io(),
            failure_rate=0.5, failure_rng=np.random.default_rng(0),
        )
        jobs = sched.submit(
            [JobSpec(kind="acoustic", index=i, cpu_seconds=10.0) for i in range(200)]
        )
        sim.run()
        states = [j.state for j in jobs]
        n_failed = states.count(JobState.FAILED)
        n_done = states.count(JobState.DONE)
        assert n_failed + n_done == 200
        assert 60 < n_failed < 140  # ~50% +- statistical slack

    def test_failed_pert_cancels_its_pemodel(self):
        sim = Simulator()
        cluster = ClusterModel(nodes=[Node(NodeSpec(name="n", cores=2))])
        sched = ClusterScheduler(
            sim, cluster, SGEPolicy(), quick_io(),
            failure_rate=0.999999, failure_rng=np.random.default_rng(1),
        )
        jobs = sched.submit(
            [
                JobSpec(kind="pert", index=0, cpu_seconds=5.0),
                JobSpec(kind="pemodel", index=0, cpu_seconds=50.0,
                        depends_on=("pert", 0)),
            ]
        )
        sim.run()
        assert jobs[0].state is JobState.FAILED
        assert jobs[1].state is JobState.CANCELLED

    def test_cores_released_after_failure(self):
        sim = Simulator()
        node = Node(NodeSpec(name="n", cores=1))
        sched = ClusterScheduler(
            sim, ClusterModel(nodes=[node]), SGEPolicy(), quick_io(),
            failure_rate=0.999999, failure_rng=np.random.default_rng(2),
        )
        sched.submit(
            [JobSpec(kind="acoustic", index=i, cpu_seconds=5.0) for i in range(5)]
        )
        sim.run()
        assert node.busy_cores == 0

    def test_validation(self):
        sim = Simulator()
        cluster = ClusterModel(nodes=[Node(NodeSpec(name="n", cores=1))])
        with pytest.raises(ValueError, match="failure_rate"):
            ClusterScheduler(sim, cluster, SGEPolicy(), quick_io(), failure_rate=1.5)


class TestCampaignFailures:
    def test_campaign_tolerates_flaky_substrate(self):
        """A few percent of lost members barely moves the makespan -- the
        statistical coverage survives (Sec 4 point 3)."""
        campaign = EnsembleCampaign(mseas_cluster(), io_config=quick_io())
        clean = campaign.run(campaign.ensemble_specs(300))
        flaky = campaign.run(
            campaign.ensemble_specs(300), failure_rate=0.05, failure_seed=0
        )
        assert flaky.failed_count > 0
        surviving = flaky.job_count
        assert surviving >= 0.85 * clean.job_count
        assert flaky.makespan_seconds < 1.1 * clean.makespan_seconds

    def test_clean_campaign_reports_zero_failures(self):
        campaign = EnsembleCampaign(mseas_cluster(), io_config=quick_io())
        stats = campaign.run(campaign.ensemble_specs(20))
        assert stats.failed_count == 0
