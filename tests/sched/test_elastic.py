"""Tests for demand-driven EC2 provisioning (paper Sec 5.4.1, UniCloud)."""

import pytest

from repro.sched import (
    ClusterModel,
    ClusterScheduler,
    JobSpec,
    JobState,
    Node,
    NodeSpec,
    SGEPolicy,
    Simulator,
)
from repro.sched.elastic import ElasticEC2Pool
from repro.sched.iomodel import IOConfiguration, IOMode


def fast_io():
    return IOConfiguration(
        mode=IOMode.PRESTAGED, prestage_cost_s=0.0,
        pert_input_mb=0.0, pemodel_input_mb=0.0, output_mb=0.0,
    )


def local_cluster(cores=4):
    return ClusterModel(
        nodes=[Node(NodeSpec(name="local", cores=cores, local_disk_mbps=250.0))]
    )


def run_burst(n_jobs=100, cpu=1500.0, pool_kwargs=None):
    sim = Simulator()
    sched = ClusterScheduler(sim, local_cluster(), SGEPolicy(), fast_io())
    pool = ElasticEC2Pool(sim, sched, "c1.xlarge", **(pool_kwargs or {}))
    sched.submit(
        [JobSpec(kind="pemodel", index=i, cpu_seconds=cpu) for i in range(n_jobs)]
    )
    sim.run()
    done = sum(1 for j in sched.jobs.values() if j.state is JobState.DONE)
    return sim, sched, pool, done


class TestElasticPool:
    def test_all_jobs_complete_and_pool_drains(self):
        sim, sched, pool, done = run_burst()
        assert done == 100
        assert pool.running_count == 0  # everything released at the end
        assert pool.boots == pool.terminations

    def test_elasticity_beats_fixed_local(self):
        sim_e, _, pool, done = run_burst()
        sim_f = Simulator()
        sched_f = ClusterScheduler(sim_f, local_cluster(), SGEPolicy(), fast_io())
        sched_f.submit(
            [JobSpec(kind="pemodel", index=i, cpu_seconds=1500.0) for i in range(100)]
        )
        sim_f.run()
        assert sim_e.now < 0.3 * sim_f.now

    def test_respects_instance_cap(self):
        _, _, pool, _ = run_burst(pool_kwargs={"max_instances": 2})
        assert pool.boots <= 2

    def test_no_boot_without_backlog(self):
        """A handful of short jobs on free local cores boots nothing."""
        sim = Simulator()
        sched = ClusterScheduler(sim, local_cluster(cores=8), SGEPolicy(), fast_io())
        pool = ElasticEC2Pool(sim, sched)
        sched.submit(
            [JobSpec(kind="pert", index=i, cpu_seconds=5.0) for i in range(4)]
        )
        sim.run()
        assert pool.boots == 0

    def test_cost_accounts_ceil_hours(self):
        _, _, pool, _ = run_burst()
        # every boot is billed at least one full hour
        assert pool.total_cost() >= pool.boots * pool.instance_type.hourly_usd
        # and the bill is finite/positive when instances ran
        if pool.boots:
            assert pool.total_cost() > 0

    def test_boot_latency_delays_capacity(self):
        _, _, fast_pool, _ = run_burst(pool_kwargs={"boot_latency_s": 1.0})
        sim_slow, _, slow_pool, _ = run_burst(
            pool_kwargs={"boot_latency_s": 1800.0}
        )
        # with a long boot latency the first extra capacity arrives late
        first_fast = min(i.boot_time for i in fast_pool.instances)
        first_slow = min(i.boot_time for i in slow_pool.instances)
        assert first_slow > first_fast

    def test_validation(self):
        sim = Simulator()
        sched = ClusterScheduler(sim, local_cluster(), SGEPolicy(), fast_io())
        with pytest.raises(ValueError):
            ElasticEC2Pool(sim, sched, max_instances=0)
        with pytest.raises(ValueError):
            ElasticEC2Pool(sim, sched, backlog_per_core=0.0)
        with pytest.raises(KeyError):
            ElasticEC2Pool(sim, sched, instance_type="warp9.xxl")
