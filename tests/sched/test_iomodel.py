"""Unit tests for the processor-sharing bandwidth model."""

import pytest

from repro.sched.engine import Simulator
from repro.sched.iomodel import IOConfiguration, IOMode, SharedBandwidth


class TestSharedBandwidth:
    def test_single_transfer_full_rate(self):
        sim = Simulator()
        bw = SharedBandwidth(sim, capacity_mbps=100.0)
        done = []
        bw.transfer(500.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_two_equal_transfers_share(self):
        sim = Simulator()
        bw = SharedBandwidth(sim, capacity_mbps=100.0)
        done = []
        bw.transfer(500.0, lambda: done.append(("a", sim.now)))
        bw.transfer(500.0, lambda: done.append(("b", sim.now)))
        sim.run()
        # both run at 50 MB/s -> finish together at t = 10
        assert done[0][1] == pytest.approx(10.0)
        assert done[1][1] == pytest.approx(10.0)

    def test_late_joiner_slows_first(self):
        sim = Simulator()
        bw = SharedBandwidth(sim, capacity_mbps=100.0)
        done = {}
        bw.transfer(500.0, lambda: done.__setitem__("a", sim.now))
        sim.schedule(2.5, lambda: bw.transfer(500.0, lambda: done.__setitem__("b", sim.now)))
        sim.run()
        # a: 250 MB at full rate, then shares; a finishes at 2.5 + 250/50 = 7.5
        assert done["a"] == pytest.approx(7.5)
        # b: shares until 7.5 (250 MB done), then full rate: 7.5 + 2.5 = 10
        assert done["b"] == pytest.approx(10.0)

    def test_conservation_of_volume(self):
        """Total transfer time equals volume / capacity when saturated."""
        sim = Simulator()
        bw = SharedBandwidth(sim, capacity_mbps=50.0)
        finish = []
        for _ in range(7):
            bw.transfer(100.0, lambda: finish.append(sim.now))
        sim.run()
        assert max(finish) == pytest.approx(700.0 / 50.0)

    def test_zero_size_completes_immediately(self):
        sim = Simulator()
        bw = SharedBandwidth(sim, capacity_mbps=10.0)
        done = []
        bw.transfer(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="capacity"):
            SharedBandwidth(sim, 0.0)
        bw = SharedBandwidth(sim, 10.0)
        with pytest.raises(ValueError, match="size"):
            bw.transfer(-1.0, lambda: None)

    def test_active_count_and_rate(self):
        sim = Simulator()
        bw = SharedBandwidth(sim, capacity_mbps=100.0)
        assert bw.current_rate() == 100.0
        bw.transfer(1000.0, lambda: None)
        bw.transfer(1000.0, lambda: None)
        assert bw.active_count == 2
        assert bw.current_rate() == pytest.approx(50.0)


class TestIOConfiguration:
    def test_input_by_kind(self):
        io = IOConfiguration(pert_input_mb=10.0, pemodel_input_mb=20.0)
        assert io.input_mb("pert") == 10.0
        assert io.input_mb("pemodel") == 20.0
        assert io.input_mb("acoustic") == 0.0

    def test_output_pert_is_local(self):
        io = IOConfiguration(output_mb=11.0)
        assert io.output_mb_for("pert") == 0.0
        assert io.output_mb_for("pemodel") == 11.0

    def test_validation(self):
        with pytest.raises(ValueError, match="pert_input_mb"):
            IOConfiguration(pert_input_mb=-1.0)

    def test_modes(self):
        assert IOConfiguration(mode=IOMode.NFS).mode is IOMode.NFS
