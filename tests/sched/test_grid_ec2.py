"""Tests for the TeraGrid site models (Table 1) and EC2 (Table 2, costs)."""

import numpy as np
import pytest

from repro.sched.cluster import (
    REFERENCE_PEMODEL_SECONDS,
    REFERENCE_PERT_SECONDS,
)
from repro.sched.ec2 import (
    EC2_INSTANCE_TYPES,
    EC2CostModel,
    EC2InstanceType,
    EC2PriceBook,
    ec2_virtual_cluster,
)
from repro.sched.gridsites import TERAGRID_SITES, GridSite, run_site_benchmark


class TestTable1Calibration:
    """Reproduce Table 1: pert/pemodel time-to-completion per site."""

    @pytest.mark.parametrize(
        "site,pert,pemodel",
        [
            ("ORNL", 67.83, 1823.99),
            ("Purdue", 6.25, 1107.40),
            ("local", 6.21, 1531.33),
        ],
    )
    def test_site_times(self, site, pert, pemodel):
        result = run_site_benchmark(TERAGRID_SITES[site])
        assert result["pert"] == pytest.approx(pert, rel=1e-3)
        assert result["pemodel"] == pytest.approx(pemodel, rel=1e-3)

    def test_ornl_penalty_is_filesystem(self):
        """ORNL's slow pert is mostly an I/O penalty, not CPU speed."""
        ornl = TERAGRID_SITES["ORNL"]
        assert ornl.pert_io_penalty_s > 50.0

    def test_ordering_matches_paper(self):
        """Purdue beats local on pemodel; ORNL is slowest."""
        times = {k: run_site_benchmark(s)["pemodel"] for k, s in TERAGRID_SITES.items()}
        assert times["Purdue"] < times["local"] < times["ORNL"]

    def test_queue_wait_sampling(self):
        rng = np.random.default_rng(0)
        site = TERAGRID_SITES["ORNL"]
        waits = [site.sample_queue_wait(rng) for _ in range(2000)]
        assert np.mean(waits) == pytest.approx(site.queue_wait_mean_s, rel=0.1)
        assert TERAGRID_SITES["local"].sample_queue_wait(rng) == 0.0

    def test_site_cluster_respects_job_cap(self):
        site = GridSite(
            name="x", processor="p", speed_factor=1.0, cores=100, max_user_jobs=10
        )
        assert site.cluster().total_cores == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSite(name="x", processor="p", speed_factor=0.0)


class TestTable2Calibration:
    """Reproduce Table 2: EC2 instance pert/pemodel times."""

    @pytest.mark.parametrize(
        "name,pert,pemodel,cores",
        [
            ("m1.small", 13.53, 2850.14, 0.5),
            ("m1.large", 9.33, 1817.13, 2),
            ("m1.xlarge", 9.14, 1860.81, 4),
            ("c1.medium", 9.80, 1008.11, 2),
            ("c1.xlarge", 6.67, 1030.42, 8),
        ],
    )
    def test_catalogue(self, name, pert, pemodel, cores):
        itype = EC2_INSTANCE_TYPES[name]
        assert itype.pert_seconds == pert
        assert itype.pemodel_seconds == pemodel
        assert itype.effective_cores == cores

    def test_c1_instances_beat_local_on_compute(self):
        assert EC2_INSTANCE_TYPES["c1.xlarge"].speed_factor > 1.0
        assert EC2_INSTANCE_TYPES["m1.small"].speed_factor < 1.0

    def test_half_core_schedulable_as_one(self):
        assert EC2_INSTANCE_TYPES["m1.small"].schedulable_cores == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EC2InstanceType("x", "p", 0.0, 1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            EC2InstanceType("x", "p", 1.0, 1.0, 1.0, 0.0)


class TestCostModel:
    def test_paper_example_exact(self):
        """Sec 5.4.2: 1.5 GB in + 960 x 11 MB out + 2 h x 20 x $0.8 = $33.95."""
        assert EC2CostModel().paper_example() == pytest.approx(33.95, abs=0.01)

    def test_reserved_discount(self):
        cm = EC2CostModel()
        on_demand = cm.paper_example()
        reserved = cm.paper_example(reserved=True)
        # compute share drops by >3x; transfers unchanged
        assert reserved < on_demand
        compute_od = 2 * 20 * 0.8
        compute_res = on_demand - reserved
        assert compute_res > compute_od * (1 - 1 / 3.0)

    def test_hour_rounding_like_cellphone(self):
        """1 h 1 s bills as 2 hours."""
        cm = EC2CostModel()
        itype = EC2_INSTANCE_TYPES["m1.small"]
        one = cm.compute_cost(itype, 1, 1.0)
        just_over = cm.compute_cost(itype, 1, 1.0 + 1.0 / 3600.0)
        assert just_over == pytest.approx(2 * one)

    def test_transfer_cost(self):
        cm = EC2CostModel()
        assert cm.transfer_cost(1.5, 10.56) == pytest.approx(
            1.5 * 0.10 + 10.56 * 0.17
        )

    def test_validation(self):
        cm = EC2CostModel()
        itype = EC2_INSTANCE_TYPES["m1.small"]
        with pytest.raises(ValueError):
            cm.compute_cost(itype, 0, 1.0)
        with pytest.raises(ValueError):
            cm.compute_cost(itype, 1, 0.0)
        with pytest.raises(ValueError):
            cm.transfer_cost(-1.0, 0.0)
        with pytest.raises(ValueError):
            EC2PriceBook(reserved_discount_factor=0.5)


class TestVirtualCluster:
    def test_shape(self):
        cluster = ec2_virtual_cluster("c1.xlarge", 20)
        assert cluster.total_cores == 160  # the paper's 20-instance cap
        assert cluster.name == "ec2-c1.xlarge"

    def test_m1_small_gets_one_slow_core(self):
        cluster = ec2_virtual_cluster("m1.small", 2)
        assert cluster.total_cores == 2
        assert cluster.nodes[0].spec.speed_factor < 0.6

    def test_unknown_type(self):
        with pytest.raises(KeyError, match="unknown instance"):
            ec2_virtual_cluster("m7.turbo", 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ec2_virtual_cluster("m1.small", 0)
