"""Tests for the output-return strategies (paper Sec 5.3.2)."""

import numpy as np
import pytest

from repro.sched.transfer import (
    OutputReturnPlan,
    WANModel,
    simulate_output_return,
)


def wave(n=200, start=1000.0, width=30.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.sort(rng.uniform(start, start + width, n))


class TestWANModel:
    def test_congestion_factor_bounds(self):
        wan = WANModel(gateway_concurrency_limit=8, congestion_alpha=0.1)
        assert wan.congestion_factor(1) == 1.0
        assert wan.congestion_factor(8) == 1.0
        assert 0.0 < wan.congestion_factor(100) < 1.0
        assert wan.congestion_factor(100) < wan.congestion_factor(20)

    def test_validation(self):
        with pytest.raises(ValueError):
            WANModel(bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            WANModel(setup_seconds=-1.0)
        with pytest.raises(ValueError):
            WANModel(gateway_concurrency_limit=0)
        with pytest.raises(ValueError):
            WANModel(congestion_alpha=-0.1)


class TestPlans:
    def test_all_files_arrive(self):
        times = wave(100)
        for plan in OutputReturnPlan:
            report = simulate_output_return(times, 11.0, plan)
            assert report.all_home_time >= times[-1]
            assert report.mean_file_delay > 0

    def test_push_floods_the_gateway(self):
        times = wave(300, width=10.0)
        push = simulate_output_return(times, 11.0, OutputReturnPlan.PUSH)
        pull = simulate_output_return(times, 11.0, OutputReturnPlan.PULL)
        assert push.peak_concurrent_streams > 10 * pull.peak_concurrent_streams

    def test_pull_beats_push_under_synchronized_bursts(self):
        """The paper: pull 'can pace the file transfers ... and perform
        much better' than the push burst."""
        times = wave(400, width=20.0)
        push = simulate_output_return(times, 11.0, OutputReturnPlan.PUSH)
        pull = simulate_output_return(times, 11.0, OutputReturnPlan.PULL)
        assert pull.all_home_time < push.all_home_time
        assert pull.mean_file_delay < push.mean_file_delay

    def test_pull_respects_concurrency(self):
        times = wave(100)
        report = simulate_output_return(
            times, 11.0, OutputReturnPlan.PULL, pull_concurrency=3
        )
        assert report.peak_concurrent_streams <= 3

    def test_two_stage_batches_transfers(self):
        times = wave(100)
        report = simulate_output_return(
            times, 11.0, OutputReturnPlan.TWO_STAGE, batch_size=25
        )
        assert report.transfers_started == 4

    def test_two_stage_flushes_partial_tail(self):
        times = wave(37)
        report = simulate_output_return(
            times, 11.0, OutputReturnPlan.TWO_STAGE, batch_size=10
        )
        assert report.transfers_started == 4  # 3 full + 1 tail of 7

    def test_spread_completions_make_push_fine(self):
        """Without synchronization the push burst never forms."""
        times = np.linspace(0.0, 5000.0, 100)
        push = simulate_output_return(times, 11.0, OutputReturnPlan.PUSH)
        assert push.peak_concurrent_streams <= 5

    def test_validation(self):
        with pytest.raises(ValueError, match="completion"):
            simulate_output_return([], 11.0, OutputReturnPlan.PUSH)
        with pytest.raises(ValueError, match="file_mb"):
            simulate_output_return([1.0], 0.0, OutputReturnPlan.PUSH)
        with pytest.raises(ValueError, match="pull_concurrency"):
            simulate_output_return(
                [1.0], 1.0, OutputReturnPlan.PULL, pull_concurrency=0
            )


class TestMultiCoreJobs:
    """The Sec 7 nested-MPI-job extension of the scheduler."""

    def test_nested_specs_occupy_cores(self):
        from repro.sched import EnsembleCampaign, ClusterModel, Node, NodeSpec
        from repro.sched.iomodel import IOConfiguration

        cluster = ClusterModel(
            nodes=[Node(NodeSpec(name="n", cores=4, local_disk_mbps=250.0))]
        )
        campaign = EnsembleCampaign(
            cluster,
            io_config=IOConfiguration(
                pert_input_mb=0.0, pemodel_input_mb=0.0, output_mb=0.0,
                prestage_cost_s=0.0,
            ),
            task_times={"pert": 1.0, "pemodel": 100.0, "acoustic": 10.0},
        )
        specs = campaign.nested_ensemble_specs(4, mpi_tasks=2)
        assert all(s.cores == 2 for s in specs if s.kind == "pemodel")
        stats = campaign.run(specs)
        # 4 pemodels x 2 cores on 4 cores -> two waves of two
        two_task_runtime = 100.0 / (2 * 0.9)
        assert stats.makespan_seconds >= 2 * two_task_runtime

    def test_mpi_speedup_shortens_each_job(self):
        from repro.sched import EnsembleCampaign, ClusterModel, Node, NodeSpec

        cluster = ClusterModel(nodes=[Node(NodeSpec(name="n", cores=4))])
        campaign = EnsembleCampaign(
            cluster, task_times={"pert": 1.0, "pemodel": 100.0, "acoustic": 1.0}
        )
        serial_spec = campaign.ensemble_specs(1)[1]
        mpi_spec = campaign.nested_ensemble_specs(1, mpi_tasks=2)[1]
        assert mpi_spec.cpu_seconds < serial_spec.cpu_seconds

    def test_backfill_avoids_starvation(self):
        """A 4-core job that doesn't fit must not block 1-core jobs."""
        from repro.sched import (
            ClusterModel,
            ClusterScheduler,
            JobSpec,
            JobState,
            Node,
            NodeSpec,
            SGEPolicy,
            Simulator,
        )
        from repro.sched.iomodel import IOConfiguration

        sim = Simulator()
        cluster = ClusterModel(
            nodes=[Node(NodeSpec(name="n", cores=2, local_disk_mbps=250.0))]
        )
        sched = ClusterScheduler(
            sim, cluster, SGEPolicy(),
            IOConfiguration(pert_input_mb=0.0, pemodel_input_mb=0.0,
                            output_mb=0.0, prestage_cost_s=0.0),
        )
        big = JobSpec(kind="pemodel", index=0, cpu_seconds=10.0, cores=4)
        small = JobSpec(kind="pemodel", index=1, cpu_seconds=10.0, cores=1)
        jobs = sched.submit([big, small])
        sim.run(until=100.0)
        # the 4-core job can never run on a 2-core node; the small one must
        assert jobs[1].state is JobState.DONE
        assert jobs[0].state is JobState.QUEUED

    def test_spec_validation(self):
        from repro.sched import JobSpec

        with pytest.raises(ValueError, match="cores"):
            JobSpec(kind="pemodel", index=0, cpu_seconds=1.0, cores=0)

    def test_campaign_validation(self):
        from repro.sched import EnsembleCampaign, ClusterModel, Node, NodeSpec

        campaign = EnsembleCampaign(
            ClusterModel(nodes=[Node(NodeSpec(name="n", cores=2))])
        )
        with pytest.raises(ValueError, match="mpi_tasks"):
            campaign.nested_ensemble_specs(2, mpi_tasks=0)
        with pytest.raises(ValueError, match="efficiency"):
            campaign.nested_ensemble_specs(2, parallel_efficiency=0.0)
