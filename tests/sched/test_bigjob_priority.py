"""Tests for big-job-priority scheduling and singleton batching (Sec 5.3.4)."""

import pytest

from repro.sched import (
    BigJobPriorityPolicy,
    ClusterModel,
    ClusterScheduler,
    EnsembleCampaign,
    JobSpec,
    JobState,
    Node,
    NodeSpec,
    SGEPolicy,
    Simulator,
)
from repro.sched.iomodel import IOConfiguration, IOMode


def quick_io():
    return IOConfiguration(
        mode=IOMode.PRESTAGED, prestage_cost_s=0.0,
        pert_input_mb=0.0, pemodel_input_mb=0.0, output_mb=0.0,
    )


def wide_cluster(nodes=4, cores=8):
    return ClusterModel(
        nodes=[Node(NodeSpec(name=f"n{k}", cores=cores)) for k in range(nodes)]
    )


def run_mixed_workload(policy, n_singletons=16, n_wide=6):
    """A queued singleton stream with wide parallel jobs arriving behind.

    FIFO serves the singletons in arrival order; a big-job-priority
    scheduler reorders the wide jobs to the front and reserves capacity
    for them, starving the singletons.
    """
    sim = Simulator()
    sched = ClusterScheduler(sim, wide_cluster(), policy, quick_io())
    specs = []
    for i in range(n_singletons):
        specs.append(JobSpec(kind="acoustic", index=i, cpu_seconds=600.0))
    for i in range(n_wide):
        specs.append(JobSpec(kind="mpi", index=i, cpu_seconds=600.0, cores=8))
    jobs = sched.submit(specs)
    sim.run()
    singles = [j for j in jobs if j.spec.kind == "acoustic"]
    wides = [j for j in jobs if j.spec.kind == "mpi"]
    return sim, singles, wides


class TestBigJobPriority:
    def test_wide_jobs_jump_the_queue(self):
        _, singles, wides = run_mixed_workload(BigJobPriorityPolicy())
        mean_single_wait = sum(j.wait_seconds for j in singles) / len(singles)
        mean_wide_wait = sum(j.wait_seconds for j in wides) / len(wides)
        assert mean_wide_wait < mean_single_wait

    def test_singletons_penalized_vs_fifo(self):
        """Under big-job priority the singleton stream waits longer than
        under plain FIFO+backfill (SGE)."""
        _, singles_big, _ = run_mixed_workload(BigJobPriorityPolicy())
        _, singles_sge, _ = run_mixed_workload(SGEPolicy())
        wait_big = sum(j.wait_seconds for j in singles_big) / len(singles_big)
        wait_sge = sum(j.wait_seconds for j in singles_sge) / len(singles_sge)
        assert wait_big > wait_sge

    def test_everything_completes_eventually(self):
        _, singles, wides = run_mixed_workload(BigJobPriorityPolicy())
        assert all(j.state is JobState.DONE for j in singles + wides)

    def test_unplaceable_wide_job_does_not_deadlock(self):
        sim = Simulator()
        sched = ClusterScheduler(
            sim, wide_cluster(nodes=1, cores=2), BigJobPriorityPolicy(), quick_io()
        )
        jobs = sched.submit(
            [
                JobSpec(kind="mpi", index=0, cpu_seconds=10.0, cores=16),
                JobSpec(kind="acoustic", index=0, cpu_seconds=10.0),
            ]
        )
        sim.run()
        assert jobs[1].state is JobState.DONE  # the singleton ran
        assert jobs[0].state is JobState.QUEUED  # the impossible one did not

    def test_validation(self):
        with pytest.raises(ValueError):
            BigJobPriorityPolicy(dispatch_latency_s=-1.0)


class TestBatchedSingletons:
    def test_batching_restores_throughput_under_bigjob_policy(self):
        """The paper's remedy: package singletons as wide batch jobs."""
        campaign = EnsembleCampaign(
            wide_cluster(), policy=BigJobPriorityPolicy(), io_config=quick_io()
        )
        n_tasks = 64

        def makespan(specs, extra_wide):
            sim = Simulator()
            sched = ClusterScheduler(
                sim, wide_cluster(), BigJobPriorityPolicy(), quick_io()
            )
            wide = [
                JobSpec(kind="mpi", index=i, cpu_seconds=600.0, cores=8)
                for i in range(extra_wide)
            ]
            jobs = sched.submit(wide + specs)
            sim.run()
            ours = [j for j in jobs if j.spec.kind.startswith("acoustic")]
            return max(j.end_time for j in ours)

        singles = campaign.acoustic_specs(n_tasks)
        batched = campaign.batched_acoustic_specs(n_tasks, batch_size=8)
        t_singles = makespan(singles, extra_wide=6)
        t_batched = makespan(batched, extra_wide=6)
        assert t_batched < t_singles

    def test_batch_core_counts(self):
        campaign = EnsembleCampaign(wide_cluster())
        specs = campaign.batched_acoustic_specs(20, batch_size=8)
        assert [s.cores for s in specs] == [8, 8, 4]
        assert all(s.kind == "acoustic_batch" for s in specs)

    def test_validation(self):
        campaign = EnsembleCampaign(wide_cluster())
        with pytest.raises(ValueError):
            campaign.batched_acoustic_specs(0)
        with pytest.raises(ValueError):
            campaign.batched_acoustic_specs(5, batch_size=0)
