"""Tests for MyCluster-style federation of local/Grid/EC2 pools."""

import numpy as np
import pytest

from repro.sched import (
    EnsembleCampaign,
    TERAGRID_SITES,
    ec2_virtual_cluster,
    mseas_cluster,
)
from repro.sched.federation import federate, pool_sizes
from repro.sched.iomodel import IOConfiguration, IOMode


class TestFederate:
    def test_merges_cores(self):
        local = mseas_cluster(available_cores=50)
        ec2 = ec2_virtual_cluster("c1.xlarge", 5)
        fed = federate([local, ec2])
        assert fed.total_cores == 50 + 40

    def test_node_names_carry_provenance(self):
        fed = federate([mseas_cluster(available_cores=4),
                        ec2_virtual_cluster("m1.large", 2)])
        pools = pool_sizes(fed)
        assert pools == {"mseas": 4, "ec2-m1.large": 4}

    def test_bandwidth_defaults_to_weakest_member(self):
        local = mseas_cluster()  # 1250 MB/s
        ec2 = ec2_virtual_cluster("m1.large", 2)  # 125 MB/s
        fed = federate([local, ec2])
        assert fed.nfs_bandwidth_mbps == 125.0

    def test_bandwidth_override(self):
        fed = federate([mseas_cluster(available_cores=4)],
                       nfs_bandwidth_mbps=500.0)
        assert fed.nfs_bandwidth_mbps == 500.0

    def test_requires_members(self):
        with pytest.raises(ValueError, match="member"):
            federate([])


class TestFederatedCampaign:
    def _io(self):
        return IOConfiguration(
            mode=IOMode.PRESTAGED, prestage_cost_s=0.0,
            pert_input_mb=0.0, pemodel_input_mb=0.0, output_mb=0.0,
        )

    def test_federation_shortens_the_campaign(self):
        local = mseas_cluster(available_cores=60)
        n = 300
        alone = EnsembleCampaign(local, io_config=self._io())
        stats_alone = alone.run(alone.ensemble_specs(n))
        fed = federate(
            [mseas_cluster(available_cores=60), ec2_virtual_cluster("c1.xlarge", 10)]
        )
        together = EnsembleCampaign(fed, io_config=self._io())
        stats_fed = together.run(together.ensemble_specs(n))
        assert stats_fed.makespan_seconds < stats_alone.makespan_seconds

    def test_out_of_order_completion_across_pools(self):
        """Sec 5.3.3: 'perturbation 900 may very well finish well before
        number 700' on disparate hosts."""
        # slow local pool + fast EC2 pool
        fed = federate(
            [
                TERAGRID_SITES["ORNL"].cluster(),  # slow
                ec2_virtual_cluster("c1.xlarge", 2),  # fast
            ]
        )
        campaign = EnsembleCampaign(fed, io_config=self._io())
        # submit more members than cores so late indices land on fast nodes
        from repro.sched.engine import Simulator
        from repro.sched.schedulers import ClusterScheduler, SGEPolicy

        sim = Simulator()
        sched = ClusterScheduler(sim, fed, SGEPolicy(), self._io())
        sched.submit(campaign.ensemble_specs(120))
        sim.run()
        pemodels = [
            j for (kind, _), j in sched.jobs.items() if kind == "pemodel"
        ]
        end_by_index = {j.spec.index: j.end_time for j in pemodels}
        indices = sorted(end_by_index)
        finishing_order = sorted(indices, key=lambda i: end_by_index[i])
        # completion order is not index order
        assert finishing_order != indices
