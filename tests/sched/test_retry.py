"""Retry/backoff and fault injection in the campaign simulator."""

import pytest

from repro.sched.engine import Simulator
from repro.sched.iomodel import IOConfiguration, IOMode
from repro.sched.jobs import JobSpec, JobState
from repro.sched.resources import ClusterModel, Node, NodeSpec
from repro.sched.schedulers import ClusterScheduler, CondorPolicy, SGEPolicy
from repro.workflow import FaultInjector, RetryPolicy


def quick_io():
    return IOConfiguration(
        mode=IOMode.PRESTAGED, prestage_cost_s=0.0,
        pert_input_mb=0.0, pemodel_input_mb=0.0, output_mb=0.0,
    )


def small_cluster(cores=4):
    return ClusterModel(nodes=[Node(NodeSpec(name="n", cores=cores))])


def specs(n, kind="pemodel", cpu=10.0):
    return [JobSpec(kind=kind, index=i, cpu_seconds=cpu) for i in range(n)]


class TestSchedulerRetry:
    def test_injected_crashes_healed_by_retries(self):
        sim = Simulator()
        sched = ClusterScheduler(
            sim, small_cluster(), SGEPolicy(), quick_io(),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=1.0),
            fault_injector=FaultInjector(crash_rate=0.2, seed=0),
        )
        jobs = sched.submit(specs(40))
        sim.run()
        assert all(j.state is JobState.DONE for j in jobs)
        assert sched.n_retried > 0
        # retried jobs carry their attempt number
        assert any(j.attempt > 1 for j in jobs)

    def test_without_retry_policy_crashes_are_terminal(self):
        sim = Simulator()
        sched = ClusterScheduler(
            sim, small_cluster(), SGEPolicy(), quick_io(),
            fault_injector=FaultInjector(crash_rate=0.2, seed=0),
        )
        jobs = sched.submit(specs(40))
        sim.run()
        assert any(j.state is JobState.FAILED for j in jobs)
        assert sched.n_retried == 0

    def test_same_seed_reproduces_campaign(self):
        def run():
            sim = Simulator()
            sched = ClusterScheduler(
                sim, small_cluster(), SGEPolicy(), quick_io(),
                retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=1.0),
                fault_injector=FaultInjector(
                    crash_rate=0.15, stall_rate=0.1, stall_seconds=30.0, seed=4
                ),
            )
            jobs = sched.submit(specs(30))
            sim.run()
            return (
                sim.now,
                sched.n_retried,
                tuple(j.state for j in jobs),
                sched.fault_injector.fault_sequence(),
            )

        assert run() == run()

    def test_backoff_delays_resubmission(self):
        sim = Simulator()
        backoff = 500.0
        sched = ClusterScheduler(
            sim, small_cluster(1), SGEPolicy(), quick_io(),
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_base_s=backoff, jitter=0.0
            ),
            # crash_rate=1 would fail both attempts; rely on the injector's
            # per-attempt draw instead: seed 0 crashes index 9 attempt 1 only
            fault_injector=FaultInjector(crash_rate=0.2, seed=0),
        )
        [job] = sched.submit([JobSpec(kind="pemodel", index=9, cpu_seconds=10.0)])
        sim.run()
        assert job.state is JobState.DONE
        assert job.attempt == 2
        # the second attempt could not have started before the backoff
        assert job.start_time >= backoff

    def test_stall_fault_extends_runtime(self):
        stall = 300.0

        def makespan(stall_rate):
            sim = Simulator()
            sched = ClusterScheduler(
                sim, small_cluster(), SGEPolicy(), quick_io(),
                fault_injector=FaultInjector(
                    stall_rate=stall_rate, stall_seconds=stall, seed=2
                ),
            )
            jobs = sched.submit(specs(16))
            sim.run()
            assert all(j.state is JobState.DONE for j in jobs)
            return sim.now

        assert makespan(0.5) > makespan(0.0) + stall / 2

    def test_transient_submit_failure_delays_enqueue(self):
        sim = Simulator()
        sched = ClusterScheduler(
            sim, small_cluster(), SGEPolicy(), quick_io(),
            retry_policy=RetryPolicy(backoff_base_s=100.0, jitter=0.0),
            # seed 3: indices 3, 6, 7, 11 fail their first submit try
            fault_injector=FaultInjector(submit_failure_rate=0.4, seed=3),
        )
        jobs = sched.submit(specs(16))
        sim.run()
        assert all(j.state is JobState.DONE for j in jobs)
        delayed = [j for j in jobs if j.spec.index in (3, 6, 7, 11)]
        assert all(j.start_time >= 100.0 for j in delayed)

    def test_condor_negotiation_resumes_for_retried_jobs(self):
        # a retried job arriving after negotiation went idle must restart
        # the cycle, not hang in the queue forever
        sim = Simulator()
        sched = ClusterScheduler(
            sim, small_cluster(1), CondorPolicy(), quick_io(),
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_base_s=1000.0, jitter=0.0
            ),
            fault_injector=FaultInjector(crash_rate=0.2, seed=0),
        )
        [job] = sched.submit([JobSpec(kind="pemodel", index=9, cpu_seconds=10.0)])
        sim.run()
        assert job.state is JobState.DONE
        assert job.attempt == 2

    def test_terminal_failure_aborts_dependents_once(self):
        sim = Simulator()
        sched = ClusterScheduler(
            sim, small_cluster(2), SGEPolicy(), quick_io(),
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=1.0),
            # pert index 9 crashes on attempts 1 AND 2 under seed 0
            fault_injector=FaultInjector(crash_rate=0.2, seed=0),
        )
        jobs = sched.submit(
            [
                JobSpec(kind="pert", index=9, cpu_seconds=5.0),
                JobSpec(kind="pemodel", index=9, cpu_seconds=50.0,
                        depends_on=("pert", 9)),
            ]
        )
        sim.run()
        assert jobs[0].state is JobState.FAILED
        assert jobs[0].attempt == 2  # both attempts consumed
        assert jobs[1].state is JobState.CANCELLED

    def test_retry_resets_timing_metrics(self):
        sim = Simulator()
        sched = ClusterScheduler(
            sim, small_cluster(1), SGEPolicy(), quick_io(),
            retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=10.0),
            fault_injector=FaultInjector(crash_rate=0.2, seed=0),
        )
        [job] = sched.submit([JobSpec(kind="pemodel", index=9, cpu_seconds=10.0)])
        sim.run()
        # metrics describe the successful attempt, not accumulated history
        assert job.runtime_seconds == pytest.approx(10.0)
        assert job.cpu_utilization == pytest.approx(1.0)


class TestSimulatorStep:
    def test_step_processes_single_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        assert sim.step() and fired == ["a"] and sim.now == 1.0
        assert sim.step() and fired == ["a", "b"] and sim.now == 2.0
        assert not sim.step()

    def test_step_skips_cancelled(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.cancel(h)
        assert sim.step()
        assert fired == ["b"]
