"""Tests for scheduler policies, the cluster scheduler and campaigns."""

import pytest

from repro.sched import (
    ClusterModel,
    ClusterScheduler,
    CondorPolicy,
    EnsembleCampaign,
    JobSpec,
    JobState,
    Node,
    NodeSpec,
    SGEPolicy,
    Simulator,
    mseas_cluster,
)
from repro.sched.iomodel import IOConfiguration, IOMode


def small_cluster(cores=4, speed=1.0):
    return ClusterModel(
        nodes=[Node(NodeSpec(name="n0", cores=cores, speed_factor=speed,
                             local_disk_mbps=250.0))],
        nfs_bandwidth_mbps=100.0,
    )


def quick_io(mode=IOMode.PRESTAGED):
    return IOConfiguration(
        mode=mode, pert_input_mb=10.0, pemodel_input_mb=10.0,
        output_mb=1.0, prestage_cost_s=0.0,
    )


class TestNodeAccounting:
    def test_acquire_release(self):
        node = Node(NodeSpec(name="n", cores=2))
        node.acquire()
        node.acquire()
        assert node.free_cores == 0
        with pytest.raises(RuntimeError, match="oversubscribed"):
            node.acquire()
        node.release()
        assert node.free_cores == 1

    def test_release_guard(self):
        node = Node(NodeSpec(name="n", cores=1))
        with pytest.raises(RuntimeError, match="released too many"):
            node.release()

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(name="n", cores=0)
        with pytest.raises(ValueError):
            NodeSpec(name="n", cores=1, speed_factor=0.0)


class TestClusterScheduler:
    def test_jobs_complete(self):
        sim = Simulator()
        sched = ClusterScheduler(sim, small_cluster(), SGEPolicy(), quick_io())
        jobs = sched.submit(
            [JobSpec(kind="pemodel", index=i, cpu_seconds=100.0) for i in range(6)]
        )
        sim.run()
        assert all(j.state is JobState.DONE for j in jobs)

    def test_cores_limit_concurrency(self):
        """With 4 cores, 8 equal jobs finish in two waves."""
        sim = Simulator()
        sched = ClusterScheduler(sim, small_cluster(cores=4), SGEPolicy(), quick_io())
        jobs = sched.submit(
            [JobSpec(kind="pemodel", index=i, cpu_seconds=100.0) for i in range(8)]
        )
        sim.run()
        ends = sorted(j.end_time for j in jobs)
        assert ends[3] < ends[4]  # two distinct waves
        assert sim.now < 230.0  # but not serialized (8 x 100 s)

    def test_dependency_ordering(self):
        sim = Simulator()
        sched = ClusterScheduler(sim, small_cluster(), SGEPolicy(), quick_io())
        specs = [
            JobSpec(kind="pert", index=0, cpu_seconds=5.0),
            JobSpec(kind="pemodel", index=0, cpu_seconds=50.0, depends_on=("pert", 0)),
        ]
        jobs = sched.submit(specs)
        sim.run()
        pert, pemodel = jobs
        assert pemodel.start_time >= pert.end_time

    def test_speed_factor_scales_compute(self):
        def run_on(speed):
            sim = Simulator()
            sched = ClusterScheduler(
                sim, small_cluster(speed=speed), SGEPolicy(), quick_io()
            )
            sched.submit([JobSpec(kind="pemodel", index=0, cpu_seconds=100.0)])
            sim.run()
            return sched.jobs[("pemodel", 0)].cpu_busy_seconds

        assert run_on(2.0) == pytest.approx(run_on(1.0) / 2.0)

    def test_duplicate_submission_rejected(self):
        sim = Simulator()
        sched = ClusterScheduler(sim, small_cluster(), SGEPolicy(), quick_io())
        spec = JobSpec(kind="pert", index=0, cpu_seconds=1.0)
        sched.submit([spec])
        with pytest.raises(ValueError, match="duplicate"):
            sched.submit([spec])

    def test_cancel_queued(self):
        sim = Simulator()
        sched = ClusterScheduler(sim, small_cluster(cores=1), SGEPolicy(), quick_io())
        jobs = sched.submit(
            [JobSpec(kind="pemodel", index=i, cpu_seconds=1000.0) for i in range(5)]
        )
        sim.run(until=50.0)  # first job running, rest queued
        cancelled = sched.cancel_queued()
        sim.run()
        assert cancelled == 4
        states = sorted(j.state.value for j in jobs)
        assert states.count("cancelled") == 4
        assert states.count("done") == 1

    def test_completion_callbacks(self):
        sim = Simulator()
        sched = ClusterScheduler(sim, small_cluster(), SGEPolicy(), quick_io())
        seen = []
        sched.on_complete(lambda job: seen.append(job.spec.index))
        sched.submit([JobSpec(kind="pert", index=i, cpu_seconds=1.0) for i in range(3)])
        sim.run()
        assert sorted(seen) == [0, 1, 2]


class TestPolicies:
    def _makespan(self, policy, n_jobs=8, cores=2):
        sim = Simulator()
        sched = ClusterScheduler(sim, small_cluster(cores=cores), policy, quick_io())
        sched.submit(
            [JobSpec(kind="pemodel", index=i, cpu_seconds=300.0) for i in range(n_jobs)]
        )
        sim.run()
        return sim.now

    def test_condor_slower_than_sge(self):
        """The paper's 10-20% Condor gap, from negotiation-cycle waits."""
        sge = self._makespan(SGEPolicy())
        condor = self._makespan(CondorPolicy())
        assert condor > sge
        assert condor / sge < 2.0

    def test_tuned_condor_approaches_sge(self):
        slow = self._makespan(CondorPolicy(negotiation_interval_s=300.0))
        tuned = self._makespan(CondorPolicy(negotiation_interval_s=10.0))
        assert tuned < slow

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SGEPolicy(dispatch_latency_s=-1.0)
        with pytest.raises(ValueError):
            CondorPolicy(negotiation_interval_s=0.0)


class TestNFSContention:
    def test_nfs_mode_slower_than_prestaged(self):
        def makespan(mode):
            sim = Simulator()
            io = IOConfiguration(
                mode=mode, pert_input_mb=200.0, pemodel_input_mb=200.0,
                output_mb=1.0, prestage_cost_s=0.0,
            )
            sched = ClusterScheduler(sim, small_cluster(cores=4), SGEPolicy(), io)
            sched.submit(
                [JobSpec(kind="pert", index=i, cpu_seconds=10.0) for i in range(8)]
            )
            sim.run()
            return sim.now

        assert makespan(IOMode.NFS) > makespan(IOMode.PRESTAGED)

    def test_nfs_mode_lowers_cpu_utilization(self):
        def mean_util(mode):
            sim = Simulator()
            io = IOConfiguration(
                mode=mode, pert_input_mb=200.0, pemodel_input_mb=200.0,
                output_mb=0.0, prestage_cost_s=0.0,
            )
            sched = ClusterScheduler(sim, small_cluster(cores=4), SGEPolicy(), io)
            jobs = sched.submit(
                [JobSpec(kind="pert", index=i, cpu_seconds=10.0) for i in range(8)]
            )
            sim.run()
            return sum(j.cpu_utilization for j in jobs) / len(jobs)

        assert mean_util(IOMode.NFS) < mean_util(IOMode.PRESTAGED)


class TestCampaign:
    def test_small_ensemble_campaign(self):
        camp = EnsembleCampaign(
            small_cluster(cores=4),
            io_config=quick_io(),
            task_times={"pert": 5.0, "pemodel": 50.0, "acoustic": 10.0},
        )
        stats = camp.run(camp.ensemble_specs(6))
        assert stats.job_count == 12
        assert stats.makespan_seconds > 0
        assert set(stats.cpu_utilization_by_kind) == {"pert", "pemodel"}

    def test_spec_validation(self):
        camp = EnsembleCampaign(small_cluster())
        with pytest.raises(ValueError):
            camp.ensemble_specs(0)
        with pytest.raises(ValueError):
            camp.acoustic_specs(0)

    def test_mseas_cluster_shape(self):
        cluster = mseas_cluster(available_cores=210)
        assert cluster.total_cores == 210
        assert cluster.nodes[0].spec.name.startswith("opt285")

    def test_paper_calibration_600_members(self):
        """Sec 5.2.1: ~77 min all-local vs ~86 min NFS-input (shape)."""
        local = EnsembleCampaign(
            mseas_cluster(), io_config=IOConfiguration(mode=IOMode.PRESTAGED)
        )
        nfs = EnsembleCampaign(
            mseas_cluster(), io_config=IOConfiguration(mode=IOMode.NFS)
        )
        s_local = local.run(local.ensemble_specs(600))
        s_nfs = nfs.run(nfs.ensemble_specs(600))
        assert 70.0 < s_local.makespan_minutes < 85.0
        assert 80.0 < s_nfs.makespan_minutes < 95.0
        assert s_nfs.makespan_minutes > s_local.makespan_minutes
        # pert CPU utilization jumps ~20% -> ~100% with prestaging
        assert s_nfs.cpu_utilization_by_kind["pert"] < 0.3
        assert s_local.cpu_utilization_by_kind["pert"] > 0.7
