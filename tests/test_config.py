"""Tests for the declarative experiment configuration."""

import json

import pytest

from repro.config import ConfigError, ExperimentConfig


class TestValidation:
    def test_empty_document_uses_defaults(self):
        cfg = ExperimentConfig.from_dict({})
        assert cfg.domain.nx == 42
        assert cfg.esse.max_ensemble_size == 128

    def test_partial_overrides(self):
        cfg = ExperimentConfig.from_dict(
            {"domain": {"nx": 20, "ny": 16, "nz": 3}, "esse": {"root_seed": 7}}
        )
        assert cfg.domain.nx == 20
        assert cfg.esse.root_seed == 7
        assert cfg.model.dt == 400.0  # untouched section keeps defaults

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError, match="unknown sections"):
            ExperimentConfig.from_dict({"oceanography": {}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            ExperimentConfig.from_dict({"domain": {"resolution": 9}})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError, match="domain"):
            ExperimentConfig.from_dict({"domain": {"nx": 1}})
        with pytest.raises(ConfigError, match="esse"):
            ExperimentConfig.from_dict({"esse": {"initial_ensemble_size": 1}})
        with pytest.raises(ConfigError, match="model"):
            ExperimentConfig.from_dict({"model": {"dt": -1.0}})
        with pytest.raises(ConfigError, match="timeline"):
            ExperimentConfig.from_dict({"timeline": {"n_periods": 0}})
        with pytest.raises(ConfigError, match="network"):
            ExperimentConfig.from_dict({"observations": {"network": "argo"}})

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigError, match="dict"):
            ExperimentConfig.from_dict("nx=20")
        with pytest.raises(ConfigError, match="mapping"):
            ExperimentConfig.from_dict({"domain": [1, 2]})


class TestRoundTrip:
    def test_dict_round_trip(self):
        cfg = ExperimentConfig.from_dict({"domain": {"nx": 24, "ny": 20, "nz": 4}})
        again = ExperimentConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_json_file_round_trip(self, tmp_path):
        cfg = ExperimentConfig.from_dict(
            {"esse": {"max_ensemble_size": 64}, "timeline": {"n_periods": 3}}
        )
        path = tmp_path / "experiment.json"
        cfg.save(path)
        loaded = ExperimentConfig.load(path)
        assert loaded == cfg
        # document is valid JSON with explicit defaults
        doc = json.loads(path.read_text())
        assert doc["esse"]["max_ensemble_size"] == 64
        assert doc["domain"]["nx"] == 42

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"domain": {"nx": 0}}')
        with pytest.raises(ConfigError):
            ExperimentConfig.load(path)


class TestBuilders:
    @pytest.fixture(scope="class")
    def cfg(self):
        return ExperimentConfig.from_dict(
            {
                "domain": {"nx": 16, "ny": 14, "nz": 3},
                "esse": {"initial_ensemble_size": 4, "max_ensemble_size": 8,
                         "max_subspace_rank": 6, "root_seed": 5},
                "timeline": {"period_hours": 6.0, "n_periods": 2},
            }
        )

    def test_build_model(self, cfg):
        model = cfg.build_model()
        assert (model.grid.ny, model.grid.nx, model.grid.nz) == (14, 16, 3)
        assert model.config.dt == 400.0

    def test_build_driver(self, cfg):
        model = cfg.build_model()
        driver = cfg.build_driver(model)
        assert driver.config.max_ensemble_size == 8
        assert driver.root_seed == 5

    def test_build_network(self, cfg):
        model = cfg.build_model()
        net = cfg.build_network(model)
        assert len(net.instruments) >= 3

    def test_build_timeline(self, cfg):
        tl = cfg.build_timeline(t0=100.0)
        assert tl.n_periods == 2
        assert tl.period_length == 6.0 * 3600.0
        assert tl.t0 == 100.0

    def test_configured_experiment_runs(self, cfg):
        """End to end: the document drives one working forecast."""
        from repro.core import synthetic_initial_subspace

        model = cfg.build_model()
        driver = cfg.build_driver(model)
        background = model.run(model.rest_state(), 4 * model.config.dt)
        subspace = synthetic_initial_subspace(
            model.layout, model.grid.shape2d, model.grid.nz, rank=6, seed=0
        )
        forecast = driver.forecast(
            background, subspace, duration=4 * model.config.dt
        )
        assert forecast.ensemble_size >= 4


class TestEngineSection:
    def test_defaults(self):
        cfg = ExperimentConfig.from_dict({})
        assert cfg.engine.backend == "batched"
        assert cfg.engine.n_workers == 4
        assert cfg.engine.batch_size == 8

    def test_backend_selection(self):
        cfg = ExperimentConfig.from_dict(
            {"engine": {"backend": "processes", "n_workers": 2}}
        )
        assert cfg.engine.backend == "processes"
        assert cfg.engine.n_workers == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            ExperimentConfig.from_dict({"engine": {"backend": "gpu"}})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError, match="n_workers"):
            ExperimentConfig.from_dict({"engine": {"n_workers": 0}})
        with pytest.raises(ConfigError, match="batch_size"):
            ExperimentConfig.from_dict({"engine": {"batch_size": 0}})

    def test_round_trips(self):
        cfg = ExperimentConfig.from_dict(
            {"engine": {"backend": "threads", "n_workers": 3}}
        )
        assert ExperimentConfig.from_dict(cfg.to_dict()) == cfg

    def test_build_engine_runs(self, tmp_path):
        """The document drives one working engine run end to end."""
        from repro.core import PerturbationGenerator, synthetic_initial_subspace
        from repro.core.ensemble import EnsembleRunner

        cfg = ExperimentConfig.from_dict(
            {
                "domain": {"nx": 16, "ny": 14, "nz": 3},
                "esse": {"initial_ensemble_size": 4, "max_ensemble_size": 4,
                         "max_subspace_rank": 4, "root_seed": 5},
                "engine": {"backend": "batched", "batch_size": 2},
            }
        )
        model = cfg.build_model()
        background = model.run(model.rest_state(), 6 * model.config.dt)
        subspace = synthetic_initial_subspace(
            model.layout, model.grid.shape2d, model.grid.nz, rank=4, seed=0
        )
        runner = EnsembleRunner(
            model,
            PerturbationGenerator(model.layout, subspace, root_seed=5),
            duration=2 * model.config.dt,
            root_seed=5,
        )
        engine = cfg.build_engine(runner, tmp_path / "engine")
        assert engine.backend.name == "batched"
        assert engine.backend.batch_size == 2
        assert engine.config.max_ensemble_size == 4
        result = engine.run(background)
        assert result.backend == "batched"
        assert result.ensemble_size == 4


class TestAssimilationSection:
    def test_defaults(self):
        cfg = ExperimentConfig.from_dict({})
        asm = cfg.assimilation
        assert asm.backend == "global"
        assert asm.taper == "gaspari_cohn"
        assert (asm.tile_ny, asm.tile_nx) == (16, 16)
        assert asm.inflation == "multiplicative"

    def test_invalid_values_rejected(self):
        bad = [
            {"backend": "letkf"},
            {"tile_ny": 0},
            {"taper": "boxcar"},
            {"radius": 0.0},
            {"halo": -1.0},
            {"inflation": "relaxation"},
            {"inflation_factor": 0.5},
            {"adaptive_inflation_max": 0.5, "inflation_factor": 1.0},
            {"local_energy_floor": 1.0},
            {"n_workers": 0},
            {"max_attempts": 0},
        ]
        for overrides in bad:
            with pytest.raises(ConfigError, match="assimilation"):
                ExperimentConfig.from_dict({"assimilation": overrides})

    def test_round_trips(self):
        doc = {
            "assimilation": {
                "backend": "tiled",
                "tile_ny": 8,
                "tile_nx": 6,
                "taper": "cutoff",
                "radius": 5.0,
                "local_energy_floor": 0.05,
            }
        }
        cfg = ExperimentConfig.from_dict(doc)
        again = ExperimentConfig.from_dict(cfg.to_dict())
        assert again.assimilation == cfg.assimilation

    def test_global_backend_builds_default_analysis(self):
        from repro.core.assimilation import ESSEAnalysis

        cfg = ExperimentConfig.from_dict(
            {"domain": {"nx": 12, "ny": 10, "nz": 2}}
        )
        model = cfg.build_model()
        assert cfg.build_analysis(model) is None
        driver = cfg.build_driver(model)
        assert type(driver.analysis) is ESSEAnalysis

    def test_tiled_backend_builds_tiled_analysis(self):
        from repro.core.assimilation import TiledESSEAnalysis
        from repro.core.localization import CutoffTaper

        cfg = ExperimentConfig.from_dict(
            {
                "domain": {"nx": 12, "ny": 10, "nz": 2},
                "assimilation": {
                    "backend": "tiled",
                    "tile_ny": 5,
                    "tile_nx": 6,
                    "taper": "cutoff",
                    "radius": 4.0,
                    "halo": 3.0,
                    "n_workers": 2,
                },
            }
        )
        model = cfg.build_model()
        driver = cfg.build_driver(model)
        analysis = driver.analysis
        assert isinstance(analysis, TiledESSEAnalysis)
        assert analysis.decomposition.grid_shape == (10, 12)
        assert analysis.decomposition.tile_shape == (5, 6)
        assert isinstance(analysis.taper, CutoffTaper)
        assert analysis.halo == 3.0

    def test_tiled_driver_assimilates(self):
        """End to end: the tiled backend runs one configured cycle."""
        from repro.core import synthetic_initial_subspace
        from repro.obs.operators import Observation, ObservationOperator

        cfg = ExperimentConfig.from_dict(
            {
                "domain": {"nx": 12, "ny": 10, "nz": 2},
                "esse": {"initial_ensemble_size": 4, "max_ensemble_size": 4,
                         "max_subspace_rank": 4, "root_seed": 3},
                "assimilation": {"backend": "tiled", "tile_ny": 5,
                                 "tile_nx": 6, "radius": 6.0},
            }
        )
        model = cfg.build_model()
        driver = cfg.build_driver(model)
        background = model.run(model.rest_state(), 2 * model.config.dt)
        subspace = synthetic_initial_subspace(
            model.layout, model.grid.shape2d, model.grid.nz, rank=4, seed=0
        )
        forecast = driver.forecast(
            background, subspace, duration=2 * model.config.dt
        )
        operator = ObservationOperator(
            model.layout,
            [
                Observation(field="temp", level=0, j=2, i=3, value=12.0,
                            noise_std=0.5),
                Observation(field="temp", level=1, j=7, i=9, value=11.0,
                            noise_std=0.5),
            ],
        )
        analysis = driver.assimilate(forecast, operator)
        assert analysis.mean.shape == (model.layout.size,)
        assert analysis.subspace.rank >= 1
