"""Integration test: the full ESSE cycle reduces error in a twin experiment.

This is the repository's end-to-end correctness check for the paper's
algorithm (Fig 2): truth drawn from the initial error subspace, ensemble
uncertainty forecast with adaptive sizing, assimilation of an AOSN-II-like
observation batch, and verification that the analysis beats the forecast.
"""

import numpy as np
import pytest

from repro.core import (
    ESSEConfig,
    ESSEDriver,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.obs.network import aosn2_network
from repro.ocean import PEModel, StochasticForcing
from repro.ocean.bathymetry import monterey_grid


@pytest.fixture(scope="module")
def twin():
    grid = monterey_grid(nx=20, ny=16, nz=3)
    model = PEModel(grid=grid)
    layout = model.layout
    background = model.run(model.rest_state(), 2 * 86400.0)

    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=12, seed=1
    )
    # Truth = background + a draw from the same subspace, run with noise.
    perturber = PerturbationGenerator(layout, subspace, root_seed=31337)
    x_truth0 = perturber.member_state(model.to_vector(background), 0)
    truth_model = PEModel(
        grid=grid, noise=StochasticForcing(grid, rng=np.random.default_rng(999))
    )
    duration = 0.5 * 86400.0
    truth = truth_model.run(
        model.from_vector(x_truth0, time=background.time), duration
    )

    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=8,
            max_ensemble_size=32,
            convergence_tolerance=0.9,
            max_subspace_rank=12,
        ),
        root_seed=42,
    )
    forecast = driver.forecast(background, subspace, duration=duration)
    network = aosn2_network(grid, layout, rng=np.random.default_rng(7))
    batch = network.observe(truth)
    analysis = driver.assimilate(forecast, batch.operator)
    return {
        "model": model,
        "layout": layout,
        "grid": grid,
        "truth": truth,
        "forecast": forecast,
        "analysis": analysis,
        "batch": batch,
    }


class TestForecastStage:
    def test_all_members_survive(self, twin):
        assert twin["forecast"].failure_count == 0

    def test_similarity_history_recorded(self, twin):
        history = twin["forecast"].convergence_history
        assert len(history) >= 1
        assert all(0.0 <= rho <= 1.0 for _, rho in history)

    def test_spread_covers_truth_error(self, twin):
        """The predicted uncertainty must be the right order of magnitude."""
        model, layout = twin["model"], twin["layout"]
        x_truth = model.to_vector(twin["truth"])
        x_fc = model.to_vector(twin["forecast"].central)
        err2 = np.sum(layout.normalize(x_truth - x_fc) ** 2)
        predicted = twin["forecast"].subspace.total_variance
        assert 0.05 * err2 < predicted < 20.0 * err2


class TestAnalysisStage:
    def test_observation_fit_improves(self, twin):
        an = twin["analysis"]
        assert an.analysis_rms < an.innovation_rms

    def test_total_state_error_decreases(self, twin):
        model, layout = twin["model"], twin["layout"]
        x_truth = model.to_vector(twin["truth"])
        e_fc = np.linalg.norm(
            layout.normalize(model.to_vector(twin["forecast"].central) - x_truth)
        )
        e_an = np.linalg.norm(layout.normalize(twin["analysis"].mean - x_truth))
        assert e_an < e_fc

    def test_observed_field_error_decreases(self, twin):
        model, layout = twin["model"], twin["layout"]
        x_truth = model.to_vector(twin["truth"])
        x_fc = model.to_vector(twin["forecast"].central)
        sl = layout.slice_of("temp")
        e_fc = np.sqrt(np.mean((x_fc[sl] - x_truth[sl]) ** 2))
        e_an = np.sqrt(np.mean((twin["analysis"].mean[sl] - x_truth[sl]) ** 2))
        assert e_an < e_fc

    def test_posterior_variance_reduced(self, twin):
        assert (
            twin["analysis"].subspace.total_variance
            < twin["forecast"].subspace.total_variance
        )

    def test_analysis_state_is_valid_model_state(self, twin):
        model = twin["model"]
        state = model.from_vector(twin["analysis"].mean)
        state.validate(model.grid)


class TestUncertaintyFields:
    def test_sst_uncertainty_field_positive_over_ocean(self, twin):
        """The Figs 5-6 quantity: pointwise forecast std-dev of SST."""
        layout, grid = twin["layout"], twin["grid"]
        var = twin["forecast"].subspace.variance_field()
        # de-normalize the variance: multiply by scale^2
        var_phys = var * np.asarray(layout.scales) ** 2
        sst_sigma = np.sqrt(layout.view(var_phys, "temp")[0])
        assert np.all(sst_sigma[grid.mask] > 0)
        assert 0.01 < sst_sigma[grid.mask].max() < 5.0
