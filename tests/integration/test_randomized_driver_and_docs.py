"""Cross-cutting integration checks: randomized-SVD driver, doc coverage."""

from pathlib import Path

import numpy as np
import pytest

from repro.core import ESSEConfig, ESSEDriver, similarity_coefficient, synthetic_initial_subspace
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid

REPO = Path(__file__).resolve().parent.parent.parent


class TestRandomizedSVDDriver:
    def test_driver_with_randomized_svd_matches_lapack(self):
        grid = monterey_grid(nx=16, ny=14, nz=3)
        model = PEModel(grid=grid)
        background = model.run(model.rest_state(), 86400.0)
        subspace = synthetic_initial_subspace(
            model.layout, grid.shape2d, grid.nz, rank=8, seed=0
        )

        def forecast(method):
            driver = ESSEDriver(
                model,
                ESSEConfig(
                    initial_ensemble_size=8,
                    max_ensemble_size=16,
                    convergence_tolerance=1.0,
                    max_subspace_rank=8,
                    svd_method=method,
                ),
                root_seed=3,
            )
            return driver.forecast(background, subspace, duration=6 * 400.0)

        exact = forecast("lapack")
        sketched = forecast("randomized")
        rho = similarity_coefficient(exact.subspace, sketched.subspace)
        assert rho > 0.99  # same members, same dominant subspace
        assert np.allclose(
            exact.subspace.sigmas, sketched.subspace.sigmas, rtol=0.05
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="svd_method"):
            ESSEConfig(svd_method="scalapack")


class TestDocumentationConsistency:
    def test_every_bench_file_documented(self):
        """EXPERIMENTS.md must mention every bench module (no silent
        experiments -- DESIGN.md's 'no silent caps' spirit applies to the
        docs too)."""
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("bench_*.py")):
            assert bench.stem in experiments, (
                f"{bench.name} is not referenced in EXPERIMENTS.md"
            )

    def test_every_example_documented_in_readme(self):
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, (
                f"{example.name} is not referenced in README.md"
            )

    def test_design_lists_all_subpackages(self):
        design = (REPO / "DESIGN.md").read_text()
        src = REPO / "src" / "repro"
        for pkg in sorted(p.name for p in src.iterdir() if p.is_dir()):
            if pkg.startswith("__"):
                continue
            assert f"repro.{pkg}" in design, (
                f"subpackage repro.{pkg} missing from DESIGN.md"
            )
