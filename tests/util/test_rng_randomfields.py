"""Unit tests for RNG streams and Gaussian random fields."""

import numpy as np
import pytest

from repro.util.randomfields import GaussianRandomField2D
from repro.util.rng import SeedSequenceStream, member_rng


class TestSeedStreams:
    def test_same_key_same_stream(self):
        s = SeedSequenceStream(42)
        a = s.rng("pert", 3).standard_normal(5)
        b = SeedSequenceStream(42).rng("pert", 3).standard_normal(5)
        assert np.array_equal(a, b)

    def test_different_index_different_stream(self):
        s = SeedSequenceStream(42)
        a = s.rng("pert", 3).standard_normal(5)
        b = s.rng("pert", 4).standard_normal(5)
        assert not np.array_equal(a, b)

    def test_different_purpose_different_stream(self):
        s = SeedSequenceStream(42)
        a = s.rng("pert", 3).standard_normal(5)
        b = s.rng("model", 3).standard_normal(5)
        assert not np.array_equal(a, b)

    def test_string_hash_is_stable(self):
        """Keys must not depend on Python's salted hash()."""
        w1 = SeedSequenceStream(0)._key_words(("pert", 7))
        w2 = SeedSequenceStream(0)._key_words(("pert", 7))
        assert w1 == w2

    def test_rejects_bad_key_parts(self):
        with pytest.raises(TypeError, match="int or str"):
            SeedSequenceStream(0).rng(("tuple",))

    def test_member_rng_rejects_negative(self):
        with pytest.raises(ValueError):
            member_rng(0, -1)

    def test_member_rng_independent_of_call_order(self):
        a1 = member_rng(9, 700).standard_normal(4)
        b1 = member_rng(9, 900).standard_normal(4)
        b2 = member_rng(9, 900).standard_normal(4)
        a2 = member_rng(9, 700).standard_normal(4)
        assert np.array_equal(a1, a2)
        assert np.array_equal(b1, b2)


class TestGaussianRandomField:
    def test_shape_and_determinism(self):
        f1 = GaussianRandomField2D((12, 16), 3.0, seed=1).sample()
        f2 = GaussianRandomField2D((12, 16), 3.0, seed=1).sample()
        assert f1.shape == (12, 16)
        assert np.array_equal(f1, f2)

    def test_unit_variance_approximately(self):
        grf = GaussianRandomField2D((32, 32), 4.0, seed=0)
        fields = grf.sample_many(300)
        assert fields.std() == pytest.approx(1.0, rel=0.1)

    def test_correlation_increases_with_length_scale(self):
        def neighbour_corr(ls):
            grf = GaussianRandomField2D((32, 32), ls, seed=3)
            f = grf.sample_many(200)
            a = f[:, :, :-1].ravel()
            b = f[:, :, 1:].ravel()
            return np.corrcoef(a, b)[0, 1]

        assert neighbour_corr(6.0) > neighbour_corr(1.0) > neighbour_corr(0.0) - 0.1

    def test_zero_length_scale_is_white(self):
        grf = GaussianRandomField2D((32, 32), 0.0, seed=2)
        f = grf.sample_many(200)
        a = f[:, :, :-1].ravel()
        b = f[:, :, 1:].ravel()
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.05

    def test_sample_many_matches_count(self):
        grf = GaussianRandomField2D((8, 8), 2.0, seed=4)
        assert grf.sample_many(5).shape == (5, 8, 8)
        assert grf.sample_many(0).shape == (0, 8, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianRandomField2D((0, 5), 1.0)
        with pytest.raises(ValueError):
            GaussianRandomField2D((5, 5), -1.0)
        with pytest.raises(ValueError):
            GaussianRandomField2D((5, 5), 1.0, seed=1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            GaussianRandomField2D((5, 5), 1.0).sample_many(-1)
