"""Unit tests for the runtime concurrency sanitizer.

Threaded scenarios use barriers/joins to make the schedules
deterministic: the lockset algorithm reports on *locking discipline*,
not on winning an actual race, so a single forced interleaving decides
each verdict.

The fixtures here are deliberately racy/deadlocky -- that is what the
sanitizer under test must detect -- so the static lock rules are off for
this file:
# repro-lint: disable-file=REP003,REP006,REP007 -- deliberate bad-pattern fixtures
"""

import threading

import pytest

from repro.telemetry.events import from_sanitizer_reports
from repro.util.sanitizer import (
    LockOrderReport,
    RaceReport,
    SanitizedLock,
    SanitizedRLock,
    is_active,
    new_lock,
    new_rlock,
    sanitized,
    track,
)


def run_in_thread(fn, name):
    t = threading.Thread(target=fn, name=name)
    t.start()
    t.join()


class TestActivation:
    def test_inactive_by_default(self):
        assert not is_active()

    def test_factories_return_raw_locks_when_inactive(self):
        assert type(new_lock()) is type(threading.Lock())
        assert type(new_rlock()) is type(threading.RLock())

    def test_factories_return_sanitized_locks_when_active(self):
        with sanitized():
            assert isinstance(new_lock(), SanitizedLock)
            assert isinstance(new_rlock(), SanitizedRLock)

    def test_track_is_a_noop_when_inactive(self):
        class Obj:
            pass

        obj = Obj()
        obj._items = []
        assert track(obj, "_items") is obj
        assert type(obj) is Obj

    def test_sanitized_restores_previous_state(self):
        with sanitized():
            assert is_active()
        assert not is_active()


class TestSanitizedLockBehaviour:
    def test_context_manager_and_locked(self):
        with sanitized():
            lock = new_lock("l")
            assert not lock.locked()
            with lock:
                assert lock.locked()
            assert not lock.locked()

    def test_rlock_reacquisition_is_fine(self):
        with sanitized() as monitor:
            lock = new_rlock("r")
            with lock:
                with lock:
                    pass
            assert monitor.reports == ()

    def test_self_deadlock_raises_instead_of_hanging(self):
        with sanitized():
            lock = new_lock("l")
            with lock:
                with pytest.raises(RuntimeError, match="self-deadlock"):
                    lock.acquire()

    def test_locks_usable_across_threads(self):
        with sanitized() as monitor:
            lock = new_lock("l")
            counter = {"n": 0}

            def work():
                for _ in range(100):
                    with lock:
                        counter["n"] += 1

            threads = [
                threading.Thread(target=work, name=f"w{i}") for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert counter["n"] == 400
            assert monitor.reports == ()


class TestLockOrderWitness:
    def test_opposite_orders_reported_once(self):
        with sanitized() as monitor:
            a = new_lock("A")
            b = new_lock("B")

            def ab():
                with a:
                    with b:
                        pass

            def ba():
                with b:
                    with a:
                        pass

            run_in_thread(ab, "t-ab")
            run_in_thread(ba, "t-ba")
            run_in_thread(ba, "t-ba2")  # repeat: still one report

            assert len(monitor.lock_orders) == 1
            (report,) = monitor.lock_orders
            assert isinstance(report, LockOrderReport)
            assert {report.first, report.second} == {"A", "B"}
            assert "inversion" in report.describe()

    def test_consistent_order_is_clean(self):
        with sanitized() as monitor:
            a = new_lock("A")
            b = new_lock("B")

            def ab():
                with a:
                    with b:
                        pass

            run_in_thread(ab, "t1")
            run_in_thread(ab, "t2")
            assert monitor.reports == ()

    def test_distinct_instances_with_same_name_do_not_collide(self):
        # Many Counter("x")._lock objects share a name; ordering is per
        # lock object, so cross-instance nesting is not an inversion.
        with sanitized() as monitor:
            locks = [new_lock("shared-name") for _ in range(3)]
            with locks[0]:
                with locks[1]:
                    pass
            with locks[1]:
                with locks[2]:
                    pass
            assert monitor.lock_orders == ()


class TestLocksetRaces:
    def make_pool(self):
        class Pool:
            def __init__(self):
                self._lock = new_lock("Pool._lock")
                self._sweeps = {}
                track(self, "_sweeps")

            def locked_bump(self, key):
                with self._lock:
                    self._sweeps[key] = self._sweeps.get(key, 0) + 1

            def unlocked_bump(self, key):
                self._sweeps[key] = self._sweeps.get(key, 0) + 1

        return Pool()

    def test_consistently_locked_access_is_clean(self):
        with sanitized() as monitor:
            pool = self.make_pool()
            run_in_thread(lambda: pool.locked_bump(1), "t1")
            run_in_thread(lambda: pool.locked_bump(2), "t2")
            assert monitor.races == ()

    def test_unlocked_shared_write_is_reported(self):
        with sanitized() as monitor:
            pool = self.make_pool()
            run_in_thread(lambda: pool.locked_bump(1), "t1")
            run_in_thread(lambda: pool.unlocked_bump(2), "t2")
            races = monitor.races
            assert len(races) == 1
            assert races[0].var == "Pool._sweeps"
            assert races[0].thread == "t2"
            assert "race" in races[0].describe()
            monitor.clear()
        assert monitor.reports == ()

    def test_single_thread_unlocked_is_clean(self):
        # Exclusive phase: one thread needs no locks.
        with sanitized() as monitor:
            pool = self.make_pool()
            for k in range(10):
                pool.unlocked_bump(k)
            assert monitor.races == ()

    def test_rebound_attribute_gets_fresh_epoch(self):
        # The drain idiom: swap the container under the lock, consume the
        # old one privately.  Must stay clean.
        class Drainer:
            def __init__(self):
                self._lock = new_lock("Drainer._lock")
                self._found = []
                track(self, "_found")

            def flag(self, x):
                with self._lock:
                    self._found.append(x)

            def drain(self):
                with self._lock:
                    found, self._found = self._found, []
                return [x * 2 for x in found]

        with sanitized() as monitor:
            d = Drainer()
            run_in_thread(lambda: d.flag(1), "worker")
            assert d.drain() == [2]
            run_in_thread(lambda: d.flag(2), "worker2")
            assert d.drain() == [4]
            assert monitor.races == ()

    def test_list_and_set_mutations_are_writes(self):
        class Obj:
            def __init__(self):
                self._lock = new_lock("Obj._lock")
                self._items = []
                self._seen = set()
                track(self, "_items", "_seen")

        with sanitized() as monitor:
            obj = Obj()
            with obj._lock:
                obj._items.append(1)
                obj._seen.add(1)
            run_in_thread(lambda: obj._items.append(2), "t2")
            run_in_thread(lambda: obj._seen.add(2), "t3")
            assert {r.var for r in monitor.races} == {
                "Obj._items",
                "Obj._seen",
            }

    def test_reads_are_never_reported(self):
        class Obj:
            def __init__(self):
                self._lock = new_lock("Obj._lock")
                self._items = [1, 2, 3]
                track(self, "_items")

        with sanitized() as monitor:
            obj = Obj()
            with obj._lock:
                assert len(obj._items) == 3
            # Unlocked cross-thread *read*: lockset empties, no report.
            run_in_thread(lambda: list(obj._items), "reader")
            assert monitor.reports == ()


class TestTelemetryConversion:
    def test_reports_convert_to_events(self):
        reports = [
            RaceReport(
                var="Pool._sweeps", thread="t2", first_thread="t1", held=()
            ),
            LockOrderReport(
                first="A", second="B", thread="t2", prior_thread="t1"
            ),
        ]
        events = from_sanitizer_reports(reports)
        assert [e.kind for e in events] == [
            "sanitizer_race",
            "sanitizer_lock_order",
        ]
        assert events[0].source == "sanitizer"
        assert events[0].attr("var") == "Pool._sweeps"
        assert events[1].attr("second") == "B"
        assert [e.time for e in events] == [0.0, 1.0]
