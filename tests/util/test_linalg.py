"""Unit tests for SVD helpers."""

import numpy as np
import pytest

from repro.util.linalg import (
    orthonormal_columns,
    subspace_principal_angles,
    thin_svd,
    truncated_svd,
)


class TestThinSVD:
    def test_reconstruction(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((40, 7))
        u, s, vt = thin_svd(a)
        assert np.allclose(u @ np.diag(s) @ vt, a)
        assert u.shape == (40, 7)

    def test_descending_singular_values(self):
        rng = np.random.default_rng(1)
        _, s, _ = thin_svd(rng.standard_normal((20, 6)))
        assert np.all(np.diff(s) <= 0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            thin_svd(np.zeros(5))


class TestTruncatedSVD:
    def test_rank_cap(self):
        rng = np.random.default_rng(2)
        u, s, vt = truncated_svd(rng.standard_normal((30, 10)), rank=3)
        assert u.shape == (30, 3)
        assert s.shape == (3,)

    def test_energy_cut(self):
        # construct known spectrum: [10, 1, 0.1, ...]
        rng = np.random.default_rng(3)
        q1, _ = np.linalg.qr(rng.standard_normal((20, 4)))
        q2, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        a = q1 @ np.diag([10.0, 1.0, 0.1, 0.01]) @ q2.T
        _, s, _ = truncated_svd(a, energy=0.99)
        assert s.size == 1  # 100 / 101.0101 > 0.99

    def test_rank_and_energy_compose(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((30, 10))
        _, s, _ = truncated_svd(a, rank=4, energy=1.0)
        assert s.size == 4

    def test_rtol_floor(self):
        a = np.diag([1.0, 1e-14, 0.0])
        _, s, _ = truncated_svd(a, rtol=1e-10)
        assert s.size == 1

    def test_invalid_args(self):
        a = np.eye(4)
        with pytest.raises(ValueError, match="energy"):
            truncated_svd(a, energy=1.5)
        with pytest.raises(ValueError, match="rank"):
            truncated_svd(a, rank=0)


class TestOrthonormality:
    def test_identity_is_orthonormal(self):
        assert orthonormal_columns(np.eye(5)[:, :3])

    def test_scaled_is_not(self):
        assert not orthonormal_columns(2.0 * np.eye(5)[:, :3])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            orthonormal_columns(np.zeros(4))


class TestPrincipalAngles:
    def test_same_subspace_zero_angles(self):
        q, _ = np.linalg.qr(np.random.default_rng(5).standard_normal((10, 3)))
        angles = subspace_principal_angles(q, q)
        assert np.allclose(angles, 0.0, atol=1e-7)

    def test_orthogonal_subspaces_right_angles(self):
        e = np.eye(6)
        angles = subspace_principal_angles(e[:, :2], e[:, 2:4])
        assert np.allclose(angles, np.pi / 2)

    def test_requires_orthonormal_input(self):
        with pytest.raises(ValueError, match="orthonormal"):
            subspace_principal_angles(2.0 * np.eye(4)[:, :2], np.eye(4)[:, :2])
