"""Tests for the randomized (sketching) SVD."""

import numpy as np
import pytest

from repro.util.linalg import orthonormal_columns, randomized_svd, thin_svd


def decaying_matrix(n=2000, m=200, rank=40, seed=0):
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((n, rank)))
    s = np.geomspace(10.0, 0.05, rank)
    return (u * s) @ rng.standard_normal((rank, m)) / np.sqrt(m)


class TestRandomizedSVD:
    def test_matches_lapack_on_dominant_modes(self):
        a = decaying_matrix()
        _, s_exact, _ = thin_svd(a)
        rng = np.random.default_rng(1)
        u, s, vt = randomized_svd(a, rank=20, rng=rng)
        assert np.allclose(s, s_exact[:20], rtol=1e-3)

    def test_subspace_agrees(self):
        a = decaying_matrix()
        u_exact, _, _ = thin_svd(a)
        u, _, _ = randomized_svd(a, rank=10, rng=np.random.default_rng(2))
        # principal angles between dominant subspaces ~ 0
        overlap = np.linalg.svd(u_exact[:, :10].T @ u, compute_uv=False)
        assert overlap.min() > 0.99

    def test_output_shapes_and_orthonormality(self):
        a = decaying_matrix(n=300, m=50)
        u, s, vt = randomized_svd(a, rank=7, rng=np.random.default_rng(3))
        assert u.shape == (300, 7)
        assert s.shape == (7,)
        assert vt.shape == (7, 50)
        assert orthonormal_columns(u, atol=1e-8)
        assert np.all(np.diff(s) <= 1e-12)

    def test_rank_larger_than_columns_clamped(self):
        a = decaying_matrix(n=100, m=8)
        u, s, _ = randomized_svd(a, rank=20, rng=np.random.default_rng(4))
        assert s.size <= 8

    def test_power_iterations_improve_accuracy(self):
        """On slowly decaying spectra, power iterations sharpen the tail."""
        rng = np.random.default_rng(5)
        n, m = 3000, 300
        u0, _ = np.linalg.qr(rng.standard_normal((n, 100)))
        s0 = np.linspace(1.0, 0.8, 100)  # nearly flat: hard case
        a = (u0 * s0) @ rng.standard_normal((100, m)) / np.sqrt(m)
        _, s_exact, _ = thin_svd(a)

        def err(n_iter):
            _, s, _ = randomized_svd(
                a, rank=10, n_iter=n_iter, rng=np.random.default_rng(6)
            )
            return np.abs(s - s_exact[:10]).max()

        assert err(3) <= err(0) + 1e-12

    def test_validation(self):
        a = decaying_matrix(n=50, m=10)
        with pytest.raises(ValueError, match="rank"):
            randomized_svd(a, rank=0)
        with pytest.raises(ValueError, match="2-D"):
            randomized_svd(np.zeros(5), rank=1)
        with pytest.raises(ValueError, match="oversample"):
            randomized_svd(a, rank=2, oversample=-1)


class TestMemmapAccumulator:
    def test_round_trip_matches_in_memory(self, tmp_path):
        from repro.core.covariance import (
            AnomalyAccumulator,
            MemmapAnomalyAccumulator,
        )
        from repro.core.state import FieldLayout, FieldSpec

        layout = FieldLayout([FieldSpec("a", (64,), scale=2.0)])
        rng = np.random.default_rng(0)
        members = {k: rng.standard_normal(64) for k in range(12)}

        mem = AnomalyAccumulator(layout, np.zeros(64))
        disk = MemmapAnomalyAccumulator(
            layout, np.zeros(64), tmp_path / "cov.npy", max_members=16
        )
        for k, v in members.items():
            mem.add_member(k, v)
            disk.add_member(k, v)
        disk.flush()
        assert np.allclose(mem.matrix(), disk.matrix())

    def test_backing_file_readable_out_of_process(self, tmp_path):
        from repro.core.covariance import MemmapAnomalyAccumulator
        from repro.core.state import FieldLayout, FieldSpec

        layout = FieldLayout([FieldSpec("a", (16,), scale=1.0)])
        acc = MemmapAnomalyAccumulator(
            layout, np.zeros(16), tmp_path / "cov.npy", max_members=4
        )
        acc.add_member(0, np.ones(16))
        acc.flush()
        raw = np.load(tmp_path / "cov.npy", mmap_mode="r")
        assert raw.shape == (16, 4)
        assert np.allclose(raw[:, 0], 1.0)

    def test_capacity_enforced(self, tmp_path):
        from repro.core.covariance import MemmapAnomalyAccumulator
        from repro.core.state import FieldLayout, FieldSpec

        layout = FieldLayout([FieldSpec("a", (8,), scale=1.0)])
        acc = MemmapAnomalyAccumulator(
            layout, np.zeros(8), tmp_path / "cov.npy", max_members=2
        )
        acc.add_member(0, np.ones(8))
        acc.add_member(1, np.ones(8))
        with pytest.raises(RuntimeError, match="full"):
            acc.add_member(2, np.ones(8))

    def test_validation(self, tmp_path):
        from repro.core.covariance import MemmapAnomalyAccumulator
        from repro.core.state import FieldLayout, FieldSpec

        layout = FieldLayout([FieldSpec("a", (8,), scale=1.0)])
        with pytest.raises(ValueError, match="max_members"):
            MemmapAnomalyAccumulator(
                layout, np.zeros(8), tmp_path / "cov.npy", max_members=1
            )
