"""Tests for the telemetry subsystem (spans, metrics, events, export)."""
