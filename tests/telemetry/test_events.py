"""Unified event schema: detail parsing and per-layer converters."""

from types import SimpleNamespace

from repro.telemetry.events import (
    TelemetryEvent,
    from_sim_jobs,
    from_workflow_events,
    parse_detail,
)


class TestParseDetail:
    def test_typed_key_values(self):
        attrs = parse_detail("member=3 rho=0.95 kind=pemodel")
        assert attrs == {"member": 3, "rho": 0.95, "kind": "pemodel"}
        assert isinstance(attrs["member"], int)
        assert isinstance(attrs["rho"], float)

    def test_loose_tokens_preserved(self):
        attrs = parse_detail("pool exhausted n=2")
        assert attrs["n"] == 2
        assert attrs["detail"] == "pool exhausted"

    def test_empty_detail(self):
        assert parse_detail("") == {}


class TestWorkflowConversion:
    def test_from_workflow_events(self):
        events = [
            SimpleNamespace(time=1.0, kind="publish", detail="count=4"),
            SimpleNamespace(time=2.0, kind="svd_done", detail="rank=6 rho=0.91"),
        ]
        converted = from_workflow_events(events)
        assert [e.kind for e in converted] == ["publish", "svd_done"]
        assert converted[0].attr("count") == 4
        assert converted[1].attr("rho") == 0.91
        assert all(e.source == "workflow" for e in converted)

    def test_real_workflow_event_type(self):
        from repro.workflow.parallel import WorkflowEvent

        converted = from_workflow_events(
            [WorkflowEvent(time=0.5, kind="submit", detail="member=1 attempt=0")]
        )
        assert converted[0].attr("member") == 1
        assert converted[0].attr("attempt") == 0


class TestSimJobConversion:
    def _job(self, index, kind, submit, start, end, state, node="n0", attempt=0):
        return SimpleNamespace(
            spec=SimpleNamespace(index=index, kind=kind),
            submit_time=submit,
            start_time=start,
            end_time=end,
            state=SimpleNamespace(value=state),
            node_name=node,
            attempt=attempt,
        )

    def test_full_lifecycle_events(self):
        events = from_sim_jobs(
            [self._job(0, "pemodel", 0.0, 5.0, 25.0, "finished")]
        )
        assert [e.kind for e in events] == ["job_submit", "job_start", "job_finished"]
        assert events[1].attr("node") == "n0"
        assert events[2].attr("attempt") == 0
        assert all(e.source == "sched" for e in events)

    def test_never_started_job_has_no_start_event(self):
        events = from_sim_jobs(
            [self._job(1, "pemodel", 2.0, None, None, "queued")]
        )
        assert [e.kind for e in events] == ["job_submit"]

    def test_events_sorted_by_time_across_jobs(self):
        events = from_sim_jobs(
            [
                self._job(0, "a", 10.0, 12.0, 20.0, "finished"),
                self._job(1, "b", 0.0, 1.0, 30.0, "finished"),
            ]
        )
        times = [e.time for e in events]
        assert times == sorted(times)


class TestTelemetryEvent:
    def test_attr_lookup(self):
        event = TelemetryEvent(time=1.0, kind="x", attrs=(("a", 1),))
        assert event.attr("a") == 1
        assert event.attr("b", "fallback") == "fallback"
