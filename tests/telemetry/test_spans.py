"""Span recorder semantics: nesting, threads, clocks, the no-op path."""

import threading
import tracemalloc

import pytest

from repro.telemetry.clock import FakeClock
from repro.telemetry.spans import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    _NULL_SPAN,
)


class TestNesting:
    def test_implicit_parent_from_thread_stack(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("outer") as outer:
            with rec.span("inner"):
                pass
        spans = {s.name: s for s in rec.spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == outer.span_id

    def test_siblings_share_parent(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("root") as root:
            with rec.span("a"):
                pass
            with rec.span("b"):
                pass
        spans = {s.name: s for s in rec.spans()}
        assert spans["a"].parent_id == root.span_id
        assert spans["b"].parent_id == root.span_id
        assert spans["a"].span_id != spans["b"].span_id

    def test_explicit_parent_overrides_stack(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("root") as root:
            pass
        with rec.span("other"):
            with rec.span("child", parent=root):
                pass
        child = next(s for s in rec.spans() if s.name == "child")
        assert child.parent_id == root.span_id

    def test_child_interval_within_parent(self):
        clk = FakeClock()
        rec = TraceRecorder(clock=clk)
        with rec.span("parent"):
            clk.advance(1.0)
            with rec.span("child"):
                clk.advance(2.0)
            clk.advance(1.0)
        spans = {s.name: s for s in rec.spans()}
        parent, child = spans["parent"], spans["child"]
        assert parent.start <= child.start
        assert child.end <= parent.end
        assert child.duration == pytest.approx(2.0)
        assert parent.duration == pytest.approx(4.0)

    def test_current_span_tracks_innermost(self):
        rec = TraceRecorder(clock=FakeClock())
        assert rec.current_span() is None
        with rec.span("a") as a:
            assert rec.current_span() is a
            with rec.span("b") as b:
                assert rec.current_span() is b
            assert rec.current_span() is a
        assert rec.current_span() is None


class TestSpanLifecycle:
    def test_attributes_sorted_and_queryable(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("task", index=3, kind="pemodel") as sp:
            sp.set(ok=True)
        (span,) = rec.spans()
        assert span.attr("index") == 3
        assert span.attr("kind") == "pemodel"
        assert span.attr("ok") is True
        assert span.attr("missing", 42) == 42
        assert span.attrs == tuple(sorted(span.attrs))

    def test_exception_marks_error_status(self):
        rec = TraceRecorder(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError("kaput")
        (span,) = rec.spans()
        assert span.status == "error"
        assert span.attr("error") == "RuntimeError"

    def test_record_span_external_interval(self):
        rec = TraceRecorder(clock=FakeClock())
        span = rec.record_span("job", 10.0, 25.0, index=1, status="ok")
        assert span.duration == 15.0
        assert rec.spans() == (span,)

    def test_record_span_rejects_negative_interval(self):
        rec = TraceRecorder(clock=FakeClock())
        with pytest.raises(ValueError, match="ends before"):
            rec.record_span("job", 5.0, 4.0)

    def test_clear_drops_records_keeps_ids_unique(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("a"):
            pass
        first_id = rec.spans()[0].span_id
        rec.clear()
        assert rec.spans() == ()
        with rec.span("b"):
            pass
        assert rec.spans()[0].span_id > first_id

    def test_spans_sorted_by_start(self):
        clk = FakeClock()
        rec = TraceRecorder(clock=clk)
        rec.record_span("late", 10.0, 11.0)
        rec.record_span("early", 1.0, 2.0)
        assert [s.name for s in rec.spans()] == ["early", "late"]


class TestThreadSafety:
    def test_concurrent_spans_from_many_threads(self):
        clk = FakeClock()
        rec = TraceRecorder(clock=clk)
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)

        with rec.span("root") as root:

            def worker(tid):
                barrier.wait()
                for i in range(per_thread):
                    with rec.span("work", parent=root, tid=tid, i=i):
                        pass

            threads = [
                threading.Thread(target=worker, args=(t,), name=f"w{t}")
                for t in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        work = [s for s in rec.spans() if s.name == "work"]
        assert len(work) == n_threads * per_thread
        # every span got a unique id and the explicit cross-thread parent
        assert len({s.span_id for s in work}) == len(work)
        assert all(s.parent_id == root.span_id for s in work)
        # thread names recorded per originating thread
        assert {s.thread for s in work} == {f"w{t}" for t in range(n_threads)}

    def test_thread_local_stacks_do_not_leak_nesting(self):
        """A span opened in one thread must not become another's parent."""
        rec = TraceRecorder(clock=FakeClock())
        done = threading.Event()

        def other():
            with rec.span("other_root"):
                pass
            done.set()

        with rec.span("main_root"):
            t = threading.Thread(target=other, name="other")
            t.start()
            t.join()
        assert done.is_set()
        other_root = next(s for s in rec.spans() if s.name == "other_root")
        assert other_root.parent_id is None


class TestNullRecorder:
    def test_disabled_and_stateless(self):
        assert NULL_RECORDER.enabled is False
        with NULL_RECORDER.span("x", index=1) as sp:
            sp.set(anything=True)
        NULL_RECORDER.record_span("x", 0.0, 1.0)
        NULL_RECORDER.event("kind", a=1)
        assert NULL_RECORDER.spans() == ()
        assert NULL_RECORDER.events() == ()

    def test_span_handle_is_shared_singleton(self):
        assert NULL_RECORDER.span("a") is _NULL_SPAN
        assert NULL_RECORDER.span("b") is NULL_RECORDER.span("c")
        assert _NULL_SPAN.span_id is None

    def test_null_span_never_swallows_exceptions(self):
        with pytest.raises(KeyError):
            with NULL_RECORDER.span("x"):
                raise KeyError("boom")

    def test_carries_injectable_clock(self):
        clk = FakeClock()
        rec = NullRecorder(clock=clk)
        clk.advance(3.0)
        assert rec.clock() == 3.0

    def test_no_op_span_allocates_nothing_on_hot_path(self):
        """The no-attrs fast path must not retain allocations."""
        # warm up (method caches, tracemalloc internals)
        for _ in range(100):
            with NULL_RECORDER.span("pemodel"):
                pass
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(1000):
                with NULL_RECORDER.span("pemodel"):
                    pass
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = after.filter_traces(
            (tracemalloc.Filter(True, "*telemetry/spans.py"),)
        ).compare_to(
            before.filter_traces(
                (tracemalloc.Filter(True, "*telemetry/spans.py"),)
            ),
            "lineno",
        )
        retained = sum(s.size_diff for s in stats)
        assert retained == 0, f"no-op span path retained {retained} bytes"


class TestFakeClock:
    def test_advance_and_call(self):
        clk = FakeClock()
        assert clk() == 0.0
        clk.advance(2.5)
        assert clk() == 2.5

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)
