"""Exporters: JSONL round-trip, Chrome-trace validity, Prometheus text."""

import json

import pytest

from repro.telemetry.clock import FakeClock
from repro.telemetry.export import (
    chrome_trace,
    prometheus_text,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import TraceRecorder


@pytest.fixture()
def recorder():
    clk = FakeClock()
    rec = TraceRecorder(clock=clk)
    with rec.span("workflow.run") as root:
        clk.advance(0.5)
        with rec.span("pemodel", index=0):
            clk.advance(2.0)
        rec.event("publish", count=1)
        clk.advance(0.5)
        rec.record_span("differ.add", 2.5, 3.0, parent=root, index=0)
    return rec


class TestJsonlRoundTrip:
    def test_spans_events_metrics_survive(self, recorder, tmp_path):
        registry = MetricsRegistry()
        registry.counter("svd_computations").inc(2)
        registry.histogram("task_seconds", kind="pemodel").observe(2.0)
        path = write_jsonl(
            tmp_path / "run.jsonl",
            spans=recorder.spans(),
            events=recorder.events(),
            metrics=registry,
        )
        log = read_jsonl(path)
        assert [s.name for s in log.spans] == [s.name for s in recorder.spans()]
        original = {s.span_id: s for s in recorder.spans()}
        for span in log.spans:
            assert span == original[span.span_id]
        assert [e.kind for e in log.events] == ["publish"]
        assert log.metrics["counters"]["svd_computations"] == 2.0
        assert log.metrics["histograms"]["task_seconds{kind=pemodel}"]["count"] == 1

    def test_every_line_is_valid_json(self, recorder, tmp_path):
        path = write_jsonl(tmp_path / "run.jsonl", spans=recorder.spans())
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_unknown_line_types_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"type": "span", "name": "a", "start": 0.0, "end": 1.0,
                        "span_id": 1})
            + "\n"
            + json.dumps({"type": "future_record", "payload": 42})
            + "\n"
        )
        log = read_jsonl(path)
        assert len(log.spans) == 1


class TestChromeTrace:
    def test_export_validates_clean(self, recorder, tmp_path):
        path = write_chrome_trace(
            tmp_path / "trace.json",
            spans=recorder.spans(),
            events=recorder.events(),
        )
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []

    def test_span_events_are_complete_phases_in_microseconds(self, recorder):
        obj = chrome_trace(spans=recorder.spans())
        complete = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        pemodel = next(e for e in complete if e["name"] == "pemodel")
        assert pemodel["ts"] == pytest.approx(0.5e6)
        assert pemodel["dur"] == pytest.approx(2.0e6)
        assert pemodel["args"]["index"] == 0
        assert "span_id" in pemodel["args"]

    def test_thread_name_metadata_per_track(self, recorder):
        obj = chrome_trace(spans=recorder.spans(), events=recorder.events())
        meta = [e for e in obj["traceEvents"] if e["ph"] == "M"]
        named = {e["args"]["name"] for e in meta}
        assert "events" in named  # instants get their own track
        tids = {e["tid"] for e in meta}
        assert len(tids) == len(meta)  # one metadata record per distinct tid

    def test_nesting_preserved_on_timeline(self, recorder):
        """Child complete-events sit within their parents' intervals."""
        spans = recorder.spans()
        by_id = {s.span_id: s for s in spans}
        checked = 0
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.start <= span.start
            assert span.end <= parent.end
            checked += 1
        assert checked >= 2  # pemodel and differ.add under workflow.run

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad_phase = {"traceEvents": [{"name": "a", "ph": "Z", "pid": 1}]}
        assert any("phase" in p for p in validate_chrome_trace(bad_phase))
        negative_ts = {
            "traceEvents": [
                {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1}
            ]
        }
        assert any("ts" in p for p in validate_chrome_trace(negative_ts))
        missing_name = {"traceEvents": [{"ph": "X", "pid": 1, "ts": 0, "dur": 1}]}
        assert any("name" in p for p in validate_chrome_trace(missing_name))


class TestPrometheusText:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.counter("task_retries", kind="pemodel").inc(3)
        registry.gauge("pool_size").set(8)
        hist = registry.histogram("task_seconds", kind="pemodel")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        text = prometheus_text(registry)
        assert "# TYPE task_retries counter" in text
        assert 'task_retries{kind="pemodel"} 3.0' in text
        assert "# TYPE pool_size gauge" in text
        assert "pool_size 8.0" in text
        assert "# TYPE task_seconds summary" in text
        assert 'task_seconds{quantile="0.5",kind="pemodel"} 2.0' in text
        assert 'task_seconds_count{kind="pemodel"} 3' in text
        assert 'task_seconds_sum{kind="pemodel"} 6.0' in text

    def test_accepts_prepared_snapshot_dict(self):
        snap = {"counters": {"n": 1.0}, "gauges": {}, "histograms": {}}
        assert "n 1.0" in prometheus_text(snap)
