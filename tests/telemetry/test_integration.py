"""End-to-end telemetry: live workflow, fake clock, simulator, CLI."""

import json

import pytest

from repro.core import (
    ESSEConfig,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.core.ensemble import EnsembleRunner
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.sched import EnsembleCampaign, mseas_cluster
from repro.sched.iomodel import IOConfiguration, IOMode
from repro.telemetry import (
    FakeClock,
    MetricsRegistry,
    TraceRecorder,
    chrome_trace,
    validate_chrome_trace,
    write_jsonl,
)
from repro.workflow import ParallelESSEWorkflow


def small_workflow(tmp_path, telemetry=None, metrics=None, n_workers=2):
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    background = model.run(model.rest_state(), 10 * model.config.dt)
    subspace = synthetic_initial_subspace(
        model.layout, grid.shape2d, grid.nz, rank=6, seed=0
    )
    runner = EnsembleRunner(
        model,
        PerturbationGenerator(model.layout, subspace, root_seed=5),
        duration=4 * model.config.dt,
        root_seed=5,
    )
    workflow = ParallelESSEWorkflow(
        runner,
        ESSEConfig(
            initial_ensemble_size=4,
            max_ensemble_size=8,
            convergence_tolerance=1.0,
            max_subspace_rank=6,
        ),
        tmp_path / "wf",
        n_workers=n_workers,
        telemetry=telemetry,
        metrics=metrics,
    )
    return workflow, background


class TestParallelWorkflowTracing:
    def test_exports_valid_nested_chrome_trace(self, tmp_path):
        """The acceptance criterion: a real run -> valid, nested trace."""
        recorder = TraceRecorder()
        metrics = MetricsRegistry()
        workflow, background = small_workflow(
            tmp_path, telemetry=recorder, metrics=metrics
        )
        result = workflow.run(background)

        spans = recorder.spans()
        names = {s.name for s in spans}
        assert "workflow.run" in names
        assert "pemodel" in names
        assert "differ.loop" in names
        assert "svd.loop" in names

        # span tree is well-formed: every parent exists and contains its kids
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.start <= span.start + 1e-9
            assert span.end <= parent.end + 1e-9

        # one pemodel span per completed/failed member attempt, all under root
        root = next(s for s in spans if s.name == "workflow.run")
        members = [s for s in spans if s.name == "pemodel"]
        assert len(members) >= result.n_completed
        assert all(m.parent_id == root.span_id for m in members)

        obj = chrome_trace(spans=spans, events=recorder.events())
        assert validate_chrome_trace(obj) == []
        json.dumps(obj)  # serialisable as-is

        # metrics saw the run too
        snap = metrics.snapshot()
        assert snap["counters"]["svd_computations"] >= 1
        assert snap["histograms"]["task_seconds{kind=pemodel}"]["count"] >= 4
        assert snap["gauges"]["members_completed{kind=pemodel}"] == result.n_completed

    def test_default_noop_recorder_changes_nothing(self, tmp_path):
        """Without telemetry the public result is unchanged and no spans
        exist anywhere (the pre-telemetry behaviour)."""
        workflow, background = small_workflow(tmp_path)
        result = workflow.run(background)
        assert workflow.telemetry.enabled is False
        assert workflow.telemetry.spans() == ()
        assert result.n_completed >= 4

    def test_fake_clock_threads_through_whole_workflow(self, tmp_path):
        """Satellite: one injected clock is the workflow's only time source."""
        clk = FakeClock(start=100.0)
        recorder = TraceRecorder(clock=clk)
        workflow, background = small_workflow(tmp_path, telemetry=recorder)
        result = workflow.run(background)
        # no real clock leaked in: every timestamp is the fake clock's value
        assert result.wall_seconds == 0.0
        for span in recorder.spans():
            assert span.start == 100.0
            assert span.end == 100.0


class TestSimulatorTracing:
    def test_campaign_records_virtual_time_spans(self):
        """The sched simulator exports the same trace format, in sim time."""
        campaign = EnsembleCampaign(
            mseas_cluster(),
            io_config=IOConfiguration(
                mode=IOMode.PRESTAGED, pert_input_mb=1.0, pemodel_input_mb=1.0,
                output_mb=1.0, prestage_cost_s=0.0,
            ),
        )
        metrics = MetricsRegistry()
        stats = campaign.run(
            campaign.ensemble_specs(6), telemetry=TraceRecorder, metrics=metrics
        )
        recorder = campaign.last_telemetry
        spans = recorder.spans()
        kinds = {s.name for s in spans}
        assert "pemodel" in kinds
        assert "pert" in kinds
        # virtual timestamps: the makespan bounds every span
        assert all(s.end <= stats.makespan_seconds + 1e-9 for s in spans)
        assert validate_chrome_trace(chrome_trace(spans=spans)) == []
        snap = metrics.snapshot()
        assert snap["counters"]["jobs_completed{kind=pert}"] == 6
        assert snap["counters"]["jobs_completed{kind=pemodel}"] == 6
        assert snap["histograms"]["job_wall_seconds{kind=pemodel}"]["count"] == 6


class TestTraceSummaryCli:
    def test_prints_latency_table_from_jsonl(self, tmp_path, capsys):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
        try:
            import trace_summary
        finally:
            sys.path.pop(0)

        clk = FakeClock()
        rec = TraceRecorder(clock=clk)
        with rec.span("workflow.run"):
            for i in range(3):
                with rec.span("pemodel", index=i):
                    clk.advance(1.0 + i)
            rec.event("publish", count=3)
        path = write_jsonl(
            tmp_path / "run.jsonl", spans=rec.spans(), events=rec.events()
        )
        assert trace_summary.main([str(path), "--events"]) == 0
        out = capsys.readouterr().out
        assert "pemodel" in out
        assert "workflow.run" in out
        assert "publish" in out

    def test_empty_log_exits_nonzero(self, tmp_path, capsys):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
        try:
            import trace_summary
        finally:
            sys.path.pop(0)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert trace_summary.main([str(empty)]) == 1
