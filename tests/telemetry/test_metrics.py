"""Metrics registry semantics: instruments, labels, snapshots, reset."""

import threading

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _labels_key,
    get_registry,
    reset_registry,
)


@pytest.fixture(autouse=True)
def _clean_default_registry():
    """Tests touching the module default must not leak into each other."""
    reset_registry()
    yield
    reset_registry()


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("retries")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("retries").inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge("pool_size")
        g.set(8)
        g.inc(-3)
        assert g.value == 5.0

    def test_histogram_stats(self):
        h = Histogram("latency")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 2.5
        assert h.percentile(100) == 4.0

    def test_histogram_empty_and_validation(self):
        h = Histogram("latency")
        assert h.mean is None
        assert h.percentile(50) is None
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            h.percentile(101)

    def test_histogram_thread_safe_observe(self):
        h = Histogram("latency")
        threads = [
            threading.Thread(target=lambda: [h.observe(1.0) for _ in range(500)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 2000


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("task_retries", kind="pemodel")
        b = reg.counter("task_retries", kind="pemodel")
        c = reg.counter("task_retries", kind="pert")
        assert a is b
        assert a is not c

    def test_labels_key_is_order_independent(self):
        assert _labels_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert _labels_key("m", {}) == "m"

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("jobs_completed").inc(3)
        reg.gauge("queue_depth", kind="pemodel").set(7)
        reg.histogram("task_seconds", kind="pemodel").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"]["jobs_completed"] == 3.0
        assert snap["gauges"]["queue_depth{kind=pemodel}"] == 7.0
        hist = snap["histograms"]["task_seconds{kind=pemodel}"]
        assert hist["count"] == 1
        assert hist["sum"] == 1.5
        assert set(hist) == {
            "count", "sum", "mean", "p50", "p90", "p95", "p99", "max",
        }

    def test_snapshot_is_json_serialisable(self):
        import json

        reg = MetricsRegistry()
        reg.histogram("h").observe(2.0)
        json.dumps(reg.snapshot())

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        # recreated fresh, not resurrecting the old instrument
        assert reg.counter("n").value == 0.0

    def test_default_registry_reset_between_tests(self):
        get_registry().counter("leak_check").inc()
        reset_registry()
        assert get_registry().snapshot()["counters"] == {}
