"""Meta-test: every public item in the library carries a doc comment."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


def test_fault_modules_are_covered():
    """The robustness subsystem must stay under the docs lint.

    Guards against the fault/retry modules being moved or renamed out of
    the package walk: ``repro.workflow.faults`` and its policy module are
    load-bearing for the documented failure model (docs/FAILURE_MODEL.md).
    """
    assert "repro.workflow.faults" in MODULES
    assert "repro.workflow.policies" in MODULES


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in public_members(module):
        if not (inspect.getdoc(obj) or "").strip():
            missing.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not callable(meth) and not isinstance(meth, property):
                    continue
                target = meth.fget if isinstance(meth, property) else meth
                # getattr through the class so inspect.getdoc can walk the
                # MRO: an override inherits its base method's doc comment
                bound = getattr(obj, meth_name, target)
                doc = inspect.getdoc(
                    bound.fget if isinstance(bound, property) else bound
                )
                if not (doc or "").strip():
                    missing.append(f"{name}.{meth_name}")
    assert not missing, f"{module_name}: undocumented public items {missing}"
