"""Tests for the forecast-product service layer (repro.products)."""
