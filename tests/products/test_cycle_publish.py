"""End-to-end: the realtime cycle publishing through CycleProductPublisher.

Exercises the full Fig 1 tail -- cycle -> generate_product -> product
hook -> versioned store -> reader/service -- rather than feeding the
store hand-made products.
"""

import json

import numpy as np
import pytest

from repro.core import (
    ESSEConfig,
    ESSEDriver,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.obs.network import aosn2_network
from repro.ocean import PEModel, StochasticForcing
from repro.ocean.bathymetry import monterey_grid
from repro.products.service import ProductService
from repro.products.store import CycleProductPublisher, ProductReader, ProductStore
from repro.realtime import ExperimentTimeline, RealTimeForecastCycle
from repro.telemetry.spans import TraceRecorder

N_PERIODS = 3


@pytest.fixture(scope="module")
def published_run(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("product-store")
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    layout = model.layout
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=8, seed=2
    )
    perturber = PerturbationGenerator(layout, subspace, root_seed=777)
    truth0 = model.from_vector(
        perturber.member_state(model.to_vector(background), 0),
        time=background.time,
    )
    truth_model = PEModel(
        grid=grid, noise=StochasticForcing(grid, rng=np.random.default_rng(55))
    )
    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=6,
            max_ensemble_size=12,
            convergence_tolerance=0.85,
            max_subspace_rank=8,
        ),
        root_seed=4,
    )
    network = aosn2_network(grid, layout, rng=np.random.default_rng(9))
    timeline = ExperimentTimeline(
        t0=background.time, period_length=0.25 * 86400.0, n_periods=N_PERIODS
    )
    store = ProductStore(workdir, tile_size=4, levels=2)
    publisher = CycleProductPublisher(store, model)
    telemetry = TraceRecorder()
    cycle = RealTimeForecastCycle(
        driver, truth_model, network, timeline,
        telemetry=telemetry, product_hook=publisher,
    )
    records, _, _ = cycle.run(background, truth0, subspace)
    return model, store, publisher, records, telemetry


class TestCyclePublishes:
    def test_one_version_per_period(self, published_run):
        _, store, publisher, records, _ = published_run
        assert store.version == N_PERIODS
        assert publisher.published_versions == list(range(1, N_PERIODS + 1))
        assert len(records) == N_PERIODS  # the cycle itself is unaffected

    def test_publish_spans_recorded(self, published_run):
        *_, telemetry = published_run
        publishes = [s for s in telemetry.spans() if s.name == "publish_product"]
        assert [s.attr("period") for s in publishes] == list(range(N_PERIODS))

    def test_snapshots_carry_cycle_products(self, published_run):
        model, store, _, _, _ = published_run
        reader = ProductReader(store.workdir)
        for version in range(1, N_PERIODS + 1):
            snapshot = reader.fetch(version)
            assert snapshot.cycle_index == version - 1
            assert snapshot.product.selected in {
                s.label for s in snapshot.product.scores
            }
            expected = {"sst_nowcast", "sst_sigma"}
            if "eta" in model.layout.names:
                expected.add("ssh_nowcast")
            assert set(snapshot.fields) == expected

    def test_fields_masked_like_the_grid(self, published_run):
        model, store, _, _, _ = published_run
        snapshot = ProductReader(store.workdir).fetch()
        sst = snapshot.fields["sst_nowcast"].level(0)
        np.testing.assert_array_equal(np.isnan(sst), ~model.grid.mask)
        sigma = snapshot.fields["sst_sigma"].level(0)
        assert np.all(sigma[model.grid.mask] >= 0.0)

    def test_tile_summaries_match_bulletin_statistics(self, published_run):
        _, store, _, _, _ = published_run
        snapshot = ProductReader(store.workdir).fetch()
        domain = snapshot.fields["sst_nowcast"].domain_summary()
        product = snapshot.product
        # the bulletin's SST stats were computed over the same wet cells
        assert domain["min"] == pytest.approx(product.sst_min, rel=1e-9)
        assert domain["max"] == pytest.approx(product.sst_max, rel=1e-9)
        assert domain["mean"] == pytest.approx(product.sst_mean, rel=1e-9)

    def test_service_serves_the_cycle_products(self, published_run):
        _, store, _, _, _ = published_run
        service = ProductService(store.workdir)
        response = service.handle("GET", "/v1/products/latest")
        assert response.status == 200
        body = json.loads(response.body)
        assert body["cycle_index"] == N_PERIODS - 1
        assert "ESSE forecast bulletin" in body["bulletin"]
