"""Product store publish/fetch protocol: versioning, checksums, recovery."""

import json

import numpy as np
import pytest

from repro.products.store import (
    ProductNotFound,
    ProductPending,
    ProductReadError,
    ProductReader,
    ProductStore,
    ProductStoreError,
)
from tests.products.conftest import make_field, make_product


@pytest.fixture()
def store(tmp_path):
    return ProductStore(tmp_path / "store", tile_size=8, levels=2)


def publish_one(store, cycle_index=0, seed=0):
    return store.publish(
        make_product(cycle_index), {"sst_nowcast": make_field(seed)}
    )


class TestPublish:
    def test_versions_are_monotone(self, store):
        assert store.version == 0
        assert publish_one(store, 0) == 1
        assert publish_one(store, 1) == 2
        assert store.version == 2

    def test_on_disk_layout(self, store):
        publish_one(store)
        vdir = store.workdir / "v00000001"
        assert (vdir / "manifest.json").exists()
        assert (vdir / "fields.npz").exists()
        assert (vdir / "product.json").exists()
        head = json.loads((store.workdir / "HEAD.json").read_text())
        manifest = json.loads((vdir / "manifest.json").read_text())
        assert head == {
            "version": 1, "dir": "v00000001", "checksum": manifest["checksum"],
        }

    def test_empty_fields_rejected(self, store):
        with pytest.raises(ProductStoreError, match="at least one field"):
            store.publish(make_product(), {})

    def test_stale_stage_dir_is_replaced(self, store):
        stale = store.workdir / ".stage-v00000001"
        stale.mkdir(parents=True)
        (stale / "junk").write_text("leftover from a crashed publish")
        assert publish_one(store) == 1
        assert not stale.exists()

    def test_retain_window_retires_old_versions(self, tmp_path):
        store = ProductStore(tmp_path / "s", retain=2)
        for k in range(4):
            publish_one(store, k, seed=k)
        names = sorted(p.name for p in store.workdir.glob("v*"))
        assert names == ["v00000003", "v00000004"]

    def test_retain_validation(self, tmp_path):
        with pytest.raises(ValueError, match="retain"):
            ProductStore(tmp_path / "s", retain=0)

    def test_restart_resumes_version_counter(self, store):
        publish_one(store, 0)
        publish_one(store, 1)
        resumed = ProductStore(store.workdir)
        assert resumed.version == 2
        assert publish_one(resumed, 2) == 3


class TestFetch:
    def test_before_first_publish(self, store):
        reader = ProductReader(store.workdir)
        assert reader.read_head() is None
        assert reader.latest_version() is None
        assert reader.fetch() is None
        with pytest.raises(ProductPending):
            reader.fetch(1)

    def test_latest_round_trips_product_and_fields(self, store):
        field = make_field(3)
        product = make_product(5)
        store.publish(product, {"sst_nowcast": field})
        snapshot = ProductReader(store.workdir).fetch()
        assert snapshot.version == 1
        assert snapshot.cycle_index == 5
        assert snapshot.product == product
        np.testing.assert_array_equal(
            snapshot.fields["sst_nowcast"].level(0), field
        )

    def test_pinned_version_stays_fetchable(self, store):
        publish_one(store, 0, seed=0)
        publish_one(store, 1, seed=1)
        reader = ProductReader(store.workdir)
        assert reader.fetch(1).version == 1
        assert reader.fetch(2).version == 2
        assert reader.fetch().version == 2

    def test_future_version_is_pending(self, store):
        publish_one(store)
        with pytest.raises(ProductPending, match="still publishing"):
            ProductReader(store.workdir).fetch(7)

    def test_retired_version_not_found(self, tmp_path):
        store = ProductStore(tmp_path / "s", retain=1)
        publish_one(store, 0, seed=0)
        publish_one(store, 1, seed=1)
        with pytest.raises(ProductNotFound, match="retired"):
            ProductReader(store.workdir).fetch(1)

    def test_snapshot_checksum_matches_head(self, store):
        publish_one(store)
        reader = ProductReader(store.workdir)
        assert reader.fetch().checksum == reader.read_head()["checksum"]


class TestUnreadableStates:
    def test_corrupt_head_reads_as_not_yet(self, store):
        publish_one(store)
        store.head_path.write_text("{ torn copy")
        reader = ProductReader(store.workdir)
        assert reader.read_head() is None
        assert reader.consecutive_unreadable == 1
        assert reader.last_read_error is not None

    def test_corrupt_payload_never_returned(self, store):
        publish_one(store)
        npz = store.workdir / "v00000001" / "fields.npz"
        npz.write_bytes(npz.read_bytes()[:-8])  # truncated mid-copy
        reader = ProductReader(store.workdir)
        assert reader.fetch() is None  # checksum mismatch, not torn data
        assert reader.consecutive_unreadable == 1

    def test_unreadable_bound_raises(self, store):
        publish_one(store)
        store.head_path.write_text("not json at all")
        reader = ProductReader(store.workdir, max_unreadable_reads=3)
        assert reader.read_head() is None
        assert reader.read_head() is None
        with pytest.raises(ProductReadError, match="3 consecutive"):
            reader.read_head()

    def test_successful_read_resets_the_bound(self, store):
        publish_one(store)
        reader = ProductReader(store.workdir, max_unreadable_reads=2)
        good_head = store.head_path.read_text()
        store.head_path.write_text("torn")
        assert reader.read_head() is None
        store.head_path.write_text(good_head)
        assert reader.read_head()["version"] == 1
        assert reader.consecutive_unreadable == 0

    def test_reader_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_unreadable_reads"):
            ProductReader(tmp_path, max_unreadable_reads=0)
