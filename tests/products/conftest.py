"""Shared fixtures for the product-service tests: tiny products/fields."""

import numpy as np
import pytest

from repro.realtime.products import CandidateScore, ForecastProduct


def make_product(cycle_index: int = 0) -> ForecastProduct:
    """A small, fully-populated product bulletin."""
    return ForecastProduct(
        cycle_index=cycle_index,
        nowcast_time=3600.0 * (cycle_index + 1),
        selected="central",
        scores=(
            CandidateScore(label="central", weighted_rmse=0.42),
            CandidateScore(label="ensemble-mean", weighted_rmse=0.57),
        ),
        sst_mean=12.5,
        sst_min=9.75,
        sst_max=15.25,
        sst_sigma_median=0.31,
        ensemble_size=16,
        converged=True,
    )


def make_field(seed: int = 0, shape=(20, 24)) -> np.ndarray:
    """A seeded 2-D field with a NaN 'land' corner."""
    rng = np.random.default_rng(seed)
    field = rng.standard_normal(shape)
    field[:3, :3] = np.nan
    return field


@pytest.fixture()
def product():
    """One product bulletin."""
    return make_product()


@pytest.fixture()
def field():
    """One masked 2-D field."""
    return make_field()
