"""LRU cache semantics: eviction order, disable mode, metrics."""

import pytest

from repro.products.cache import LRUCache
from repro.telemetry.metrics import MetricsRegistry


class TestLRUCache:
    def test_put_get_and_miss(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not a new entry
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_capacity_zero_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_none_values_rejected(self):
        with pytest.raises(ValueError, match="miss sentinel"):
            LRUCache(2).put("a", None)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            LRUCache(-1)

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_metrics_instrumentation(self):
        reg = MetricsRegistry()
        cache = LRUCache(2, registry=reg, name="t")
        cache.get("a")          # miss
        cache.put("a", 1)
        cache.get("a")          # hit
        cache.put("b", 2)
        cache.put("c", 3)       # evicts "a"
        counters = reg.snapshot()["counters"]
        assert counters["product_cache_hits{cache=t}"] == 1.0
        assert counters["product_cache_misses{cache=t}"] == 1.0
        assert counters["product_cache_evictions{cache=t}"] == 1.0
        assert reg.snapshot()["gauges"]["product_cache_entries{cache=t}"] == 2.0
