"""Torture test: one publishing writer vs many concurrent readers.

The acceptance contract of the product store (docs/PRODUCT_SERVICE.md):
while a single writer publishes version after version, concurrent
readers never block, never raise and never see a torn snapshot -- every
fetch returns a fully checksum-verified version k or k+1.

Torn reads are made detectable by construction: version k's field is a
constant array filled with the value k and its product carries
``cycle_index == k - 1``, so any mix of two versions' bytes would show
up as a field/version/cycle mismatch (if it somehow passed the SHA-256
verification first).
"""

import threading

import numpy as np

from repro.products.store import ProductReader, ProductStore
from tests.products.conftest import make_product

N_VERSIONS = 25
N_READERS = 8
FIELD_SHAPE = (24, 24)


def _writer(store, done):
    try:
        for k in range(N_VERSIONS):
            field = np.full(FIELD_SHAPE, float(k + 1))
            field[:2, :2] = np.nan  # keep a land mask in play
            store.publish(make_product(k), {"sst_nowcast": field})
    finally:
        done.set()


def _reader(workdir, done, result):
    reader = ProductReader(workdir)
    versions = []
    reads = 0
    try:
        while not done.is_set() or not versions or versions[-1] < N_VERSIONS:
            snapshot = reader.fetch()
            reads += 1
            if snapshot is None:
                continue  # nothing published yet, or mid-replace: retry
            # internal consistency: payload value == version, bulletin matches
            wet = snapshot.fields["sst_nowcast"].level(0)
            wet = wet[~np.isnan(wet)]
            assert np.all(wet == float(snapshot.version)), (
                f"torn read: version {snapshot.version} carries foreign data"
            )
            assert snapshot.cycle_index == snapshot.version - 1
            assert snapshot.product.cycle_index == snapshot.version - 1
            versions.append(snapshot.version)
            if done.is_set() and versions[-1] == N_VERSIONS:
                break
    except BaseException as exc:  # surfaced to the main thread below
        result["error"] = exc
    result["versions"] = versions
    result["reads"] = reads


def test_torture_single_writer_many_readers(tmp_path):
    store = ProductStore(tmp_path / "store", tile_size=8, levels=1)
    done = threading.Event()
    results = [{} for _ in range(N_READERS)]
    readers = [
        threading.Thread(
            target=_reader, args=(store.workdir, done, results[i]),
            name=f"reader-{i}",
        )
        for i in range(N_READERS)
    ]
    writer = threading.Thread(target=_writer, args=(store, done), name="writer")
    for t in readers:
        t.start()
    writer.start()
    writer.join(timeout=120)
    for t in readers:
        t.join(timeout=120)
    assert not writer.is_alive() and not any(t.is_alive() for t in readers)
    assert store.version == N_VERSIONS

    for i, result in enumerate(results):
        assert "error" not in result, f"reader {i} failed: {result['error']!r}"
        versions = result["versions"]
        # every reader made progress and eventually saw the final version
        assert versions, f"reader {i} never saw a snapshot"
        assert versions[-1] == N_VERSIONS
        # visibility is monotone: a reader never travels back in time
        assert all(a <= b for a, b in zip(versions, versions[1:])), (
            f"reader {i} saw versions out of order"
        )
        # and only published versions, never a half-made one
        assert set(versions) <= set(range(1, N_VERSIONS + 1))
