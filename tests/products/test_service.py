"""The service read path: routing, ETags, caching, graceful degradation."""

import json

import numpy as np
import pytest

from repro.products.service import ProductService, ServiceResponse
from repro.products.store import ProductStore
from repro.telemetry.clock import FakeClock
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import TraceRecorder
from tests.products.conftest import make_field, make_product


@pytest.fixture()
def store(tmp_path):
    return ProductStore(tmp_path / "store", tile_size=8, levels=2)


@pytest.fixture()
def published(store):
    field = make_field(1)
    store.publish(make_product(0), {"sst_nowcast": field, "sst_sigma": np.abs(field)})
    return store


def get(service, target, **headers):
    return service.handle("GET", target, headers)


class TestRouting:
    def test_non_get_rejected(self, published):
        service = ProductService(published.workdir)
        response = service.handle("POST", "/v1/products/latest")
        assert response.status == 405

    def test_unknown_paths_404(self, published):
        service = ProductService(published.workdir)
        for target in (
            "/nope",
            "/v1/products",
            "/v1/products/vABC",
            "/v1/products/latest/fields",
            "/v1/products/latest/tiles/sst_nowcast/0",
            "/v1/products/latest/tiles/sst_nowcast/x/y",
            "/v1/products/latest/fields/sst_nowcast?level=abc",
        ):
            assert get(service, target).status == 404, target

    def test_healthz_reports_version(self, store):
        service = ProductService(store.workdir)
        body = json.loads(get(service, "/healthz").body)
        assert body == {"status": "ok", "version": None}
        store.publish(make_product(), {"sst_nowcast": make_field()})
        body = json.loads(get(service, "/healthz").body)
        assert body["version"] == 1


class TestResources:
    def test_product_manifest_and_bulletin(self, published):
        service = ProductService(published.workdir)
        response = get(service, "/v1/products/latest")
        assert response.status == 200
        assert response.header("Content-Type") == "application/json"
        assert response.header("X-Product-Version") == "1"
        body = json.loads(response.body)
        assert body["version"] == 1
        assert set(body["fields"]) == {"sst_nowcast", "sst_sigma"}
        assert "ESSE forecast bulletin" in body["bulletin"]
        assert body["product"] == make_product(0).to_dict()

    def test_field_overview_levels(self, published):
        service = ProductService(published.workdir)
        full = json.loads(
            get(service, "/v1/products/1/fields/sst_nowcast").body
        )
        assert full["shape"] == [20, 24]
        coarse = json.loads(
            get(service, "/v1/products/1/fields/sst_nowcast?level=2").body
        )
        assert coarse["shape"] == [5, 6]
        # land NaNs serialize as nulls, wet cells as floats
        assert full["values"][0][0] is None
        assert isinstance(full["values"][10][10], float)

    def test_tile_values_match_the_stored_field(self, published):
        service = ProductService(published.workdir)
        body = json.loads(
            get(service, "/v1/products/latest/tiles/sst_nowcast/1/1").body
        )
        expected = make_field(1)[8:16, 8:16]
        got = np.array(
            [[np.nan if v is None else v for v in row] for row in body["values"]]
        )
        np.testing.assert_allclose(got, expected)
        assert body["summary"]["count"] == int(np.sum(~np.isnan(expected)))

    def test_unknown_field_and_bad_level_404(self, published):
        service = ProductService(published.workdir)
        missing = get(service, "/v1/products/latest/fields/salinity")
        assert missing.status == 404
        assert json.loads(missing.body)["fields"] == ["sst_nowcast", "sst_sigma"]
        assert get(service, "/v1/products/latest/fields/sst_nowcast?level=9").status == 404
        assert get(service, "/v1/products/latest/tiles/sst_nowcast/9/9").status == 404


class TestValidationAndDegradation:
    def test_etag_revalidation_304(self, published):
        service = ProductService(published.workdir)
        first = get(service, "/v1/products/latest")
        etag = first.header("ETag")
        assert etag.startswith('"v1-')
        revalidated = get(service, "/v1/products/latest", **{"If-None-Match": etag})
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert revalidated.header("ETag") == etag

    def test_etag_changes_across_versions(self, published):
        service = ProductService(published.workdir)
        old = get(service, "/v1/products/latest").header("ETag")
        published.publish(make_product(1), {"sst_nowcast": make_field(2)})
        fresh = get(service, "/v1/products/latest")
        assert fresh.status == 200
        assert fresh.header("ETag") != old
        # stale ETag no longer revalidates
        assert get(service, "/v1/products/latest", **{"If-None-Match": old}).status == 200

    def test_503_before_first_publish(self, store):
        service = ProductService(store.workdir)
        response = get(service, "/v1/products/latest")
        assert response.status == 503
        assert response.header("Retry-After") == "1"

    def test_503_while_future_version_publishes(self, published):
        service = ProductService(published.workdir)
        response = get(service, "/v1/products/99")
        assert response.status == 503
        assert "still publishing" in json.loads(response.body)["error"]

    def test_500_past_the_retry_bound(self, published):
        published.head_path.write_text("permanently corrupt")
        service = ProductService(published.workdir, max_unreadable_reads=1)
        response = get(service, "/v1/products/latest")
        assert response.status == 500
        assert "retry bound" in json.loads(response.body)["error"]


class TestCachingAndTelemetry:
    def test_response_cache_hits_on_repeat(self, published):
        reg = MetricsRegistry()
        service = ProductService(published.workdir, registry=reg)
        first = get(service, "/v1/products/latest")
        second = get(service, "/v1/products/latest")
        assert first.body == second.body
        counters = reg.snapshot()["counters"]
        assert counters["product_cache_hits{cache=responses}"] == 1.0
        assert counters["product_cache_hits{cache=snapshots}"] >= 1.0

    def test_cache_off_serves_identical_bodies(self, published):
        cached = ProductService(published.workdir)
        uncached = ProductService(published.workdir, cache_size=0)
        target = "/v1/products/latest/fields/sst_sigma?level=1"
        assert get(cached, target).body == get(uncached, target).body
        assert get(uncached, target).body == get(uncached, target).body

    def test_request_metrics_and_spans(self, published):
        reg = MetricsRegistry()
        clock = FakeClock()
        recorder = TraceRecorder(clock=clock)
        service = ProductService(published.workdir, registry=reg, telemetry=recorder)
        get(service, "/v1/products/latest")
        get(service, "/nope")
        snap = reg.snapshot()
        assert snap["counters"]["product_requests{route=product,status=200}"] == 1.0
        assert snap["counters"]["product_requests{route=unknown,status=404}"] == 1.0
        assert snap["histograms"]["product_request_seconds{route=product}"]["count"] == 1
        spans = [s.name for s in recorder.spans()]
        assert "product_request" in spans

    def test_response_dataclass_helpers(self):
        response = ServiceResponse(status=503, headers=(("Retry-After", "1"),))
        assert response.reason == "Service Unavailable"
        assert response.header("retry-after") == "1"
        assert response.header("X-Missing", "d") == "d"
