"""Tiled/LOD field layout: summaries, downsampling, serialization."""

import numpy as np
import pytest

from repro.products.tiles import TiledField, TileSummary, downsample, tile_summaries


class TestTileSummary:
    def test_round_trip(self):
        s = TileSummary(tj=1, ti=2, count=9, min=-1.0, max=3.0, mean=0.5, std=0.7)
        assert TileSummary.from_dict(s.to_dict()) == s

    def test_nan_encodes_as_none(self):
        nan = float("nan")
        s = TileSummary(tj=0, ti=0, count=0, min=nan, max=nan, mean=nan, std=nan)
        d = s.to_dict()
        assert d["min"] is None and d["std"] is None
        back = TileSummary.from_dict(d)
        assert np.isnan(back.mean)


class TestDownsample:
    def test_factor_two_mean_pooling(self):
        a = np.array([[1.0, 3.0], [5.0, 7.0]])
        assert downsample(a).tolist() == [[4.0]]

    def test_nan_aware_partial_blocks(self):
        a = np.array([[1.0, np.nan], [3.0, np.nan]])
        assert downsample(a).tolist() == [[2.0]]

    def test_all_land_block_stays_nan(self):
        a = np.full((2, 4), np.nan)
        a[:, 2:] = 1.0
        out = downsample(a)
        assert np.isnan(out[0, 0])
        assert out[0, 1] == 1.0

    def test_odd_shapes_pad_with_nan(self):
        # 3x3 pools to 2x2; the padded cells never contribute
        a = np.ones((3, 3))
        out = downsample(a)
        assert out.shape == (2, 2)
        assert np.all(out == 1.0)

    def test_factor_validation(self):
        with pytest.raises(ValueError, match=">= 2"):
            downsample(np.ones((2, 2)), factor=1)


class TestTileSummaries:
    def test_matches_naive_per_tile_stats(self, field):
        ts = 8
        summaries = {(s.tj, s.ti): s for s in tile_summaries(field, ts)}
        ny, nx = field.shape
        for tj in range(-(-ny // ts)):
            for ti in range(-(-nx // ts)):
                tile = field[tj * ts : (tj + 1) * ts, ti * ts : (ti + 1) * ts]
                wet = tile[~np.isnan(tile)]
                s = summaries[(tj, ti)]
                assert s.count == wet.size
                if wet.size:
                    assert s.min == pytest.approx(wet.min())
                    assert s.max == pytest.approx(wet.max())
                    assert s.mean == pytest.approx(wet.mean())
                    assert s.std == pytest.approx(wet.std(), abs=1e-12)
                else:
                    assert np.isnan(s.mean)

    def test_all_land_tile_counts_zero(self):
        a = np.full((4, 4), np.nan)
        (s,) = tile_summaries(a, 4)
        assert s.count == 0
        assert np.isnan(s.min) and np.isnan(s.std)

    def test_tile_size_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            tile_summaries(np.ones((2, 2)), 0)


class TestTiledField:
    def test_shape_levels_and_tile_grid(self, field):
        tf = TiledField("sst", field, tile_size=8, levels=2)
        assert tf.shape == field.shape
        assert tf.n_levels == 3  # full res + 2 downsamples
        assert tf.tile_grid == (3, 3)  # ceil(20/8), ceil(24/8)
        assert tf.level(1).shape == (10, 12)
        assert tf.level(2).shape == (5, 6)

    def test_level_bounds(self, field):
        tf = TiledField("sst", field)
        with pytest.raises(KeyError, match="levels 0"):
            tf.level(99)

    def test_tile_slicing_and_summary_lookup(self, field):
        tf = TiledField("sst", field, tile_size=8)
        tile = tf.tile(2, 2)
        assert tile.shape == (4, 8)  # edge tile is smaller
        np.testing.assert_array_equal(tile, field[16:20, 16:24])
        s = tf.summary(1, 2)
        assert (s.tj, s.ti) == (1, 2)
        with pytest.raises(KeyError, match="outside tile grid"):
            tf.tile(3, 0)
        with pytest.raises(KeyError, match="outside tile grid"):
            tf.summary(0, 3)

    def test_domain_summary_matches_direct_scan(self, field):
        tf = TiledField("sst", field, tile_size=8)
        wet = field[~np.isnan(field)]
        domain = tf.domain_summary()
        assert domain["count"] == wet.size
        assert domain["min"] == pytest.approx(wet.min())
        assert domain["max"] == pytest.approx(wet.max())
        assert domain["mean"] == pytest.approx(wet.mean())
        assert domain["std"] == pytest.approx(wet.std(), rel=1e-9)

    def test_all_land_domain_summary(self):
        tf = TiledField("land", np.full((8, 8), np.nan))
        assert tf.domain_summary() == {
            "count": 0, "min": None, "max": None, "mean": None, "std": None,
        }

    def test_payload_round_trip(self, field):
        tf = TiledField("sst", field, tile_size=8, levels=2)
        back = TiledField.from_payload(tf.meta(), tf.arrays())
        assert back.name == tf.name
        assert back.tile_size == tf.tile_size
        assert back.summaries == tf.summaries
        for lod in range(tf.n_levels):
            np.testing.assert_array_equal(back.level(lod), tf.level(lod))

    def test_payload_missing_array_rejected(self, field):
        tf = TiledField("sst", field)
        arrays = tf.arrays()
        arrays.pop("sst__L1")
        with pytest.raises(KeyError, match="sst__L1"):
            TiledField.from_payload(tf.meta(), arrays)

    def test_constructor_validation(self, field):
        with pytest.raises(ValueError, match="2-D"):
            TiledField("bad", np.ones(5))
        with pytest.raises(ValueError, match="tile_size"):
            TiledField("bad", field, tile_size=0)
        with pytest.raises(ValueError, match="levels"):
            TiledField("bad", field, levels=0)
