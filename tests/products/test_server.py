"""The asyncio HTTP front end over real sockets."""

import asyncio
import json

import pytest

from repro.products.server import ProductHTTPServer, fetch
from repro.products.service import ProductService
from repro.products.store import ProductStore
from tests.products.conftest import make_field, make_product


@pytest.fixture()
def workdir(tmp_path):
    store = ProductStore(tmp_path / "store")
    store.publish(make_product(0), {"sst_nowcast": make_field(0)})
    return store.workdir


def serve(workdir, scenario):
    """Run one async scenario against a live server; returns its result."""

    async def runner():
        server = ProductHTTPServer(ProductService(workdir))
        async with server.serving():
            return await scenario(server)

    return asyncio.run(runner())


class TestServer:
    def test_binds_an_ephemeral_port(self, workdir):
        async def scenario(server):
            return server.port, server.url

        port, url = serve(workdir, scenario)
        assert port > 0
        assert url == f"http://127.0.0.1:{port}"

    def test_healthz_and_latest_product(self, workdir):
        async def scenario(server):
            health = await fetch(server.host, server.port, "/healthz")
            product = await fetch(server.host, server.port, "/v1/products/latest")
            return health, product

        (hs, _, hbody), (ps, pheaders, pbody) = serve(workdir, scenario)
        assert hs == 200
        assert json.loads(hbody)["version"] == 1
        assert ps == 200
        assert pheaders["content-type"] == "application/json"
        assert int(pheaders["content-length"]) == len(pbody)
        assert json.loads(pbody)["version"] == 1

    def test_etag_revalidation_over_http(self, workdir):
        async def scenario(server):
            status, headers, _ = await fetch(
                server.host, server.port, "/v1/products/latest"
            )
            assert status == 200
            return await fetch(
                server.host,
                server.port,
                "/v1/products/latest",
                headers={"If-None-Match": headers["etag"]},
            )

        status, headers, body = serve(workdir, scenario)
        assert status == 304
        assert body == b""

    def test_keep_alive_connection_reuse(self, workdir):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(server.host, server.port)
            try:
                results = []
                for _ in range(3):
                    results.append(
                        await fetch(
                            server.host, server.port, "/healthz",
                            reader=reader, writer=writer,
                        )
                    )
                return results
            finally:
                writer.close()
                await writer.wait_closed()

        results = serve(workdir, scenario)
        assert [status for status, _, _ in results] == [200, 200, 200]
        assert all(h["connection"] == "keep-alive" for _, h, _ in results)

    def test_connection_close_honoured(self, workdir):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            payload = await reader.read()  # server closes after one response
            writer.close()
            await writer.wait_closed()
            return payload

        payload = serve(workdir, scenario)
        assert payload.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Connection: close" in payload

    def test_malformed_request_gets_400(self, workdir):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(b"this is not http\r\n\r\n")
            await writer.drain()
            payload = await reader.read()
            writer.close()
            await writer.wait_closed()
            return payload

        payload = serve(workdir, scenario)
        assert payload.startswith(b"HTTP/1.1 400")

    def test_concurrent_clients(self, workdir):
        async def scenario(server):
            async def one(i):
                return await fetch(
                    server.host, server.port,
                    "/v1/products/latest/fields/sst_nowcast?level=1",
                )

            return await asyncio.gather(*(one(i) for i in range(16)))

        results = serve(workdir, scenario)
        bodies = {body for _, _, body in results}
        assert all(status == 200 for status, _, _ in results)
        assert len(bodies) == 1  # every client saw the same immutable version

    def test_double_start_rejected(self, workdir):
        async def scenario(server):
            with pytest.raises(RuntimeError, match="already started"):
                await server.start()
            return True

        assert serve(workdir, scenario)
