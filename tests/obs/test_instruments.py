"""Unit tests for the synthetic instruments and the observation network."""

import numpy as np
import pytest

from repro.obs import (
    AUVTrack,
    CTDStation,
    GliderTransect,
    ObservationNetwork,
    SSTSwath,
    aosn2_network,
)
from repro.ocean.model import state_layout


@pytest.fixture()
def grid(small_monterey_grid):
    return small_monterey_grid


@pytest.fixture()
def layout(grid):
    return state_layout(grid)


@pytest.fixture()
def truth(small_model, spun_up_state):
    return spun_up_state


class TestCTD:
    def test_profiles_all_levels(self, grid):
        ctd = CTDStation(x=10000.0, y=10000.0)
        pts = ctd.sample_points(grid)
        temps = [p for p in pts if p[0] == "temp"]
        salts = [p for p in pts if p[0] == "salt"]
        assert len(temps) == grid.nz
        assert len(salts) == grid.nz

    def test_single_station(self, grid):
        pts = CTDStation(x=10000.0, y=10000.0).sample_points(grid)
        positions = {(j, i) for _, _, j, i in pts}
        assert len(positions) == 1

    def test_values_near_truth(self, grid, truth):
        ctd = CTDStation(x=10000.0, y=10000.0)
        rng = np.random.default_rng(0)
        obs = ctd.observe(grid, truth, rng)
        for o in obs:
            arr = truth.temp if o.field == "temp" else truth.salt
            assert abs(o.value - arr[o.level, o.j, o.i]) < 6 * o.noise_std


class TestAUV:
    def test_requires_two_waypoints(self, grid):
        with pytest.raises(ValueError, match="waypoints"):
            AUVTrack(waypoints=[(0.0, 0.0)]).sample_points(grid)

    def test_constant_depth(self, grid):
        auv = AUVTrack(
            waypoints=[(5000.0, 5000.0), (30000.0, 5000.0)], depth=30.0
        )
        pts = auv.sample_points(grid)
        levels = {p[1] for p in pts}
        assert levels == {grid.level_index(30.0)}

    def test_samples_along_track(self, grid):
        auv = AUVTrack(
            waypoints=[(5000.0, 5000.0), (40000.0, 5000.0)],
            sample_spacing=5000.0,
        )
        pts = auv.sample_points(grid)
        assert len(pts) >= 5

    def test_no_duplicate_points(self, grid):
        auv = AUVTrack(
            waypoints=[(5000.0, 5000.0), (30000.0, 5000.0), (5000.0, 5000.0)]
        )
        pts = auv.sample_points(grid)
        assert len(pts) == len(set(pts))


class TestGlider:
    def test_profile_count(self, grid):
        gl = GliderTransect(
            start=(5000.0, 5000.0), end=(40000.0, 30000.0), n_profiles=4
        )
        pts = gl.sample_points(grid)
        stations = {(j, i) for _, _, j, i in pts}
        assert 1 <= len(stations) <= 4

    def test_depth_limited(self, grid):
        gl = GliderTransect(
            start=(5000.0, 5000.0), end=(40000.0, 30000.0), max_depth=50.0
        )
        for _, level, _, _ in gl.sample_points(grid):
            assert grid.z_levels[level] <= 50.0

    def test_invalid_profile_count(self, grid):
        with pytest.raises(ValueError, match="profile"):
            GliderTransect(
                start=(0.0, 0.0), end=(1.0, 1.0), n_profiles=0
            ).sample_points(grid)


class TestSSTSwath:
    def test_surface_only(self, grid):
        pts = SSTSwath().sample_points(grid)
        assert all(level == 0 and f == "temp" for f, level, _, _ in pts)

    def test_decimation_reduces_count(self, grid):
        dense = len(SSTSwath(decimation=1, coverage=1.0).sample_points(grid))
        sparse = len(SSTSwath(decimation=3, coverage=1.0).sample_points(grid))
        assert sparse < dense / 4

    def test_coverage_fraction(self, grid):
        full = len(SSTSwath(decimation=1, coverage=1.0).sample_points(grid))
        half = len(SSTSwath(decimation=1, coverage=0.5).sample_points(grid))
        assert half / full == pytest.approx(0.5, abs=0.1)

    def test_coverage_deterministic(self, grid):
        a = SSTSwath(coverage=0.7).sample_points(grid)
        b = SSTSwath(coverage=0.7).sample_points(grid)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError, match="decimation"):
            SSTSwath(decimation=0)
        with pytest.raises(ValueError, match="coverage"):
            SSTSwath(coverage=0.0)


class TestNetwork:
    def test_requires_instruments(self, grid, layout):
        with pytest.raises(ValueError, match="instrument"):
            ObservationNetwork(grid, layout, [])

    def test_observe_produces_batch(self, grid, layout, truth):
        net = aosn2_network(grid, layout, rng=np.random.default_rng(0))
        batch = net.observe(truth)
        assert batch.size > 20
        assert batch.period_index == 0
        assert batch.time == truth.time

    def test_period_index_increments(self, grid, layout, truth):
        net = aosn2_network(grid, layout, rng=np.random.default_rng(0))
        assert net.observe(truth).period_index == 0
        assert net.observe(truth).period_index == 1

    def test_land_points_skipped(self, grid, layout, truth):
        net = aosn2_network(grid, layout, rng=np.random.default_rng(0))
        batch = net.observe(truth)
        for o in batch.operator.observations:
            assert grid.mask[o.j, o.i]

    def test_instrument_mix(self, grid, layout, truth):
        net = aosn2_network(grid, layout, rng=np.random.default_rng(0))
        counts = net.observe(truth).operator.by_instrument()
        assert {"ctd", "glider", "sst"} <= set(counts)

    def test_reproducible_with_seed(self, grid, layout, truth):
        a = aosn2_network(grid, layout, rng=np.random.default_rng(5)).observe(truth)
        b = aosn2_network(grid, layout, rng=np.random.default_rng(5)).observe(truth)
        assert np.array_equal(a.operator.values, b.operator.values)
