"""Unit tests for the observation operator H and noise model R."""

import numpy as np
import pytest

from repro.core.state import FieldLayout, FieldSpec
from repro.obs.operators import Observation, ObservationOperator


@pytest.fixture()
def layout():
    return FieldLayout(
        [
            FieldSpec("eta", (4, 5), scale=2.0),
            FieldSpec("temp", (3, 4, 5), scale=0.5),
        ]
    )


def obs(**kw):
    defaults = dict(
        field="temp", level=1, j=2, i=3, value=10.0, noise_std=0.1
    )
    defaults.update(kw)
    return Observation(**defaults)


class TestObservation:
    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ValueError, match="noise_std"):
            obs(noise_std=0.0)

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError, match="non-negative"):
            obs(j=-1)


class TestOperatorConstruction:
    def test_requires_observations(self, layout):
        with pytest.raises(ValueError, match="at least one"):
            ObservationOperator(layout, [])

    def test_rejects_level_on_2d_field(self, layout):
        with pytest.raises(ValueError, match="level"):
            ObservationOperator(layout, [obs(field="eta", level=1)])

    def test_rejects_off_grid(self, layout):
        with pytest.raises(ValueError, match="off-grid"):
            ObservationOperator(layout, [obs(j=100)])
        with pytest.raises(ValueError, match="off-grid"):
            ObservationOperator(layout, [obs(level=10)])

    def test_unknown_field(self, layout):
        with pytest.raises(KeyError):
            ObservationOperator(layout, [obs(field="vorticity")])


class TestApplication:
    def test_observe_picks_correct_entry(self, layout):
        op = ObservationOperator(layout, [obs(field="temp", level=1, j=2, i=3)])
        fields = {
            "eta": np.zeros((4, 5)),
            "temp": np.arange(60, dtype=float).reshape(3, 4, 5),
        }
        x = layout.pack(fields)
        expected = fields["temp"][1, 2, 3]
        assert op.observe(x)[0] == expected

    def test_observe_2d_field(self, layout):
        op = ObservationOperator(layout, [obs(field="eta", level=0, j=1, i=4)])
        eta = np.arange(20, dtype=float).reshape(4, 5)
        x = layout.pack({"eta": eta, "temp": np.zeros((3, 4, 5))})
        assert op.observe(x)[0] == eta[1, 4]

    def test_observe_rejects_wrong_size(self, layout):
        op = ObservationOperator(layout, [obs()])
        with pytest.raises(ValueError, match="state vector"):
            op.observe(np.zeros(3))

    def test_observe_modes_matches_columnwise(self, layout):
        rng = np.random.default_rng(0)
        op = ObservationOperator(
            layout, [obs(j=0, i=0), obs(j=1, i=1), obs(field="eta", level=0)]
        )
        modes = rng.random((layout.size, 4))
        hm = op.observe_modes(modes)
        assert hm.shape == (3, 4)
        for p in range(4):
            assert np.allclose(hm[:, p], op.observe(modes[:, p]))

    def test_observe_modes_rejects_vector(self, layout):
        op = ObservationOperator(layout, [obs()])
        with pytest.raises(ValueError, match="modes"):
            op.observe_modes(np.zeros(layout.size))

    def test_innovation(self, layout):
        op = ObservationOperator(layout, [obs(value=3.0)])
        x = np.zeros(layout.size)
        assert op.innovation(x)[0] == pytest.approx(3.0)

    def test_noise_var(self, layout):
        op = ObservationOperator(layout, [obs(noise_std=0.2), obs(noise_std=0.5, j=1)])
        assert np.allclose(op.noise_var, [0.04, 0.25])

    def test_perturbed_values_statistics(self, layout):
        op = ObservationOperator(layout, [obs(value=1.0, noise_std=0.3)])
        rng = np.random.default_rng(1)
        draws = np.array([op.perturbed_values(rng)[0] for _ in range(4000)])
        assert draws.mean() == pytest.approx(1.0, abs=0.02)
        assert draws.std() == pytest.approx(0.3, rel=0.1)

    def test_by_instrument_counts(self, layout):
        op = ObservationOperator(
            layout,
            [obs(instrument="ctd"), obs(instrument="ctd", j=1), obs(instrument="sst", i=1)],
        )
        assert op.by_instrument() == {"ctd": 2, "sst": 1}
