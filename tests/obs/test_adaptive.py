"""Tests for adaptive (uncertainty-guided) sampling."""

import numpy as np
import pytest

from repro.core import ESSEAnalysis, ESSEConfig, ESSEDriver, synthetic_initial_subspace
from repro.obs.adaptive import (
    AdaptiveSampler,
    SamplingSuggestion,
    suggest_sampling_locations,
)
from repro.obs.network import ObservationNetwork
from repro.ocean.model import state_layout


@pytest.fixture(scope="module")
def forecast_setup(small_model, spun_up_state):
    subspace = synthetic_initial_subspace(
        small_model.layout,
        small_model.grid.shape2d,
        small_model.grid.nz,
        rank=10,
        seed=4,
    )
    driver = ESSEDriver(
        small_model,
        ESSEConfig(
            initial_ensemble_size=8,
            max_ensemble_size=16,
            convergence_tolerance=0.9,
            max_subspace_rank=10,
        ),
        root_seed=3,
    )
    forecast = driver.forecast(
        spun_up_state, subspace, duration=4 * small_model.config.dt
    )
    return small_model, forecast


class TestSuggestions:
    def test_count_and_ordering(self, forecast_setup):
        model, forecast = forecast_setup
        picks = suggest_sampling_locations(
            forecast.subspace, model.layout, model.grid, count=5
        )
        assert len(picks) == 5
        variances = [p.predicted_variance for p in picks]
        # first pick has the globally largest variance
        assert variances[0] == max(variances)

    def test_all_points_wet_and_distinct(self, forecast_setup):
        model, forecast = forecast_setup
        picks = suggest_sampling_locations(
            forecast.subspace, model.layout, model.grid, count=8
        )
        seen = set()
        for p in picks:
            assert model.grid.mask[p.j, p.i]
            assert (p.j, p.i) not in seen
            seen.add((p.j, p.i))

    def test_first_pick_matches_variance_field(self, forecast_setup):
        model, forecast = forecast_setup
        layout = model.layout
        picks = suggest_sampling_locations(
            forecast.subspace, layout, model.grid, field="temp", level=0, count=1
        )
        var = layout.view(forecast.subspace.variance_field(), "temp")[0]
        var = np.where(model.grid.mask, var, -np.inf)
        j, i = np.unravel_index(np.argmax(var), var.shape)
        assert (picks[0].j, picks[0].i) == (j, i)

    def test_conditioning_spreads_picks(self, forecast_setup):
        """Greedy-with-conditioning picks are more spread than pure top-K."""
        model, forecast = forecast_setup
        layout = model.layout
        picks = suggest_sampling_locations(
            forecast.subspace, layout, model.grid, count=4, noise_std=0.01
        )
        var = layout.view(forecast.subspace.variance_field(), "temp")[0]
        var = np.where(model.grid.mask, var, -np.inf)
        flat_order = np.argsort(var.ravel())[::-1][:4]
        topk = {tuple(np.unravel_index(k, var.shape)) for k in flat_order}
        chosen = {(p.j, p.i) for p in picks}
        # conditioning must change at least one pick vs naive top-K
        # (uncertainty lobes span several contiguous points)
        assert chosen != topk or len(topk) < 4

    def test_validation(self, forecast_setup):
        model, forecast = forecast_setup
        with pytest.raises(ValueError, match="count"):
            suggest_sampling_locations(
                forecast.subspace, model.layout, model.grid, count=0
            )
        with pytest.raises(ValueError, match="level"):
            suggest_sampling_locations(
                forecast.subspace, model.layout, model.grid, level=99
            )
        with pytest.raises(ValueError, match="levels"):
            suggest_sampling_locations(
                forecast.subspace, model.layout, model.grid, field="eta", level=1
            )


class TestAdaptiveSampler:
    def test_requires_suggestions(self):
        with pytest.raises(ValueError):
            AdaptiveSampler([])

    def test_observes_at_suggested_points(self, forecast_setup):
        model, forecast = forecast_setup
        picks = suggest_sampling_locations(
            forecast.subspace, model.layout, model.grid, count=3
        )
        sampler = AdaptiveSampler(picks)
        rng = np.random.default_rng(0)
        obs = sampler.observe(model.grid, forecast.central, rng)
        assert len(obs) == 3
        assert {(o.j, o.i) for o in obs} == {(p.j, p.i) for p in picks}

    def test_adaptive_beats_uninformed_sampling(self, forecast_setup):
        """Same budget of observations: adaptive placement reduces the
        posterior uncertainty more than uniform placement."""
        model, forecast = forecast_setup
        layout, grid = model.layout, model.grid
        analysis = ESSEAnalysis(layout)
        x = model.to_vector(forecast.central)
        rng = np.random.default_rng(1)
        budget = 6

        picks = suggest_sampling_locations(
            forecast.subspace, layout, grid, count=budget
        )
        adaptive = ObservationNetwork(
            grid, layout, [AdaptiveSampler(picks)], rng=rng
        ).observe(forecast.central)

        # uninformed: evenly spread wet points
        wet_j, wet_i = np.nonzero(grid.mask)
        step = max(len(wet_j) // budget, 1)
        fixed_picks = [
            SamplingSuggestion("temp", 0, int(wet_j[k]), int(wet_i[k]), 0.0)
            for k in range(0, budget * step, step)
        ][:budget]
        fixed = ObservationNetwork(
            grid, layout, [AdaptiveSampler(fixed_picks)], rng=np.random.default_rng(1)
        ).observe(forecast.central)

        post_adaptive = analysis.update(x, forecast.subspace, adaptive.operator)
        post_fixed = analysis.update(x, forecast.subspace, fixed.operator)
        assert (
            post_adaptive.subspace.total_variance
            < post_fixed.subspace.total_variance
        )
