"""Fault injection, retry/backoff, and straggler handling for the task pool.

Covers the robustness subsystem end to end: deterministic fault draws,
the reproducible backoff schedule, fault-injected ensemble runs completing
via retries (or degrading with the documented warning), corrupt-output
detection, and straggler cancellation freeing pool slots.
"""

import time

import numpy as np
import pytest

from repro.core import (
    ESSEConfig,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.core.ensemble import EnsembleRunner
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.workflow import (
    DegradedEnsembleWarning,
    FaultInjector,
    FaultKind,
    ParallelESSEWorkflow,
    ProgressMonitor,
    RetryPolicy,
    StatusDirectory,
    TaskStatus,
)


@pytest.fixture(scope="module")
def setup():
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        model.layout, grid.shape2d, grid.nz, rank=8, seed=0
    )
    perturber = PerturbationGenerator(model.layout, subspace, root_seed=5)
    runner = EnsembleRunner(model, perturber, duration=6 * 400.0, root_seed=5)
    return model, background, runner


def config(**kw):
    defaults = dict(
        initial_ensemble_size=4,
        max_ensemble_size=16,
        convergence_tolerance=1.0,  # run to Nmax: every index executes
        max_subspace_rank=8,
    )
    defaults.update(kw)
    return ESSEConfig(**defaults)


class TestFaultInjector:
    def test_draws_are_deterministic_and_seed_dependent(self):
        a = FaultInjector(crash_rate=0.2, seed=0)
        b = FaultInjector(crash_rate=0.2, seed=0)
        c = FaultInjector(crash_rate=0.2, seed=1)
        draws_a = [a.draw(i, t) for i in range(50) for t in (1, 2)]
        draws_b = [b.draw(i, t) for i in range(50) for t in (1, 2)]
        draws_c = [c.draw(i, t) for i in range(50) for t in (1, 2)]
        assert draws_a == draws_b
        assert draws_a != draws_c
        assert any(d is FaultKind.CRASH for d in draws_a)

    def test_draws_partition_by_rate(self):
        fi = FaultInjector(crash_rate=0.3, corrupt_rate=0.3, stall_rate=0.3, seed=7)
        draws = [fi.draw(i, 1) for i in range(600)]
        for kind in (FaultKind.CRASH, FaultKind.CORRUPT, FaultKind.STALL):
            frac = sum(1 for d in draws if d is kind) / len(draws)
            assert 0.2 < frac < 0.4

    def test_draw_depends_on_task_kind(self):
        fi = FaultInjector(crash_rate=0.5, seed=0)
        pe = [fi.draw(i, 1, kind="pemodel") for i in range(100)]
        ac = [fi.draw(i, 1, kind="acoustic") for i in range(100)]
        assert pe != ac

    def test_submit_failures_independent_of_execution_faults(self):
        fi = FaultInjector(crash_rate=1.0, submit_failure_rate=0.0, seed=0)
        assert not fi.submit_fails(0, 1)
        fi2 = FaultInjector(submit_failure_rate=1.0, seed=0)
        assert fi2.submit_fails(0, 1)
        assert fi2.draw(0, 1) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultInjector(crash_rate=1.5)
        with pytest.raises(ValueError, match="sum"):
            FaultInjector(crash_rate=0.6, corrupt_rate=0.6)
        with pytest.raises(ValueError, match="stall_seconds"):
            FaultInjector(stall_seconds=-1.0)

    def test_fire_and_canonical_sequence(self):
        fi = FaultInjector(crash_rate=0.5, seed=0)
        fi.fire(FaultKind.CRASH, 5, 1)
        fi.fire(FaultKind.CRASH, 2, 1)
        seq = fi.fault_sequence()
        assert [e.index for e in seq] == [2, 5]
        assert len(fi.history) == 2

    def test_corrupt_bytes_truncates(self):
        fi = FaultInjector()
        data = bytes(range(100))
        out = fi.corrupt_bytes(data)
        assert 0 < len(out) < len(data)
        assert data.startswith(out)

    def test_stall_cancellable(self):
        import threading

        fi = FaultInjector(stall_seconds=30.0)
        cancel = threading.Event()
        cancel.set()
        # Genuine wall-clock assertion: a pre-cancelled stall must return
        # immediately in real time, whatever clock the workflow injects.
        t0 = time.perf_counter()  # repro-lint: disable=REP002
        assert fi.stall(cancel) is True  # returned cancelled, immediately
        assert time.perf_counter() - t0 < 1.0  # repro-lint: disable=REP002


class TestRetryPolicy:
    def test_backoff_is_exponential_and_deterministic(self):
        rp = RetryPolicy(
            max_attempts=4, backoff_base_s=0.1, backoff_factor=2.0, jitter=0.0
        )
        assert rp.schedule(0) == pytest.approx([0.1, 0.2, 0.4])
        rpj = RetryPolicy(max_attempts=4, backoff_base_s=0.1, jitter=0.5, seed=9)
        s1 = rpj.schedule(3)
        s2 = RetryPolicy(max_attempts=4, backoff_base_s=0.1, jitter=0.5, seed=9).schedule(3)
        assert s1 == s2  # fixed seed -> identical schedule
        assert all(0.1 * 2 ** k <= d <= 0.15 * 2 ** k for k, d in enumerate(s1))
        assert rpj.schedule(4) != s1  # per-index decorrelation

    def test_retries_left(self):
        rp = RetryPolicy(max_attempts=3)
        assert rp.retries_left(1) and rp.retries_left(2)
        assert not rp.retries_left(3)
        assert not RetryPolicy(max_attempts=1).retries_left(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestFaultInjectedWorkflow:
    """The acceptance demo: crash faults are healed by retries."""

    def run_demo(self, setup, workdir, seed=0):
        _, background, runner = setup
        faults = FaultInjector(crash_rate=0.2, seed=seed)
        wf = ParallelESSEWorkflow(
            runner,
            config(),
            workdir,
            n_workers=4,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01, seed=seed),
            faults=faults,
        )
        return wf, wf.run(background)

    def test_crash_injected_run_completes_via_retries(self, setup, tmp_path):
        wf, result = self.run_demo(setup, tmp_path)
        # crashes happened and were healed: full ensemble, zero terminal
        assert result.n_retried > 0
        assert result.n_failed == 0
        assert not result.degraded
        assert result.n_completed == 16
        assert result.events_of("retry")
        # the monitor surfaces the retry counters from attempt records
        report = ProgressMonitor(wf.status, {"pemodel": 16}).report("pemodel")
        assert report.n_retried > 0
        assert "retried" in report.render()
        # attempt-numbered records preserve the failed first attempts
        counts = wf.status.attempt_counts("pemodel")
        assert any(
            per.get(TaskStatus.MODEL_FAILURE, 0) > 0 for per in counts.values()
        )

    def test_same_seed_reproduces_fault_sequence(self, setup, tmp_path):
        wf1, r1 = self.run_demo(setup, tmp_path / "a")
        wf2, r2 = self.run_demo(setup, tmp_path / "b")
        assert wf1.faults.fault_sequence() == wf2.faults.fault_sequence()
        assert wf1.faults.fault_sequence()  # non-empty: faults really fired
        assert r1.n_retried == r2.n_retried

    def test_different_seed_changes_fault_sequence(self, setup, tmp_path):
        wf1, _ = self.run_demo(setup, tmp_path / "a", seed=0)
        wf2, _ = self.run_demo(setup, tmp_path / "b", seed=1)
        assert wf1.faults.fault_sequence() != wf2.faults.fault_sequence()

    def test_corrupt_output_detected_and_retried(self, setup, tmp_path):
        _, background, runner = setup
        wf = ParallelESSEWorkflow(
            runner,
            config(),
            tmp_path,
            n_workers=4,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
            faults=FaultInjector(corrupt_rate=0.3, seed=1),
        )
        result = wf.run(background)
        assert result.events_of("member_corrupt")
        assert result.n_retried > 0
        assert result.n_completed == 16  # healed: torn writes rerun
        # the torn attempt is on record as an IO failure
        counts = wf.status.attempt_counts("pemodel")
        assert any(per.get(TaskStatus.IO_FAILURE, 0) > 0 for per in counts.values())

    def test_straggler_cancellation_frees_pool_slots(self, setup, tmp_path):
        _, background, runner = setup
        stall = 30.0  # far longer than the whole test should take
        wf = ParallelESSEWorkflow(
            runner,
            config(),
            tmp_path,
            n_workers=4,
            retry=RetryPolicy(
                max_attempts=4, backoff_base_s=0.01, timeout_seconds=1.0
            ),
            faults=FaultInjector(stall_rate=0.3, stall_seconds=stall, seed=2),
        )
        result = wf.run(background)
        # stalled attempts were cancelled at the deadline, their slots
        # reused, and replacements completed the ensemble
        assert result.n_timed_out > 0
        assert result.events_of("straggler_cancel")
        assert result.n_completed == 16
        assert result.wall_seconds < stall / 2
        report = ProgressMonitor(wf.status, {"pemodel": 16}).report("pemodel")
        assert report.n_timed_out > 0
        assert "timed out" in report.render()

    def test_transient_submit_failures_retried(self, setup, tmp_path):
        _, background, runner = setup
        wf = ParallelESSEWorkflow(
            runner,
            config(),
            tmp_path,
            n_workers=4,
            retry=RetryPolicy(backoff_base_s=0.01),
            faults=FaultInjector(submit_failure_rate=0.4, seed=3),
        )
        result = wf.run(background)
        assert result.events_of("submit_retry")
        assert result.n_completed == 16

    def test_retries_exhausted_degrades_with_warning(self, setup, tmp_path):
        _, background, runner = setup
        wf = ParallelESSEWorkflow(
            runner,
            config(),
            tmp_path,
            n_workers=4,
            retry=None,  # seed semantics: every failure terminal
            faults=FaultInjector(crash_rate=0.4, seed=0),
        )
        with pytest.warns(DegradedEnsembleWarning):
            result = wf.run(background)
        assert result.degraded
        assert result.n_failed > 0
        assert result.events_of("member_terminal_failure")
        assert result.subspace.rank >= 1  # survivors still span a subspace

    def test_no_faults_no_retry_is_seed_behaviour(self, setup, tmp_path):
        _, background, runner = setup
        result = ParallelESSEWorkflow(
            runner, config(), tmp_path, n_workers=4
        ).run(background)
        assert result.n_retried == 0
        assert result.n_timed_out == 0
        assert not result.degraded


class TestAttemptRecords:
    def test_attempt_numbered_status_files(self, tmp_path):
        status = StatusDirectory(tmp_path)
        status.write("pemodel", 3, TaskStatus.MODEL_FAILURE, attempt=1)
        status.write("pemodel", 3, TaskStatus.SUCCESS, attempt=2)
        # latest outcome drives restart; history keeps both attempts
        assert status.read("pemodel", 3) == TaskStatus.SUCCESS
        assert status.attempt_history("pemodel", 3) == {
            1: TaskStatus.MODEL_FAILURE,
            2: TaskStatus.SUCCESS,
        }
        counts = status.attempt_counts("pemodel")
        assert counts[3][TaskStatus.MODEL_FAILURE] == 1
        assert counts[3][TaskStatus.SUCCESS] == 1

    def test_attempt_files_do_not_confuse_completed_indices(self, tmp_path):
        status = StatusDirectory(tmp_path)
        status.write("pemodel", 0, TaskStatus.SUCCESS, attempt=2)
        assert status.completed_indices("pemodel") == {0: TaskStatus.SUCCESS}
        assert status.successful_indices("pemodel") == [0]

    def test_retryable_classification(self):
        assert TaskStatus.MODEL_FAILURE.is_retryable
        assert TaskStatus.IO_FAILURE.is_retryable
        assert TaskStatus.TIMED_OUT.is_retryable
        assert not TaskStatus.SUCCESS.is_retryable
        assert not TaskStatus.CANCELLED.is_retryable

    def test_validation(self, tmp_path):
        status = StatusDirectory(tmp_path)
        with pytest.raises(ValueError, match="attempt"):
            status.write("pemodel", 0, TaskStatus.SUCCESS, attempt=0)
