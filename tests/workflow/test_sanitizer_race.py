"""Detection-power check: the sanitizer catches the PR 3 sweep-count race.

PR 3's static lock rule (REP003) caught an unlocked mutation of the
parallel workflow's ``_missing_sweeps`` dict -- the differ thread bumped
the per-member I/O sweep counter while the main loop read it under
``_fault_lock``.  This test re-introduces exactly that bug in a fixture
pool and proves the *dynamic* layer (the Eraser-style lockset detector)
reports it too, under a deterministic two-thread schedule; the fixed
locking discipline stays clean.  If a refactor ever weakens the
detector, this test fails before a real race can slip through.
"""

import threading

from repro.util.sanitizer import new_lock, sanitized, track


class SweepPool:
    """The fault-signal corner of ``ParallelESSEWorkflow``, reduced.

    ``locked`` selects between the shipped discipline (every
    ``_missing_sweeps`` access under ``_fault_lock``) and the pre-PR 3
    bug (the differ-side bump skips the lock).
    """

    def __init__(self, locked: bool):
        self.locked = locked
        self._fault_lock = new_lock("SweepPool._fault_lock")
        self._missing_sweeps = {}
        track(self, "_missing_sweeps")

    def note_missing(self, index: int) -> None:
        """Differ-thread side: count a status-before-file sweep."""
        if self.locked:
            with self._fault_lock:
                sweeps = self._missing_sweeps.get(index, 0) + 1
                self._missing_sweeps[index] = sweeps
        else:
            sweeps = self._missing_sweeps.get(index, 0) + 1
            self._missing_sweeps[index] = sweeps  # repro-lint: disable=REP003 -- the planted PR 3 race

    def check_stragglers(self) -> int:
        """Main-loop side: read the counters under the lock."""
        with self._fault_lock:
            return sum(self._missing_sweeps.values())


def run_schedule(pool: SweepPool) -> None:
    """One deterministic two-thread interleaving over the pool.

    Barriers sequence the phases -- main-loop read, then differ bump,
    then main-loop read -- so the verdict never depends on scheduler
    luck: the lockset detector judges the locking discipline, not
    whether the threads actually collided.
    """
    phase = threading.Barrier(2, timeout=10.0)

    def differ():
        phase.wait()  # let the main loop touch the dict first
        pool.note_missing(3)
        pool.note_missing(3)
        phase.wait()

    def main_loop():
        assert pool.check_stragglers() == 0
        phase.wait()
        phase.wait()
        assert pool.check_stragglers() == 2

    t = threading.Thread(target=differ, name="esse-differ")
    t.start()
    main_loop()
    t.join()


class TestSweepRaceDetection:
    def test_unlocked_sweep_bump_is_caught(self):
        with sanitized() as monitor:
            pool = SweepPool(locked=False)
            run_schedule(pool)
            races = monitor.races
            assert len(races) == 1
            assert races[0].var == "SweepPool._missing_sweeps"
            assert races[0].thread == "esse-differ"
            # The planted race is this test's *purpose*: clear it so the
            # suite-level REPRO_SANITIZE fixture does not fail the test.
            monitor.clear()

    def test_locked_discipline_is_clean(self):
        with sanitized() as monitor:
            pool = SweepPool(locked=True)
            run_schedule(pool)
            assert monitor.reports == ()
