"""Tests for the ESSE task-graph (Fig 3 / Fig 4) analysis."""

import networkx as nx
import pytest

from repro.workflow.dag import (
    DagAnalysis,
    analyse,
    build_parallel_esse_dag,
    build_serial_esse_dag,
    esse_speedup_bound,
)

TIMES = {"pert": 6.0, "pemodel": 1500.0, "diff": 2.0, "svd": 120.0, "conv": 1.0}


class TestGraphShapes:
    def test_node_counts_match(self):
        s = build_serial_esse_dag(10)
        p = build_parallel_esse_dag(10)
        # same inventory: 3 per member + svd + conv
        assert s.number_of_nodes() == p.number_of_nodes() == 32

    def test_both_acyclic(self):
        assert nx.is_directed_acyclic_graph(build_serial_esse_dag(5))
        assert nx.is_directed_acyclic_graph(build_parallel_esse_dag(5))

    def test_serial_diff_chain(self):
        g = build_serial_esse_dag(4)
        assert g.has_edge("diff/0", "diff/1")
        assert g.has_edge("diff/2", "diff/3")

    def test_serial_barrier_before_diffs(self):
        g = build_serial_esse_dag(4)
        for j in range(4):
            assert g.has_edge(f"pemodel/{j}", "diff/0")

    def test_parallel_members_independent(self):
        g = build_parallel_esse_dag(4)
        assert not g.has_edge("diff/0", "diff/1")
        assert g.has_edge("diff/3", "svd")
        assert not g.has_edge("pemodel/0", "diff/1")

    def test_validation(self):
        with pytest.raises(ValueError):
            build_serial_esse_dag(0)
        with pytest.raises(ValueError):
            build_parallel_esse_dag(0)


class TestAnalysis:
    def test_total_work_equal_in_both(self):
        s = analyse(build_serial_esse_dag(20), TIMES)
        p = analyse(build_parallel_esse_dag(20), TIMES)
        assert s.total_work == pytest.approx(p.total_work)

    def test_serial_span_contains_all_pemodels(self):
        """Fig 3's barrier puts only ONE pemodel on the span (the members
        run one after another on the shepherd, but the DAG has no worker
        limit) -- the diff chain, not the forecasts, is its structural
        extra length."""
        n = 20
        s = analyse(build_serial_esse_dag(n), TIMES)
        p = analyse(build_parallel_esse_dag(n), TIMES)
        # serial span >= parallel span: extra diff-chain + barrier
        assert s.critical_path > p.critical_path
        # parallel span = pert + pemodel + diff + svd + conv
        expected = sum(TIMES.values())
        assert p.critical_path == pytest.approx(expected)
        # serial span adds the full diff chain after every pemodel
        expected_serial = (
            TIMES["pert"] + TIMES["pemodel"] + n * TIMES["diff"]
            + TIMES["svd"] + TIMES["conv"]
        )
        assert s.critical_path == pytest.approx(expected_serial)

    def test_average_parallelism_grows_with_members(self):
        p10 = analyse(build_parallel_esse_dag(10), TIMES)
        p100 = analyse(build_parallel_esse_dag(100), TIMES)
        assert p100.average_parallelism > 5 * p10.average_parallelism

    def test_brents_bound(self):
        a = DagAnalysis(total_work=1000.0, critical_path=100.0, node_count=5)
        assert a.makespan_lower_bound(1) == 1000.0
        assert a.makespan_lower_bound(5) == 200.0
        assert a.makespan_lower_bound(1000) == 100.0
        with pytest.raises(ValueError):
            a.makespan_lower_bound(0)

    def test_missing_duration_rejected(self):
        g = build_parallel_esse_dag(2)
        with pytest.raises(KeyError, match="pemodel"):
            analyse(g, {"pert": 1.0, "diff": 1.0, "svd": 1.0, "conv": 1.0})

    def test_cycle_rejected(self):
        g = nx.DiGraph()
        g.add_node("a", kind="pert")
        g.add_node("b", kind="pert")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(ValueError, match="acyclic"):
            analyse(g, {"pert": 1.0})


class TestSpeedupBound:
    def test_speedup_increases_with_workers(self):
        assert esse_speedup_bound(100, 100) > esse_speedup_bound(100, 10) > 1.0

    def test_speedup_saturates_at_span(self):
        """Beyond work/span workers, more cores stop helping."""
        at_200 = esse_speedup_bound(100, 200)
        at_2000 = esse_speedup_bound(100, 2000)
        assert at_2000 == pytest.approx(at_200, rel=0.25)

    def test_default_durations_are_papers(self):
        analysis = analyse(build_parallel_esse_dag(600))
        # 600 members at ~1537.5 s each dominates total work
        assert analysis.total_work > 600 * 1500.0
