"""Regression tests for the decoupled SVD/convergence worker.

These drive :meth:`ParallelESSEWorkflow._svd_loop` directly against
hand-published covariance snapshots, pinning the two checkpoint-accounting
bugs fixed in this PR:

- a snapshot whose count jumps past several growth checkpoints must
  satisfy *all* of them with one SVD (the old loop advanced one
  checkpoint per snapshot, so later same-count republishes fired
  spurious SVDs);
- on shutdown the last published snapshot must always get a final SVD
  when it holds unfactored members, even below the next checkpoint (the
  old loop silently exempted the completed ensemble from the
  convergence test).

Plus the torn-safe-file resilience contract: an unreadable snapshot is
"no snapshot yet" with structured, bounded retries.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import ESSEConfig
from repro.telemetry.clock import MONOTONIC
from repro.telemetry.metrics import MetricsRegistry
from repro.workflow import ParallelESSEWorkflow
from repro.workflow.covfile import CovarianceFileSet, CovarianceReadError

BACKENDS = ("memmap", "npz")


def make_workflow(tmp_path, backend, **cfg_kw):
    defaults = dict(
        initial_ensemble_size=4,
        max_ensemble_size=16,
        convergence_tolerance=1.0,  # never converge: count every SVD
        max_subspace_rank=8,
    )
    defaults.update(cfg_kw)
    return ParallelESSEWorkflow(
        runner=None,  # the SVD loop never touches the runner
        config=ESSEConfig(**defaults),
        workdir=tmp_path,
        poll_interval=0.002,
        covfile_backend=backend,
        metrics=MetricsRegistry(),
    )


def publish(wf, count, n=24, seed=0):
    """Publish a count-member snapshot through the workflow's backend.

    Republishing the same count bumps the version without changing the
    data -- exactly what a differ publish with no new members since the
    reader's last poll looks like.
    """
    rng = np.random.default_rng(seed)
    columns = rng.standard_normal((n, count))
    if wf.covfile_backend == "memmap":
        new = count - wf.covset.count
        if new > 0:
            ids = np.arange(count - new, count)
            wf.covset.append(columns[:, count - new :], ids)
        wf.covset.publish()
    else:
        scale = 1.0 / np.sqrt(count - 1)
        wf.covset.write_live(columns * scale, list(range(count)))
        wf.covset.publish()


class LoopHarness:
    """Run ``_svd_loop`` on a background thread with clean shutdown."""

    def __init__(self, wf):
        self.wf = wf
        self.out = {}
        self.stop = threading.Event()
        self.converged = threading.Event()
        self.errors = []
        from repro.core.convergence import ConvergenceCriterion

        self.criterion = ConvergenceCriterion(
            tolerance=wf.config.convergence_tolerance
        )
        checkpoints = wf.config.stage_sizes()

        def body():
            try:
                wf._svd_loop(
                    self.criterion, checkpoints, self.converged, self.stop, self.out
                )
            except BaseException as exc:
                self.errors.append(exc)

        self.thread = threading.Thread(target=body, name="test-svd-loop")

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc):
        self.stop.set()
        self.thread.join(timeout=10.0)
        assert not self.thread.is_alive(), "svd loop failed to stop"

    def events_of(self, kind):
        with self.wf._events_lock:
            return [e for e in self.wf._events if e.kind == kind]

    def wait_for(self, kind, count, timeout=5.0):
        deadline = MONOTONIC() + timeout
        while MONOTONIC() < deadline:
            if len(self.events_of(kind)) >= count:
                return
            time.sleep(0.002)
        raise AssertionError(
            f"timed out waiting for {count} {kind!r} events; "
            f"have {self.events_of(kind)}"
        )

    def settle(self, polls=10):
        """Give the loop enough polls to act on anything published."""
        time.sleep(polls * self.wf.poll_interval)


@pytest.mark.parametrize("backend", BACKENDS)
class TestCheckpointAccounting:
    def test_snapshot_jumping_checkpoints_gets_one_svd(self, tmp_path, backend):
        """count=16 satisfies checkpoints [4, 8, 16]: one SVD, not three."""
        wf = make_workflow(tmp_path, backend)
        with LoopHarness(wf) as h:
            publish(wf, 16)
            h.wait_for("svd_done", 1)
            # a republish with the same count (new version, no new members)
            # must not fire the checkpoints the jump already satisfied
            publish(wf, 16)
            h.settle()
            assert len(h.events_of("svd_start")) == 1
        # shutdown drain: nothing unfactored, so still exactly one SVD
        assert len(h.events_of("svd_start")) == 1
        assert h.out["count"] == 16

    def test_republished_count_fires_no_spurious_svd(self, tmp_path, backend):
        wf = make_workflow(tmp_path, backend)
        with LoopHarness(wf) as h:
            publish(wf, 4)
            h.wait_for("svd_done", 1)
            publish(wf, 4)  # differ republish, no growth
            h.settle()
            assert len(h.events_of("svd_start")) == 1
        assert h.out["count"] == 4

    def test_final_snapshot_below_checkpoint_gets_final_svd(
        self, tmp_path, backend
    ):
        """The completed ensemble is factored even below the next checkpoint."""
        wf = make_workflow(tmp_path, backend)
        with LoopHarness(wf) as h:
            publish(wf, 4)
            h.wait_for("svd_done", 1)
            publish(wf, 6)  # below the next checkpoint (8) when the run ends
        done = h.events_of("svd_done")
        assert len(done) == 2
        assert "count=6" in done[-1].detail
        assert "final=1" in done[-1].detail
        assert h.out["count"] == 6
        assert self_history_counts(h) == [6]

    def test_final_drain_without_any_checkpoint_svd(self, tmp_path, backend):
        """A run that ends before the first checkpoint still gets its SVD."""
        wf = make_workflow(tmp_path, backend)
        with LoopHarness(wf) as h:
            publish(wf, 3)  # below the first checkpoint (4)
            h.settle()
            assert h.events_of("svd_start") == []
        done = h.events_of("svd_done")
        assert len(done) == 1
        assert "final=1" in done[0].detail
        assert h.out["count"] == 3


def self_history_counts(harness):
    """Ensemble sizes the convergence criterion recorded."""
    return [count for count, _ in harness.criterion.history]


class TestTornSafeFile:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_loop_survives_garbage_safe_file(self, tmp_path, backend):
        """A torn safe snapshot reads as None; the loop retries and recovers."""
        wf = make_workflow(tmp_path, backend)
        garbage_path = (
            wf.covset.header_path
            if backend == "memmap"
            else wf.covset.safe_path
        )
        garbage_path.write_bytes(b"torn mid-replace, not a valid file")
        with LoopHarness(wf) as h:
            h.wait_for("io_retry", 1)
            # recovery: a good publish lands and the loop factors it
            publish(wf, 4)
            h.wait_for("svd_done", 1)
        assert h.errors == []
        assert h.out["count"] == 4
        retries = h.events_of("io_retry")
        assert all("target=cov_safe" in e.detail for e in retries)
        assert (
            wf.metrics.counter("differ_io_retries", kind="cov_safe").value > 0
        )

    def test_unreadable_past_bound_surfaces_as_error(self, tmp_path):
        """Permanent corruption must not be an infinite silent spin."""
        wf = make_workflow(tmp_path, "npz")
        wf.covset = CovarianceFileSet(tmp_path, max_unreadable_reads=4)
        wf.covset.safe_path.write_bytes(b"permanently corrupt")
        with LoopHarness(wf) as h:
            deadline = MONOTONIC() + 5.0
            while not h.errors and MONOTONIC() < deadline:
                time.sleep(0.002)
        assert len(h.errors) == 1
        assert isinstance(h.errors[0], CovarianceReadError)
