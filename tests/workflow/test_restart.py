"""Restart semantics (paper Sec 4.2): resume without rerunning all jobs."""

import numpy as np
import pytest

from repro.core import ESSEConfig, PerturbationGenerator, synthetic_initial_subspace
from repro.core.ensemble import EnsembleRunner
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.workflow import SerialESSEWorkflow


@pytest.fixture(scope="module")
def setup():
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        model.layout, grid.shape2d, grid.nz, rank=6, seed=0
    )
    perturber = PerturbationGenerator(model.layout, subspace, root_seed=5)
    runner = EnsembleRunner(model, perturber, duration=4 * 400.0, root_seed=5)
    return runner, background


def config():
    return ESSEConfig(
        initial_ensemble_size=4,
        max_ensemble_size=8,
        convergence_tolerance=1.0,  # always run to Nmax
        max_subspace_rank=6,
    )


class TestSerialRestart:
    def test_second_run_reuses_members(self, setup, tmp_path):
        runner, background = setup

        calls = []

        class CountingRunner(EnsembleRunner):
            def run_member(self, mean_state, member_index):
                calls.append(member_index)
                return super().run_member(mean_state, member_index)

        counting = CountingRunner(
            runner.model, runner.perturber, runner.duration, runner.root_seed
        )
        first = SerialESSEWorkflow(counting, config(), tmp_path).run(background)
        n_first = len(calls)
        assert n_first == 8

        # "restart": same workdir, fresh shepherd
        second = SerialESSEWorkflow(counting, config(), tmp_path).run(background)
        assert len(calls) == n_first  # no member recomputed
        assert second.ensemble_size == first.ensemble_size
        assert np.allclose(second.subspace.sigmas, first.subspace.sigmas)

    def test_partial_restart_runs_only_missing(self, setup, tmp_path):
        runner, background = setup
        workflow = SerialESSEWorkflow(runner, config(), tmp_path)
        workflow.run(background)
        # simulate a lost member: remove its file and status record
        victim = 3
        workflow._member_path(victim).unlink()
        (workflow.status.root / f"pemodel.{victim}.status").unlink()

        calls = []

        class CountingRunner(EnsembleRunner):
            def run_member(self, mean_state, member_index):
                calls.append(member_index)
                return super().run_member(mean_state, member_index)

        counting = CountingRunner(
            runner.model, runner.perturber, runner.duration, runner.root_seed
        )
        result = SerialESSEWorkflow(counting, config(), tmp_path).run(background)
        assert calls == [victim]
        assert result.ensemble_size == 8

    def test_status_file_without_member_file_is_recomputed(self, setup, tmp_path):
        """A success record whose output vanished must not be trusted."""
        runner, background = setup
        workflow = SerialESSEWorkflow(runner, config(), tmp_path)
        workflow.run(background)
        victim = 2
        workflow._member_path(victim).unlink()  # file gone, status says OK

        result = SerialESSEWorkflow(runner, config(), tmp_path).run(background)
        assert result.ensemble_size == 8  # recomputed, not skipped
