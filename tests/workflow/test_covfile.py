"""Unit tests for the three-file covariance protocol."""

import threading

import numpy as np
import pytest

from repro.workflow.covfile import CovarianceFileSet


@pytest.fixture()
def covset(tmp_path):
    return CovarianceFileSet(tmp_path)


class TestProtocol:
    def test_no_snapshot_before_publish(self, covset):
        assert covset.read_safe() is None
        covset.write_live(np.ones((4, 2)), [0, 1])
        assert covset.read_safe() is None  # live written, not published

    def test_publish_exposes_snapshot(self, covset):
        covset.write_live(np.ones((4, 2)), [0, 1])
        assert covset.publish()
        snap = covset.read_safe()
        assert snap is not None
        assert snap.count == 2
        assert np.allclose(snap.anomalies, 1.0)
        assert list(snap.member_ids) == [0, 1]

    def test_publish_without_write_is_false(self, covset):
        assert not covset.publish()

    def test_live_files_alternate(self, covset):
        p1 = covset.write_live(np.ones((4, 2)), [0, 1])
        p2 = covset.write_live(np.ones((4, 3)), [0, 1, 2])
        p3 = covset.write_live(np.ones((4, 4)), [0, 1, 2, 3])
        assert p1 != p2
        assert p1 == p3

    def test_version_monotone(self, covset):
        covset.write_live(np.ones((4, 2)), [0, 1])
        covset.publish()
        v1 = covset.read_safe().version
        covset.write_live(np.ones((4, 3)), [0, 1, 2])
        covset.publish()
        v2 = covset.read_safe().version
        assert v2 > v1

    def test_safe_stable_while_live_written(self, covset):
        """The SVD's snapshot must not change until the next publish."""
        covset.write_live(np.full((4, 2), 1.0), [0, 1])
        covset.publish()
        before = covset.read_safe()
        covset.write_live(np.full((4, 3), 2.0), [0, 1, 2])  # no publish
        after = covset.read_safe()
        assert after.version == before.version
        assert after.count == 2

    def test_shape_validation(self, covset):
        with pytest.raises(ValueError, match="inconsistent"):
            covset.write_live(np.ones((4, 2)), [0, 1, 2])

    def test_cleanup(self, covset):
        covset.write_live(np.ones((4, 2)), [0, 1])
        covset.publish()
        covset.cleanup()
        assert covset.read_safe() is None

    def test_concurrent_reader_never_sees_torn_snapshot(self, covset):
        """Hammer the protocol: reader snapshots are always consistent."""
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                snap = covset.read_safe()
                if snap is None:
                    continue
                # consistency invariant: every column equals its member id
                for col, mid in enumerate(snap.member_ids):
                    if not np.all(snap.anomalies[:, col] == mid):
                        errors.append(f"torn snapshot at version {snap.version}")
                        return

        t = threading.Thread(target=reader)
        t.start()
        ids: list[int] = []
        for k in range(60):
            ids.append(k)
            matrix = np.tile(np.array(ids, dtype=float), (8, 1))
            covset.write_live(matrix, ids)
            covset.publish()
        stop.set()
        t.join()
        assert errors == []
