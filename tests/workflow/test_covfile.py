"""Unit tests for the three-file covariance protocol (npz and memmap)."""

import threading

import numpy as np
import pytest

from repro.core.covariance import AnomalyAccumulator
from repro.core.state import FieldLayout, FieldSpec
from repro.workflow.covfile import (
    CovarianceFileSet,
    CovarianceReadError,
    MemmapCovarianceStore,
)


@pytest.fixture()
def covset(tmp_path):
    return CovarianceFileSet(tmp_path)


@pytest.fixture()
def store(tmp_path):
    store = MemmapCovarianceStore(tmp_path)
    yield store
    store.close()


class TestProtocol:
    def test_no_snapshot_before_publish(self, covset):
        assert covset.read_safe() is None
        covset.write_live(np.ones((4, 2)), [0, 1])
        assert covset.read_safe() is None  # live written, not published

    def test_publish_exposes_snapshot(self, covset):
        covset.write_live(np.ones((4, 2)), [0, 1])
        assert covset.publish()
        snap = covset.read_safe()
        assert snap is not None
        assert snap.count == 2
        assert np.allclose(snap.anomalies, 1.0)
        assert list(snap.member_ids) == [0, 1]

    def test_publish_without_write_is_false(self, covset):
        assert not covset.publish()

    def test_live_files_alternate(self, covset):
        p1 = covset.write_live(np.ones((4, 2)), [0, 1])
        p2 = covset.write_live(np.ones((4, 3)), [0, 1, 2])
        p3 = covset.write_live(np.ones((4, 4)), [0, 1, 2, 3])
        assert p1 != p2
        assert p1 == p3

    def test_version_monotone(self, covset):
        covset.write_live(np.ones((4, 2)), [0, 1])
        covset.publish()
        v1 = covset.read_safe().version
        covset.write_live(np.ones((4, 3)), [0, 1, 2])
        covset.publish()
        v2 = covset.read_safe().version
        assert v2 > v1

    def test_safe_stable_while_live_written(self, covset):
        """The SVD's snapshot must not change until the next publish."""
        covset.write_live(np.full((4, 2), 1.0), [0, 1])
        covset.publish()
        before = covset.read_safe()
        covset.write_live(np.full((4, 3), 2.0), [0, 1, 2])  # no publish
        after = covset.read_safe()
        assert after.version == before.version
        assert after.count == 2

    def test_shape_validation(self, covset):
        with pytest.raises(ValueError, match="inconsistent"):
            covset.write_live(np.ones((4, 2)), [0, 1, 2])

    def test_cleanup(self, covset):
        covset.write_live(np.ones((4, 2)), [0, 1])
        covset.publish()
        covset.cleanup()
        assert covset.read_safe() is None

    def test_concurrent_reader_never_sees_torn_snapshot(self, covset):
        """Hammer the protocol: reader snapshots are always consistent."""
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                snap = covset.read_safe()
                if snap is None:
                    continue
                # consistency invariant: every column equals its member id
                for col, mid in enumerate(snap.member_ids):
                    if not np.all(snap.anomalies[:, col] == mid):
                        errors.append(f"torn snapshot at version {snap.version}")
                        return

        t = threading.Thread(target=reader)
        t.start()
        ids: list[int] = []
        for k in range(60):
            ids.append(k)
            matrix = np.tile(np.array(ids, dtype=float), (8, 1))
            covset.write_live(matrix, ids)
            covset.publish()
        stop.set()
        t.join()
        assert errors == []


class TestReadResilience:
    """A torn/corrupt safe file must read as "no snapshot yet", boundedly."""

    def _publish(self, covset, count=3):
        ids = list(range(count))
        covset.write_live(np.ones((4, count)), ids)
        covset.publish()

    def test_truncated_safe_file_reads_as_none(self, covset):
        self._publish(covset)
        payload = covset.safe_path.read_bytes()
        covset.safe_path.write_bytes(payload[: len(payload) // 2])
        assert covset.read_safe() is None
        assert covset.consecutive_unreadable == 1
        assert covset.last_read_error is not None

    def test_garbage_safe_file_reads_as_none(self, covset):
        covset.safe_path.write_bytes(b"not a zip archive at all")
        assert covset.read_safe() is None

    def test_missing_keys_read_as_none(self, covset):
        np.savez(covset.safe_path, wrong_key=np.ones(3))
        assert covset.read_safe() is None

    def test_counter_resets_on_success(self, covset):
        covset.safe_path.write_bytes(b"garbage")
        assert covset.read_safe() is None
        assert covset.read_safe() is None
        assert covset.consecutive_unreadable == 2
        self._publish(covset)
        assert covset.read_safe() is not None
        assert covset.consecutive_unreadable == 0
        assert covset.last_read_error is None

    def test_bounded_retry_raises(self, tmp_path):
        covset = CovarianceFileSet(tmp_path, max_unreadable_reads=5)
        covset.safe_path.write_bytes(b"garbage")
        for _ in range(4):
            assert covset.read_safe() is None
        with pytest.raises(CovarianceReadError, match="5 consecutive"):
            covset.read_safe()

    def test_bound_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_unreadable_reads"):
            CovarianceFileSet(tmp_path, max_unreadable_reads=0)


class TestWriteLiveFaultInjection:
    """A failed live write must not advance the protocol state."""

    def test_failed_replace_leaves_state_unchanged(self, covset, monkeypatch):
        covset.write_live(np.full((4, 2), 1.0), [0, 1])
        covset.publish()
        before = covset.read_safe()
        state = (covset._version, covset._next_live, covset._last_complete)

        import repro.workflow.covfile as covfile_mod

        real_replace = covfile_mod.durable_replace

        def failing_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(covfile_mod, "durable_replace", failing_replace)
        with pytest.raises(OSError, match="disk full"):
            covset.write_live(np.full((4, 3), 2.0), [0, 1, 2])
        assert (covset._version, covset._next_live, covset._last_complete) == state

        # publish keeps serving the previous complete generation
        monkeypatch.setattr(covfile_mod, "durable_replace", real_replace)
        covset.publish()
        snap = covset.read_safe()
        assert snap.version == before.version
        assert snap.count == 2
        assert np.allclose(snap.anomalies, 1.0)

    def test_retry_after_failure_reuses_slot_and_version(self, covset, monkeypatch):
        covset.write_live(np.ones((4, 2)), [0, 1])
        import repro.workflow.covfile as covfile_mod

        real_replace = covfile_mod.durable_replace
        fail_once = {"left": 1}

        def flaky_replace(src, dst):
            if fail_once["left"]:
                fail_once["left"] -= 1
                raise OSError("transient")
            return real_replace(src, dst)

        monkeypatch.setattr(covfile_mod, "durable_replace", flaky_replace)
        with pytest.raises(OSError):
            covset.write_live(np.ones((4, 3)), [0, 1, 2])
        target = covset.write_live(np.ones((4, 3)), [0, 1, 2])  # retried in place
        assert target == covset.live_paths[1]  # same slot as the failed attempt
        covset.publish()
        snap = covset.read_safe()
        assert snap.version == 2  # no version burned by the failure
        assert snap.count == 3


class TestMemmapStore:
    """The append-only memmap column store: same protocol, O(n) writes."""

    def test_no_snapshot_before_publish(self, store):
        assert store.read_safe() is None
        store.append(np.ones((4, 2)), [0, 1])
        assert store.read_safe() is None  # appended, not published

    def test_publish_exposes_snapshot(self, store):
        cols = np.arange(8.0).reshape(4, 2)
        store.append(cols, [0, 1])
        assert store.publish()
        snap = store.read_safe()
        assert snap is not None
        assert snap.count == 2
        assert np.array_equal(np.asarray(snap.columns), cols)
        assert list(snap.member_ids) == [0, 1]
        assert snap.scale == pytest.approx(1.0)
        assert np.allclose(snap.anomalies, cols * snap.scale)

    def test_snapshot_columns_are_read_only(self, store):
        store.append(np.ones((4, 2)), [0, 1])
        store.publish()
        snap = store.read_safe()
        with pytest.raises((ValueError, RuntimeError)):
            snap.columns[0, 0] = 5.0

    def test_publish_without_append_is_false(self, store):
        assert not store.publish()

    def test_version_monotone(self, store):
        store.append(np.ones((4, 2)), [0, 1])
        store.publish()
        v1 = store.read_safe().version
        store.append(np.ones((4, 1)), [2])
        store.publish()
        v2 = store.read_safe().version
        assert v2 > v1

    def test_safe_stable_until_publish(self, store):
        store.append(np.full((4, 2), 1.0), [0, 1])
        store.publish()
        before = store.read_safe()
        store.append(np.full((4, 1), 2.0), [2])  # no publish
        after = store.read_safe()
        assert after.version == before.version
        assert after.count == 2

    def test_append_returns_bytes_written(self, store):
        nbytes = store.append(np.ones((4, 3)), [0, 1, 2])
        assert nbytes == 3 * 4 * 8 + 3 * 8  # columns + member ids

    def test_shape_validation(self, store):
        with pytest.raises(ValueError, match="inconsistent"):
            store.append(np.ones((4, 2)), [0, 1, 2])
        store.append(np.ones((4, 1)), [0])
        with pytest.raises(ValueError, match="state dim"):
            store.append(np.ones((5, 1)), [1])

    def test_sync_from_accumulator_view(self, store):
        layout = FieldLayout([FieldSpec("x", (6,))])
        acc = AnomalyAccumulator(layout, np.zeros(6))
        acc.add_member(0, np.full(6, 1.0))
        acc.add_member(1, np.full(6, 2.0))
        store.sync_from(acc.view())
        store.publish()
        acc.add_member(2, np.full(6, 3.0))
        nbytes = store.sync_from(acc.view())  # ships only the new column
        assert nbytes == 6 * 8 + 8
        store.publish()
        snap = store.read_safe()
        assert snap.count == 3
        assert np.array_equal(np.asarray(snap.columns), acc.view().columns)
        assert list(snap.member_ids) == [0, 1, 2]

    def test_sync_from_rejects_shrinking_view(self, store):
        layout = FieldLayout([FieldSpec("x", (6,))])
        acc = AnomalyAccumulator(layout, np.zeros(6))
        acc.add_member(0, np.ones(6))
        acc.add_member(1, np.full(6, 2.0))
        store.sync_from(acc.view())
        fresh = AnomalyAccumulator(layout, np.zeros(6))
        fresh.add_member(0, np.ones(6))
        with pytest.raises(ValueError, match="already stored"):
            store.sync_from(fresh.view())

    def test_torn_header_reads_as_none(self, store):
        store.append(np.ones((4, 2)), [0, 1])
        store.publish()
        store.header_path.write_text('{"version": 2, "cou')  # torn write
        assert store.read_safe() is None
        assert store.consecutive_unreadable == 1

    def test_header_ahead_of_data_reads_as_none(self, store):
        """NFS-style lag: header visible before the flushed data."""
        store.append(np.ones((4, 2)), [0, 1])
        store.publish()
        header = store.header_path.read_text()
        store.header_path.write_text(header.replace('"count": 2', '"count": 9'))
        assert store.read_safe() is None
        assert "shorter than header" in str(store.last_read_error)

    def test_counter_resets_on_success(self, store):
        store.header_path.write_text("garbage")
        assert store.read_safe() is None
        store.append(np.ones((4, 2)), [0, 1])
        store.publish()
        assert store.read_safe() is not None
        assert store.consecutive_unreadable == 0

    def test_bounded_retry_raises(self, tmp_path):
        store = MemmapCovarianceStore(tmp_path / "s", max_unreadable_reads=3)
        try:
            store.header_path.parent.mkdir(parents=True, exist_ok=True)
            store.header_path.write_text("garbage")
            assert store.read_safe() is None
            assert store.read_safe() is None
            with pytest.raises(CovarianceReadError, match="3 consecutive"):
                store.read_safe()
        finally:
            store.close()

    def test_failed_header_replace_leaves_state_unchanged(
        self, store, monkeypatch
    ):
        store.append(np.ones((4, 2)), [0, 1])
        store.publish()
        store.append(np.ones((4, 1)), [2])

        import repro.workflow.covfile as covfile_mod

        def failing_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(covfile_mod, "durable_replace", failing_replace)
        with pytest.raises(OSError):
            store.publish()
        assert store.version == 1  # commit only after a successful replace
        monkeypatch.undo()
        snap = store.read_safe()  # old generation still served
        assert snap.version == 1
        assert snap.count == 2
        assert store.publish()
        assert store.read_safe().count == 3

    def test_concurrent_reader_never_sees_torn_snapshot(self, store):
        """Hammer the store: reader snapshots are always consistent."""
        errors = []
        stop = threading.Event()
        reader_store = MemmapCovarianceStore(store.workdir)

        def reader():
            while not stop.is_set():
                snap = reader_store.read_safe()
                if snap is None:
                    continue
                for col, mid in enumerate(snap.member_ids):
                    if not np.all(snap.columns[:, col] == mid):
                        errors.append(f"torn snapshot at version {snap.version}")
                        return

        t = threading.Thread(target=reader)
        t.start()
        try:
            for k in range(60):
                store.append(np.full((8, 1), float(k)), [k])
                store.publish()
        finally:
            stop.set()
            t.join()
            reader_store.close()
        assert errors == []

    def test_cleanup(self, store):
        store.append(np.ones((4, 2)), [0, 1])
        store.publish()
        store.cleanup()
        assert store.read_safe() is None
        assert not store.columns_path.exists()
