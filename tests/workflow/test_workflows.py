"""Tests for the serial (Fig 3) and parallel (Fig 4) ESSE workflows."""

import numpy as np
import pytest

from repro.core import (
    ESSEConfig,
    PerturbationGenerator,
    similarity_coefficient,
    synthetic_initial_subspace,
)
from repro.core.ensemble import EnsembleRunner
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.workflow import (
    CancellationPolicy,
    ParallelESSEWorkflow,
    SerialESSEWorkflow,
)
from repro.workflow.policies import DeadlinePolicy
from repro.workflow.statefiles import TaskStatus


@pytest.fixture(scope="module")
def setup():
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        model.layout, grid.shape2d, grid.nz, rank=8, seed=0
    )
    perturber = PerturbationGenerator(model.layout, subspace, root_seed=5)
    runner = EnsembleRunner(model, perturber, duration=6 * 400.0, root_seed=5)
    return model, background, runner


def config(**kw):
    defaults = dict(
        initial_ensemble_size=4,
        max_ensemble_size=16,
        convergence_tolerance=0.9,
        max_subspace_rank=8,
    )
    defaults.update(kw)
    return ESSEConfig(**defaults)


class TestSerialWorkflow:
    def test_runs_to_convergence_or_nmax(self, setup, tmp_path):
        _, background, runner = setup
        result = SerialESSEWorkflow(runner, config(), tmp_path).run(background)
        assert result.ensemble_size >= 4
        assert result.subspace.rank >= 1
        assert result.failed_members == ()

    def test_phase_timings_recorded(self, setup, tmp_path):
        _, background, runner = setup
        result = SerialESSEWorkflow(runner, config(), tmp_path).run(background)
        t = result.timings
        assert len(t.pert_forecast) == len(t.diff) == len(t.svd_conv)
        assert t.total > 0
        fractions = t.phase_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        # bottleneck 1: the forecast loop dominates the serial shepherd
        assert fractions["pert_forecast"] > 0.5

    def test_status_files_written(self, setup, tmp_path):
        _, background, runner = setup
        result = SerialESSEWorkflow(runner, config(), tmp_path).run(background)
        wf = SerialESSEWorkflow(runner, config(), tmp_path)
        done = wf.status.completed_indices("pemodel")
        assert len(done) == result.ensemble_size

    def test_covariance_file_exists(self, setup, tmp_path):
        _, background, runner = setup
        wf = SerialESSEWorkflow(runner, config(), tmp_path)
        wf.run(background)
        assert wf.cov_path.exists()

    def test_deadline_limits_rounds(self, setup, tmp_path):
        _, background, runner = setup
        result = SerialESSEWorkflow(
            runner,
            config(convergence_tolerance=1.0, deadline_seconds=0.0),
            tmp_path,
        ).run(background)
        assert result.ensemble_size <= 8  # stopped after the first stage


class TestParallelWorkflow:
    def test_runs_and_converges(self, setup, tmp_path):
        _, background, runner = setup
        result = ParallelESSEWorkflow(runner, config(), tmp_path, n_workers=4).run(
            background
        )
        assert result.ensemble_size >= 4
        assert result.n_failed == 0
        assert result.wall_seconds > 0

    def test_diff_overlaps_forecasts(self, setup, tmp_path):
        """The decoupled differ consumes members while others still run."""
        _, background, runner = setup
        result = ParallelESSEWorkflow(
            runner, config(convergence_tolerance=1.0), tmp_path, n_workers=2
        ).run(background)
        assert result.overlap_fraction() > 0.5

    def test_out_of_order_completion_tolerated(self, setup, tmp_path):
        _, background, runner = setup
        result = ParallelESSEWorkflow(
            runner, config(convergence_tolerance=1.0), tmp_path, n_workers=4
        ).run(background)
        # member ids recorded in completion order, all distinct
        assert len(set(result.member_ids)) == len(result.member_ids)
        assert result.ensemble_size == len(result.member_ids)

    def test_subspace_statistically_equivalent_to_serial(self, setup, tmp_path):
        _, background, runner = setup
        cfg = config(convergence_tolerance=1.0)  # force both to Nmax
        serial = SerialESSEWorkflow(runner, cfg, tmp_path / "s").run(background)
        parallel = ParallelESSEWorkflow(
            runner, cfg, tmp_path / "p", n_workers=4
        ).run(background)
        rho = similarity_coefficient(serial.subspace, parallel.subspace)
        assert rho > 0.95

    def test_cancellation_on_convergence(self, setup, tmp_path):
        _, background, runner = setup
        # trivially converges at the first check -> later members cancelled
        result = ParallelESSEWorkflow(
            runner,
            config(convergence_tolerance=0.05, max_ensemble_size=64),
            tmp_path,
            n_workers=2,
        ).run(background)
        assert result.converged
        assert result.n_completed < 64

    def test_immediate_policy_skips_final_svd(self, setup, tmp_path):
        _, background, runner = setup
        result = ParallelESSEWorkflow(
            runner,
            config(convergence_tolerance=0.05, max_ensemble_size=64),
            tmp_path,
            n_workers=2,
            cancellation=CancellationPolicy.IMMEDIATE,
        ).run(background)
        assert result.converged
        final_svds = result.events_of("final_svd")
        assert final_svds == []

    def test_event_log_is_ordered(self, setup, tmp_path):
        _, background, runner = setup
        result = ParallelESSEWorkflow(runner, config(), tmp_path, n_workers=2).run(
            background
        )
        times = [e.time for e in result.events]
        assert times == sorted(times)
        kinds = {e.kind for e in result.events}
        assert {"central_done", "pool", "diff_added", "publish"} <= kinds

    def test_process_pool_backend(self, setup, tmp_path):
        _, background, runner = setup
        result = ParallelESSEWorkflow(
            runner, config(), tmp_path, n_workers=2, use_processes=True
        ).run(background)
        assert result.ensemble_size >= 4
        assert result.n_failed == 0

    def test_validation(self, setup, tmp_path):
        _, _, runner = setup
        with pytest.raises(ValueError, match="n_workers"):
            ParallelESSEWorkflow(runner, config(), tmp_path, n_workers=0)
        with pytest.raises(ValueError, match="pool_margin"):
            ParallelESSEWorkflow(runner, config(), tmp_path, pool_margin=0.5)


class TestCovfileBackends:
    """The memmap column store and the npz pair are interchangeable."""

    def test_npz_backend_end_to_end(self, setup, tmp_path):
        _, background, runner = setup
        wf = ParallelESSEWorkflow(
            runner, config(), tmp_path, n_workers=2, covfile_backend="npz"
        )
        result = wf.run(background)
        assert result.subspace.rank >= 1
        assert result.n_failed == 0
        assert wf.covset.safe_path.exists()

    def test_backends_produce_equivalent_subspaces(self, setup, tmp_path):
        _, background, runner = setup
        cfg = config(convergence_tolerance=1.0)  # force both to Nmax
        results = {}
        for backend in ("memmap", "npz"):
            results[backend] = ParallelESSEWorkflow(
                runner,
                cfg,
                tmp_path / backend,
                n_workers=2,
                covfile_backend=backend,
            ).run(background)
        a, b = results["memmap"], results["npz"]
        assert a.ensemble_size == b.ensemble_size
        assert sorted(a.member_ids) == sorted(b.member_ids)
        rho = similarity_coefficient(a.subspace, b.subspace)
        assert rho > 0.95

    def test_memmap_slashes_differ_bytes(self, setup, tmp_path):
        """The append-only store writes O(n) per member, not O(n N)."""
        from repro.telemetry.metrics import MetricsRegistry

        _, background, runner = setup
        cfg = config(convergence_tolerance=1.0)
        written = {}
        for backend in ("memmap", "npz"):
            registry = MetricsRegistry()
            ParallelESSEWorkflow(
                runner,
                cfg,
                tmp_path / backend,
                n_workers=2,
                covfile_backend=backend,
                metrics=registry,
            ).run(background)
            written[backend] = registry.counter("cov.bytes_written").value
        assert written["memmap"] > 0
        assert written["npz"] > 2 * written["memmap"]


class TestFaultTolerance:
    def test_failed_members_tolerated(self, setup, tmp_path):
        """Sec 4 point 3: failures are not catastrophic."""
        model, background, runner = setup

        class FlakyRunner(EnsembleRunner):
            def run_member(self, mean_state, member_index):
                if member_index % 5 == 1:  # every 5th member "crashes"
                    from repro.core.ensemble import MemberResult

                    return MemberResult(member_index, None, "SimulatedCrash")
                return super().run_member(mean_state, member_index)

        flaky = FlakyRunner(
            runner.model, runner.perturber, runner.duration, runner.root_seed
        )
        result = ParallelESSEWorkflow(
            flaky, config(convergence_tolerance=1.0), tmp_path, n_workers=4
        ).run(background)
        assert result.n_failed >= 2
        assert result.subspace.rank >= 1  # statistics survive the holes
        failed_ids = {
            i
            for i, s in ParallelESSEWorkflow(
                flaky, config(), tmp_path, n_workers=1
            ).status.completed_indices("pemodel").items()
            if s == TaskStatus.MODEL_FAILURE
        }
        assert all(i % 5 == 1 for i in failed_ids)


class TestDeadlinePolicy:
    def test_expiry(self):
        assert DeadlinePolicy(tmax_seconds=10.0).expired(11.0)
        assert not DeadlinePolicy(tmax_seconds=10.0).expired(9.0)
        assert not DeadlinePolicy(tmax_seconds=None).expired(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(tmax_seconds=-1.0)
        with pytest.raises(ValueError):
            DeadlinePolicy(grace_fraction=2.0)
