"""Tests for status-directory progress monitoring."""

import pytest

from repro.workflow.monitor import ProgressMonitor
from repro.workflow.statefiles import StatusDirectory, TaskStatus


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture()
def status(tmp_path):
    return StatusDirectory(tmp_path)


class TestProgressMonitor:
    def test_counts_by_status(self, status):
        monitor = ProgressMonitor(status, {"pemodel": 10})
        for idx, code in [
            (0, TaskStatus.SUCCESS),
            (1, TaskStatus.SUCCESS),
            (2, TaskStatus.MODEL_FAILURE),
            (3, TaskStatus.CANCELLED),
            (4, TaskStatus.IO_FAILURE),
        ]:
            status.write("pemodel", idx, code)
        report = monitor.report("pemodel")
        assert report.succeeded == 2
        assert report.failed == 2  # model + io failures
        assert report.cancelled == 1
        assert report.reported == 5
        assert report.pending == 5
        assert not report.complete

    def test_complete_when_all_reported(self, status):
        monitor = ProgressMonitor(status, {"pert": 3})
        for idx in range(3):
            status.write("pert", idx, TaskStatus.SUCCESS)
        assert monitor.report("pert").complete
        assert monitor.all_complete()

    def test_eta_from_throughput(self, status):
        clock = FakeClock()
        monitor = ProgressMonitor(status, {"pemodel": 100}, clock=clock)
        # 10 completions in 60 s -> 10/min -> 90 remaining -> 9 min ETA
        for idx in range(10):
            status.write("pemodel", idx, TaskStatus.SUCCESS)
        clock.t = 60.0
        report = monitor.report("pemodel")
        assert report.throughput_per_minute == pytest.approx(10.0)
        assert report.eta_seconds == pytest.approx(9 * 60.0)

    def test_eta_unknown_without_progress(self, status):
        clock = FakeClock()
        monitor = ProgressMonitor(status, {"pemodel": 5}, clock=clock)
        clock.t = 30.0
        assert monitor.report("pemodel").eta_seconds is None

    def test_baseline_excludes_preexisting_results(self, status):
        """A monitor attached mid-campaign measures *new* throughput."""
        for idx in range(5):
            status.write("pemodel", idx, TaskStatus.SUCCESS)
        clock = FakeClock()
        monitor = ProgressMonitor(status, {"pemodel": 10}, clock=clock)
        status.write("pemodel", 5, TaskStatus.SUCCESS)
        clock.t = 60.0
        report = monitor.report("pemodel")
        assert report.throughput_per_minute == pytest.approx(1.0)
        assert report.reported == 6

    def test_eta_none_when_reports_exceed_expectation(self, status):
        """Stale expectations must not claim a finished (or negative) ETA."""
        clock = FakeClock()
        monitor = ProgressMonitor(status, {"pemodel": 2}, clock=clock)
        for idx in range(4):
            status.write("pemodel", idx, TaskStatus.SUCCESS)
        clock.t = 60.0
        report = monitor.report("pemodel")
        assert report.eta_seconds is None
        assert report.pending == 0
        assert report.complete

    def test_eta_zero_only_when_exactly_complete(self, status):
        clock = FakeClock()
        monitor = ProgressMonitor(status, {"pemodel": 3}, clock=clock)
        for idx in range(3):
            status.write("pemodel", idx, TaskStatus.SUCCESS)
        clock.t = 30.0
        assert monitor.report("pemodel").eta_seconds == 0.0

    def test_baseline_excluded_for_every_kind(self, status):
        """The baseline fix applies per kind, not just the first one."""
        status.write("pert", 0, TaskStatus.SUCCESS)
        status.write("pemodel", 0, TaskStatus.SUCCESS)
        clock = FakeClock()
        monitor = ProgressMonitor(
            status, {"pert": 4, "pemodel": 4}, clock=clock
        )
        clock.t = 60.0
        # no *new* completions anywhere: both rates are zero, no fake ETA
        for kind in ("pert", "pemodel"):
            report = monitor.report(kind)
            assert report.throughput_per_minute == 0.0
            assert report.eta_seconds is None

    def test_gauges_fed_when_metrics_attached(self, status):
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        monitor = ProgressMonitor(status, {"pemodel": 4}, metrics=registry)
        status.write("pemodel", 0, TaskStatus.SUCCESS)
        status.write("pemodel", 1, TaskStatus.MODEL_FAILURE)
        monitor.report("pemodel")
        gauges = registry.snapshot()["gauges"]
        assert gauges["progress_succeeded{kind=pemodel}"] == 1.0
        assert gauges["progress_failed{kind=pemodel}"] == 1.0
        assert gauges["progress_pending{kind=pemodel}"] == 2.0

    def test_render_line(self, status):
        monitor = ProgressMonitor(status, {"acoustic": 4})
        status.write("acoustic", 0, TaskStatus.SUCCESS)
        line = monitor.report("acoustic").render()
        assert "acoustic: 1/4" in line
        assert "ok 1" in line

    def test_multiple_kinds(self, status):
        monitor = ProgressMonitor(status, {"pert": 2, "pemodel": 2})
        status.write("pert", 0, TaskStatus.SUCCESS)
        reports = {r.kind: r for r in monitor.reports()}
        assert reports["pert"].reported == 1
        assert reports["pemodel"].reported == 0

    def test_validation(self, status):
        with pytest.raises(ValueError, match="non-empty"):
            ProgressMonitor(status, {})
        with pytest.raises(ValueError, match=">= 1"):
            ProgressMonitor(status, {"pert": 0})
        monitor = ProgressMonitor(status, {"pert": 1})
        with pytest.raises(KeyError, match="unknown kind"):
            monitor.report("pemodel")

    def test_members_per_task_scales_counts(self, status):
        """One batch record covers batch_size members (docs/ENSEMBLE_ENGINE.md)."""
        monitor = ProgressMonitor(
            status, {"pemodel_batch": 24}, members_per_task={"pemodel_batch": 8}
        )
        status.write("pemodel_batch", 0, TaskStatus.SUCCESS)
        report = monitor.report("pemodel_batch")
        assert report.succeeded == 8
        assert report.pending == 16
        assert not report.complete
        for idx in (1, 2):
            status.write("pemodel_batch", idx, TaskStatus.SUCCESS)
        report = monitor.report("pemodel_batch")
        assert report.succeeded == 24
        assert report.complete

    def test_members_per_task_scales_throughput_and_eta(self, status):
        clock = FakeClock()
        monitor = ProgressMonitor(
            status,
            {"pemodel_batch": 32},
            clock=clock,
            members_per_task={"pemodel_batch": 8},
        )
        # 1 batch (8 members) per minute -> 24 members remain -> 3 min ETA
        status.write("pemodel_batch", 0, TaskStatus.SUCCESS)
        clock.t = 60.0
        report = monitor.report("pemodel_batch")
        assert report.throughput_per_minute == pytest.approx(8.0)
        assert report.eta_seconds == pytest.approx(3 * 60.0)

    def test_members_per_task_clamps_partial_final_batch(self, status):
        """10 members in batches of 4: the last record covers only 2."""
        monitor = ProgressMonitor(
            status, {"pemodel_batch": 10}, members_per_task={"pemodel_batch": 4}
        )
        for idx in range(3):
            status.write("pemodel_batch", idx, TaskStatus.SUCCESS)
        report = monitor.report("pemodel_batch")
        assert report.succeeded == 10  # not 12
        assert report.pending == 0
        assert report.complete
        assert report.eta_seconds == 0.0

    def test_members_per_task_stale_expectation_still_detected(self, status):
        """A whole surplus task (>= one weight) still voids the ETA."""
        clock = FakeClock()
        monitor = ProgressMonitor(
            status,
            {"pemodel_batch": 8},
            clock=clock,
            members_per_task={"pemodel_batch": 4},
        )
        for idx in range(3):  # 12 members reported against 8 expected
            status.write("pemodel_batch", idx, TaskStatus.SUCCESS)
        clock.t = 60.0
        report = monitor.report("pemodel_batch")
        assert report.eta_seconds is None
        assert report.complete

    def test_members_per_task_exact_sizes_for_uneven_batches(self, status):
        """Staged growth: batches of 3+1 per stage must not over-count.

        A uniform weight of 3 would report 12/8; the exact per-record
        sizes report 8/8 (the bug docs/ENSEMBLE_ENGINE.md Sec 5 covers).
        """
        sizes = {0: 3, 1: 1, 2: 3, 3: 1}
        monitor = ProgressMonitor(
            status,
            {"pemodel_batch": 8},
            members_per_task={"pemodel_batch": sizes},
        )
        for idx in sizes:
            status.write("pemodel_batch", idx, TaskStatus.SUCCESS)
        report = monitor.report("pemodel_batch")
        assert report.succeeded == 8
        assert report.pending == 0
        assert report.complete
        assert report.eta_seconds == 0.0

    def test_members_per_task_exact_sizes_detect_stale_expectation(self, status):
        """With exact sizes any overshoot means the expectation is stale."""
        clock = FakeClock()
        monitor = ProgressMonitor(
            status,
            {"pemodel_batch": 8},
            clock=clock,
            members_per_task={"pemodel_batch": {0: 3, 1: 1, 2: 3, 3: 1}},
        )
        for idx in range(5):  # index 4 unknown to the map -> weight 1 -> 9/8
            status.write("pemodel_batch", idx, TaskStatus.SUCCESS)
        clock.t = 60.0
        report = monitor.report("pemodel_batch")
        assert report.succeeded == 9
        assert report.eta_seconds is None
        assert report.complete

    def test_members_per_task_exact_sizes_scale_throughput(self, status):
        clock = FakeClock()
        monitor = ProgressMonitor(
            status,
            {"pemodel_batch": 8},
            clock=clock,
            members_per_task={"pemodel_batch": {0: 3, 1: 1, 2: 3, 3: 1}},
        )
        # first stage (3 + 1 members) lands in one minute -> 4 members/min
        status.write("pemodel_batch", 0, TaskStatus.SUCCESS)
        status.write("pemodel_batch", 1, TaskStatus.SUCCESS)
        clock.t = 60.0
        report = monitor.report("pemodel_batch")
        assert report.throughput_per_minute == pytest.approx(4.0)
        assert report.eta_seconds == pytest.approx(60.0)

    def test_members_per_task_validation(self, status):
        with pytest.raises(ValueError, match="members_per_task"):
            ProgressMonitor(
                status, {"pemodel_batch": 8}, members_per_task={"pemodel_batch": 0}
            )
        with pytest.raises(ValueError, match="members_per_task"):
            ProgressMonitor(
                status,
                {"pemodel_batch": 8},
                members_per_task={"pemodel_batch": {0: 3, 1: 0}},
            )

    def test_live_workflow_integration(self, status, tmp_path):
        """The monitor reads a real parallel workflow's status directory."""
        from repro.core import (
            ESSEConfig,
            PerturbationGenerator,
            synthetic_initial_subspace,
        )
        from repro.core.ensemble import EnsembleRunner
        from repro.ocean import PEModel
        from repro.ocean.bathymetry import monterey_grid
        from repro.workflow import ParallelESSEWorkflow

        grid = monterey_grid(nx=16, ny=14, nz=3)
        model = PEModel(grid=grid)
        background = model.run(model.rest_state(), 10 * model.config.dt)
        subspace = synthetic_initial_subspace(
            model.layout, grid.shape2d, grid.nz, rank=6, seed=0
        )
        runner = EnsembleRunner(
            model,
            PerturbationGenerator(model.layout, subspace, root_seed=5),
            duration=4 * model.config.dt,
            root_seed=5,
        )
        workflow = ParallelESSEWorkflow(
            runner,
            ESSEConfig(
                initial_ensemble_size=4,
                max_ensemble_size=8,
                convergence_tolerance=1.0,
                max_subspace_rank=6,
            ),
            tmp_path / "wf",
            n_workers=2,
        )
        result = workflow.run(background)
        monitor = ProgressMonitor(workflow.status, {"pemodel": 8})
        report = monitor.report("pemodel")
        assert report.succeeded == result.n_completed
        assert report.complete
