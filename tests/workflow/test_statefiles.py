"""Unit tests for per-index status files."""

import pytest

from repro.workflow.statefiles import StatusDirectory, TaskStatus


@pytest.fixture()
def status(tmp_path):
    return StatusDirectory(tmp_path / "status")


class TestBasics:
    def test_round_trip(self, status):
        status.write("pemodel", 7, TaskStatus.SUCCESS)
        assert status.read("pemodel", 7) == TaskStatus.SUCCESS
        assert status.is_done("pemodel", 7)
        assert status.succeeded("pemodel", 7)

    def test_unreported_is_none(self, status):
        assert status.read("pemodel", 0) is None
        assert not status.is_done("pemodel", 0)
        assert not status.succeeded("pemodel", 0)

    def test_failure_codes(self, status):
        status.write("pemodel", 1, TaskStatus.MODEL_FAILURE)
        assert status.is_done("pemodel", 1)
        assert not status.succeeded("pemodel", 1)

    def test_overwrite_allowed(self, status):
        status.write("pert", 0, TaskStatus.MODEL_FAILURE)
        status.write("pert", 0, TaskStatus.SUCCESS)
        assert status.succeeded("pert", 0)

    def test_kinds_are_separate(self, status):
        status.write("pert", 3, TaskStatus.SUCCESS)
        assert status.read("pemodel", 3) is None

    def test_invalid_kind(self, status):
        with pytest.raises(ValueError, match="kind"):
            status.write("a.b", 0, TaskStatus.SUCCESS)
        with pytest.raises(ValueError, match="kind"):
            status.write("", 0, TaskStatus.SUCCESS)

    def test_invalid_index(self, status):
        with pytest.raises(ValueError, match="index"):
            status.write("pert", -1, TaskStatus.SUCCESS)


class TestScans:
    def test_completed_indices(self, status):
        status.write("pemodel", 0, TaskStatus.SUCCESS)
        status.write("pemodel", 5, TaskStatus.MODEL_FAILURE)
        status.write("pemodel", 2, TaskStatus.CANCELLED)
        done = status.completed_indices("pemodel")
        assert done == {
            0: TaskStatus.SUCCESS,
            5: TaskStatus.MODEL_FAILURE,
            2: TaskStatus.CANCELLED,
        }

    def test_successful_indices_sorted(self, status):
        for idx in (9, 1, 4):
            status.write("pemodel", idx, TaskStatus.SUCCESS)
        status.write("pemodel", 2, TaskStatus.MODEL_FAILURE)
        assert status.successful_indices("pemodel") == [1, 4, 9]

    def test_pending_indices_restart_path(self, status):
        """Sec 4.2: restart submits only not-yet-reported indices."""
        for idx in (0, 1, 3):
            status.write("pemodel", idx, TaskStatus.SUCCESS)
        assert status.pending_indices("pemodel", range(6)) == [2, 4, 5]

    def test_foreign_files_ignored(self, status, tmp_path):
        (status.root / "pemodel.notanint.status").write_text("0\n")
        (status.root / "pemodel.3.status").write_text("garbage\n")
        status.write("pemodel", 1, TaskStatus.SUCCESS)
        assert status.completed_indices("pemodel") == {1: TaskStatus.SUCCESS}

    def test_clear(self, status):
        status.write("pert", 0, TaskStatus.SUCCESS)
        status.write("pemodel", 0, TaskStatus.SUCCESS)
        assert status.clear("pert") == 1
        assert status.read("pert", 0) is None
        assert status.read("pemodel", 0) is not None
        assert status.clear() == 1
