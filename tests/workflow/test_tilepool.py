"""Tests for the fault-tolerant tile task pool."""

import numpy as np
import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import TraceRecorder
from repro.workflow.faults import FaultInjector, FaultKind
from repro.workflow.policies import RetryPolicy
from repro.workflow.tilepool import TileTaskPool, _CorruptResult


def make_tasks(n):
    return [lambda k=k: {"tile": k} for k in range(n)]


def find_recoverable_seed(rates, max_attempts, n_tasks, kind="tile"):
    """A seed where every task index has a clean draw within the budget.

    The fault draws depend only on (seed, kind, index, attempt), so the
    search is deterministic and the chosen seed guarantees full recovery.
    """
    for seed in range(200):
        injector = FaultInjector(seed=seed, **rates)
        if all(
            any(
                injector.draw(idx, att, kind=kind) is None
                for att in range(1, max_attempts + 1)
            )
            for idx in range(n_tasks)
        ):
            return seed
    raise AssertionError("no recoverable seed in range")


class TestPlainRuns:
    def test_results_in_task_order(self):
        results = TileTaskPool(n_workers=3).run(make_tasks(7))
        assert results == [{"tile": k} for k in range(7)]

    def test_empty_task_list(self):
        assert TileTaskPool().run([]) == []

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="n_workers"):
            TileTaskPool(n_workers=0)
        with pytest.raises(ValueError, match="poll_interval"):
            TileTaskPool(poll_interval=0.0)

    def test_task_exception_without_retry_is_terminal(self):
        def boom():
            raise RuntimeError("tile exploded")

        results = TileTaskPool(n_workers=2).run([boom] + make_tasks(2)[1:])
        assert results[0] is None
        assert results[1:] == [{"tile": 1}]

    def test_none_result_fails_default_validation(self):
        results = TileTaskPool().run([lambda: None])
        assert results == [None]

    def test_custom_validate(self):
        pool = TileTaskPool(validate=lambda r: r == "good")
        assert pool.run([lambda: "good", lambda: "bad"]) == ["good", None]


class TestRetries:
    def test_exception_retried_to_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        metrics = MetricsRegistry()
        pool = TileTaskPool(
            n_workers=1,
            retry=RetryPolicy(max_attempts=5, backoff_base_s=0.001),
            metrics=metrics,
        )
        assert pool.run([flaky]) == ["ok"]
        assert calls["n"] == 3
        assert metrics.counter("task_retries", kind="tile").value == 2

    def test_injected_crashes_recovered(self):
        rates = {"crash_rate": 0.4}
        seed = find_recoverable_seed(rates, max_attempts=5, n_tasks=8)
        pool = TileTaskPool(
            n_workers=4,
            retry=RetryPolicy(max_attempts=5, backoff_base_s=0.001, seed=seed),
            faults=FaultInjector(seed=seed, **rates),
        )
        assert pool.run(make_tasks(8)) == [{"tile": k} for k in range(8)]

    def test_corruption_recovered(self):
        rates = {"corrupt_rate": 0.5}
        seed = find_recoverable_seed(rates, max_attempts=4, n_tasks=4)
        injector = FaultInjector(seed=seed, **rates)
        pool = TileTaskPool(
            n_workers=2,
            retry=RetryPolicy(max_attempts=4, backoff_base_s=0.001, seed=seed),
            faults=injector,
        )
        assert pool.run(make_tasks(4)) == [{"tile": k} for k in range(4)]
        assert any(
            e.kind is FaultKind.CORRUPT for e in injector.fault_sequence()
        )

    def test_exhausted_retries_resolve_to_none(self):
        pool = TileTaskPool(
            n_workers=2,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.001),
            faults=FaultInjector(crash_rate=1.0),
        )
        recorder_results = pool.run(make_tasks(3))
        assert recorder_results == [None, None, None]

    def test_fault_sequence_deterministic_across_runs(self):
        def one_run():
            injector = FaultInjector(crash_rate=0.3, corrupt_rate=0.2, seed=9)
            pool = TileTaskPool(
                n_workers=4,
                retry=RetryPolicy(max_attempts=4, backoff_base_s=0.001, seed=9),
                faults=injector,
            )
            results = pool.run(make_tasks(10))
            return results, injector.fault_sequence()

        first = one_run()
        second = one_run()
        assert first == second


class TestStragglers:
    def test_stalled_attempt_cancelled_and_replaced(self):
        # Find a seed whose first attempt on task 0 stalls but whose
        # second attempt runs clean: the pool must cancel the 5 s stall
        # at the 0.05 s deadline and finish via the resubmission.
        seed = next(
            s
            for s in range(200)
            if FaultInjector(stall_rate=0.6, seed=s).draw(0, 1, kind="tile")
            is FaultKind.STALL
            and FaultInjector(stall_rate=0.6, seed=s).draw(0, 2, kind="tile")
            is None
        )
        metrics = MetricsRegistry()
        recorder = TraceRecorder()
        pool = TileTaskPool(
            n_workers=2,
            retry=RetryPolicy(
                max_attempts=3,
                backoff_base_s=0.001,
                timeout_seconds=0.05,
                seed=seed,
            ),
            faults=FaultInjector(stall_rate=0.6, stall_seconds=5.0, seed=seed),
            telemetry=recorder,
            metrics=metrics,
        )
        from repro.telemetry.clock import MONOTONIC

        t0 = MONOTONIC()
        results = pool.run([lambda: "done"])
        elapsed = MONOTONIC() - t0
        assert results == ["done"]
        assert elapsed < 2.0  # cancelled, not served for the full 5 s
        assert metrics.counter("task_timeouts", kind="tile").value >= 1
        assert any(
            e.kind == "tile_straggler_cancel" for e in recorder.events()
        )


class TestSubmitFailures:
    def test_transient_submit_failures_recovered(self):
        rates = {"submit_failure_rate": 0.5}
        seed = next(
            s
            for s in range(200)
            if not all(
                FaultInjector(seed=s, **rates).submit_fails(
                    idx, 1, kind="tile"
                )
                for idx in range(3)
            )
            and any(
                FaultInjector(seed=s, **rates).submit_fails(
                    idx, 1, kind="tile"
                )
                for idx in range(3)
            )
        )
        injector = FaultInjector(seed=seed, **rates)
        pool = TileTaskPool(
            n_workers=2,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.001, seed=seed),
            faults=injector,
        )
        # Submission retries are bounded by MAX_SUBMIT_TRIES = 50; with a
        # 0.5 failure rate every task finds a clean submission draw well
        # inside the budget.
        assert pool.run(make_tasks(3)) == [{"tile": k} for k in range(3)]
        assert any(
            e.kind is FaultKind.SUBMIT_FAILURE
            for e in injector.fault_sequence()
        )


class TestTelemetry:
    def test_spans_and_counters(self):
        recorder = TraceRecorder()
        metrics = MetricsRegistry()
        pool = TileTaskPool(
            n_workers=2, telemetry=recorder, metrics=metrics
        )
        pool.run(make_tasks(4))
        run_spans = [s for s in recorder.spans() if s.name == "tilepool.run"]
        assert len(run_spans) == 1
        attrs = dict(run_spans[0].attrs)
        assert attrs["ok"] == 4
        assert attrs["failed"] == 0
        tile_spans = [s for s in recorder.spans() if s.name == "tile"]
        assert len(tile_spans) == 4
        hist = metrics.histogram("task_seconds", kind="tile")
        assert hist.count == 4


class TestSentinel:
    def test_corrupt_sentinel_fails_default_validate(self):
        assert not TileTaskPool._default_validate(_CorruptResult())
        assert not TileTaskPool._default_validate(None)
        assert TileTaskPool._default_validate(np.zeros(3))
