"""The backend-selectable ensemble engine: equivalence, faults, monitoring."""

import numpy as np
import pytest

from repro.core import (
    ESSEConfig,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.core.ensemble import EnsembleRunner
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.workflow import (
    BatchedBackend,
    EnsembleEngine,
    FaultInjector,
    ProcessesBackend,
    RetryPolicy,
    SerialBackend,
    SharedEnsembleBuffer,
    ThreadsBackend,
    make_backend,
)
from repro.workflow.covfile import MemmapCovarianceStore
from repro.workflow.parallel import DegradedEnsembleWarning
from repro.workflow.statefiles import TaskStatus


@pytest.fixture(scope="module")
def setup():
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        model.layout, grid.shape2d, grid.nz, rank=8, seed=0
    )
    perturber = PerturbationGenerator(model.layout, subspace, root_seed=5)
    runner = EnsembleRunner(model, perturber, duration=4 * 400.0, root_seed=5)
    return model, background, runner


def config(**kw):
    defaults = dict(
        initial_ensemble_size=4,
        max_ensemble_size=8,
        convergence_tolerance=0.9,
        max_subspace_rank=6,
    )
    defaults.update(kw)
    return ESSEConfig(**defaults)


def anomaly_columns_by_member(engine):
    """Mapping member id -> raw anomaly column from the engine's store."""
    snap = MemmapCovarianceStore(engine.workdir).read_safe()
    return {
        member: np.asarray(snap.columns[:, j]).copy()
        for j, member in enumerate(snap.member_ids)
    }


class TestMakeBackend:
    def test_names_resolve(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("threads"), ThreadsBackend)
        assert isinstance(make_backend("batched"), BatchedBackend)
        assert isinstance(make_backend("processes"), ProcessesBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ThreadsBackend(n_workers=0)
        with pytest.raises(ValueError):
            ProcessesBackend(n_workers=0)
        with pytest.raises(ValueError):
            BatchedBackend(batch_size=0)

    def test_members_per_task(self):
        assert make_backend("serial").members_per_task == 1
        assert make_backend("batched", batch_size=5).members_per_task == 5
        assert make_backend("batched", batch_size=5).status_kind == "pemodel_batch"


class TestSharedEnsembleBuffer:
    def test_columns_start_nan_and_round_trip(self):
        buffer = SharedEnsembleBuffer(10, 3)
        try:
            assert np.all(np.isnan(buffer.column(1)))
            buffer.column(1)[:] = np.arange(10.0)
            assert np.array_equal(buffer.column(1), np.arange(10.0))
            assert np.all(np.isnan(buffer.column(0)))  # siblings untouched
        finally:
            buffer.close()
            buffer.unlink()

    def test_attach_sees_owner_writes(self):
        buffer = SharedEnsembleBuffer(6, 2)
        try:
            buffer.column(0)[:] = 7.0
            view = SharedEnsembleBuffer.attach(
                buffer.name, buffer.state_dim, buffer.capacity
            )
            try:
                assert np.array_equal(view.column(0), np.full(6, 7.0))
            finally:
                view.close()
        finally:
            buffer.close()
            buffer.unlink()

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            SharedEnsembleBuffer(0, 4)
        with pytest.raises(ValueError, match=">= 1"):
            SharedEnsembleBuffer(4, 0)


class TestBackendEquivalence:
    """Per-member forecasts are bit-identical across every backend."""

    @pytest.fixture(scope="class")
    def results(self, setup, tmp_path_factory):
        _, background, runner = setup
        root = tmp_path_factory.mktemp("engines")
        engines = {
            name: EnsembleEngine(
                runner,
                config(),
                root / name,
                backend=make_backend(name, n_workers=2, batch_size=3),
            )
            for name in ("serial", "threads", "batched", "processes")
        }
        outcomes = {name: eng.run(background) for name, eng in engines.items()}
        columns = {
            name: anomaly_columns_by_member(eng)
            for name, eng in engines.items()
        }
        return outcomes, columns

    def test_all_backends_complete(self, results):
        outcomes, _ = results
        for name, res in outcomes.items():
            assert res.backend == name
            assert res.ensemble_size == len(res.member_ids)
            assert res.ensemble_size >= 4
            assert res.failed_members == ()
            assert res.wall_seconds >= 0.0
            assert res.convergence_history

    def test_member_anomalies_bit_identical(self, results):
        _, columns = results
        reference = columns["serial"]
        for name in ("threads", "batched", "processes"):
            assert set(columns[name]) == set(reference), name
            for member, column in reference.items():
                assert np.array_equal(columns[name][member], column), (
                    f"{name} member {member}"
                )

    def test_serial_and_batched_subspace_bit_identical(self, results):
        outcomes, _ = results
        serial = outcomes["serial"].subspace
        batched = outcomes["batched"].subspace
        assert np.array_equal(serial.modes, batched.modes)
        assert np.array_equal(serial.sigmas, batched.sigmas)
        assert outcomes["serial"].member_ids == outcomes["batched"].member_ids

    def test_status_records_written(self, setup, results, tmp_path):
        _, background, runner = setup
        engine = EnsembleEngine(
            runner, config(), tmp_path / "st", backend=BatchedBackend(batch_size=3)
        )
        result = engine.run(background)
        done = engine.status.completed_indices("pemodel_batch")
        assert all(s is TaskStatus.SUCCESS for s in done.values())
        # Batching happens within each growth stage: stages of 4 then 4
        # more members, each split into ceil(4/3) = 2 batch tasks.
        assert result.ensemble_size == 8
        assert len(done) == 4


class TestProcessBackendFaults:
    def test_crashes_are_retried_to_completion(self, setup, tmp_path):
        _, background, runner = setup
        engine = EnsembleEngine(
            runner,
            config(max_ensemble_size=4, convergence_tolerance=1.0),
            tmp_path / "wf",
            backend=ProcessesBackend(n_workers=2),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0, seed=0),
            faults=FaultInjector(crash_rate=0.4, seed=7),
        )
        result = engine.run(background)
        assert result.n_retried > 0
        assert result.ensemble_size == 4
        assert not result.degraded
        # every retried member carries an attempt-numbered failure record
        history = engine.status.attempt_counts("pemodel")
        failures = sum(
            n
            for counts in history.values()
            for status, n in counts.items()
            if status is not TaskStatus.SUCCESS
        )
        assert failures >= result.n_retried

    def test_torn_column_detected_and_retried(self, setup, tmp_path):
        _, background, runner = setup
        engine = EnsembleEngine(
            runner,
            config(max_ensemble_size=4, convergence_tolerance=1.0),
            tmp_path / "wf",
            backend=ProcessesBackend(n_workers=2),
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0, seed=0),
            faults=FaultInjector(corrupt_rate=0.4, seed=7),
        )
        result = engine.run(background)
        assert result.ensemble_size == 4
        assert not result.degraded
        # the half-written shm columns were caught (IO_FAILURE) and the
        # final accepted columns are fully finite
        statuses = [
            status
            for counts in engine.status.attempt_counts("pemodel").values()
            for status in counts
        ]
        assert TaskStatus.IO_FAILURE in statuses
        for column in anomaly_columns_by_member(engine).values():
            assert np.all(np.isfinite(column))

    def test_exhausted_retries_degrade_gracefully(self, setup, tmp_path):
        _, background, runner = setup
        engine = EnsembleEngine(
            runner,
            config(
                initial_ensemble_size=4,
                max_ensemble_size=4,
                convergence_tolerance=1.0,
            ),
            tmp_path / "wf",
            backend=ProcessesBackend(n_workers=2),
            faults=FaultInjector(crash_rate=0.4, seed=7),  # no retry policy
        )
        with pytest.warns(DegradedEnsembleWarning):
            result = engine.run(background)
        assert result.degraded
        assert result.failed_members
        assert result.ensemble_size + len(result.failed_members) == 4
        assert result.subspace.rank >= 1

    def test_fault_free_run_matches_serial(self, setup, tmp_path):
        """retry/faults wiring must not perturb the no-fault path."""
        _, background, runner = setup
        cfg = config(max_ensemble_size=4, convergence_tolerance=1.0)
        faulty = EnsembleEngine(
            runner,
            cfg,
            tmp_path / "faulty",
            backend=ProcessesBackend(n_workers=2),
            retry=RetryPolicy(max_attempts=3, seed=0),
            faults=FaultInjector(seed=0),  # all rates zero
        ).run(background)
        plain = EnsembleEngine(
            runner, cfg, tmp_path / "plain", backend=SerialBackend()
        ).run(background)
        assert faulty.n_retried == 0
        assert sorted(faulty.member_ids) == sorted(plain.member_ids)


class TestProgressMonitor:
    def test_batched_progress_in_member_units(self, setup, tmp_path):
        _, background, runner = setup
        engine = EnsembleEngine(
            runner,
            config(max_ensemble_size=4, convergence_tolerance=1.0),
            tmp_path / "wf",
            backend=BatchedBackend(batch_size=3),
        )
        result = engine.run(background)
        report = engine.progress_monitor(
            expected_members=result.ensemble_size
        ).report("pemodel_batch")
        assert report.succeeded == result.ensemble_size
        assert report.complete
        assert report.pending == 0

    def test_staged_growth_with_partial_batches_not_overcounted(
        self, setup, tmp_path
    ):
        """Stages of 4 batched in threes write 3+1, 3+1 -- exactly 8 members.

        A uniform batch_size weight would scale the 4 records to 12/8;
        the engine hands the monitor the exact per-batch sizes instead.
        """
        _, background, runner = setup
        engine = EnsembleEngine(
            runner,
            config(),  # grows 4 -> 8 with tolerance 0.9
            tmp_path / "wf",
            backend=BatchedBackend(batch_size=3),
        )
        result = engine.run(background)
        assert result.ensemble_size == 8
        report = engine.progress_monitor(
            expected_members=result.ensemble_size
        ).report("pemodel_batch")
        assert report.succeeded == 8
        assert report.pending == 0
        assert report.complete
        assert report.eta_seconds is not None  # exact sizes: not stale

    def test_serial_progress_per_member(self, setup, tmp_path):
        _, background, runner = setup
        engine = EnsembleEngine(
            runner,
            config(max_ensemble_size=4, convergence_tolerance=1.0),
            tmp_path / "wf",
            backend=SerialBackend(),
        )
        result = engine.run(background)
        report = engine.progress_monitor(
            expected_members=result.ensemble_size
        ).report("pemodel")
        assert report.succeeded == result.ensemble_size
        assert report.complete
        assert report.pending == 0
