"""Bit-identical repeat runs through the deterministic RNG fallbacks.

Every former ``np.random.default_rng()`` fallback now derives from a keyed
:class:`repro.util.rng.SeedSequenceStream`, so default-constructed objects
must reproduce exactly across independent constructions -- the property the
REP001 lint rule guards statically, asserted here dynamically.
"""

import numpy as np

from repro.obs.network import aosn2_network
from repro.ocean.stochastic import StochasticForcing
from repro.sched.engine import Simulator
from repro.sched.gridsites import TERAGRID_SITES, run_reserved_campaign
from repro.sched.schedulers import ClusterScheduler, SGEPolicy
from repro.util.linalg import randomized_svd
from repro.util.randomfields import GaussianRandomField2D


class TestDefaultStreamRepeatability:
    def test_reserved_campaign_repeats_bit_identically(self):
        site = TERAGRID_SITES["ORNL"]
        first = run_reserved_campaign(site, n_members=2, window_seconds=None)
        second = run_reserved_campaign(site, n_members=2, window_seconds=None)
        assert first == second
        assert first["queue_wait_s"] > 0.0  # the stochastic draw happened

    def test_reserved_campaign_seed_changes_the_draw(self):
        site = TERAGRID_SITES["ORNL"]
        base = run_reserved_campaign(site, n_members=1, window_seconds=None)
        other = run_reserved_campaign(
            site, n_members=1, window_seconds=None, seed=1
        )
        assert base["queue_wait_s"] != other["queue_wait_s"]

    def test_scheduler_failure_fallback_repeats(self):
        def draws():
            scheduler = ClusterScheduler(
                Simulator(),
                TERAGRID_SITES["local"].cluster(),
                SGEPolicy(),
                failure_rate=0.5,
            )
            return scheduler._failure_rng.random(16)

        assert np.array_equal(draws(), draws())

    def test_observation_network_fallback_repeats(self, small_model):
        grid, layout = small_model.grid, small_model.layout
        first = aosn2_network(grid, layout).rng.standard_normal(16)
        second = aosn2_network(grid, layout).rng.standard_normal(16)
        assert np.array_equal(first, second)

    def test_randomized_svd_fallback_repeats(self):
        a = np.random.default_rng(7).standard_normal((40, 24))
        u1, s1, vt1 = randomized_svd(a, rank=4)
        u2, s2, vt2 = randomized_svd(a, rank=4)
        assert np.array_equal(u1, u2)
        assert np.array_equal(s1, s2)
        assert np.array_equal(vt1, vt2)

    def test_random_field_fallback_repeats(self):
        first = GaussianRandomField2D((12, 10), 2.0).sample()
        second = GaussianRandomField2D((12, 10), 2.0).sample()
        assert np.array_equal(first, second)

    def test_stochastic_forcing_fallback_repeats(self, small_grid):
        du1, dv1 = StochasticForcing(small_grid).momentum_increment(400.0)
        du2, dv2 = StochasticForcing(small_grid).momentum_increment(400.0)
        assert np.array_equal(du1, du2)
        assert np.array_equal(dv1, dv2)
