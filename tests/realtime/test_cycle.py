"""Integration test for the real-time forecast/assimilation cycle."""

import numpy as np
import pytest

from repro.core import (
    ESSEConfig,
    ESSEDriver,
    PerturbationGenerator,
    synthetic_initial_subspace,
)
from repro.obs.network import aosn2_network
from repro.ocean import PEModel, StochasticForcing
from repro.ocean.bathymetry import monterey_grid
from repro.realtime import ExperimentTimeline, RealTimeForecastCycle


@pytest.fixture(scope="module")
def cycle_run():
    grid = monterey_grid(nx=16, ny=14, nz=3)
    model = PEModel(grid=grid)
    layout = model.layout
    background = model.run(model.rest_state(), 86400.0)
    subspace = synthetic_initial_subspace(
        layout, grid.shape2d, grid.nz, rank=8, seed=2
    )
    perturber = PerturbationGenerator(layout, subspace, root_seed=777)
    truth0 = model.from_vector(
        perturber.member_state(model.to_vector(background), 0),
        time=background.time,
    )
    truth_model = PEModel(
        grid=grid, noise=StochasticForcing(grid, rng=np.random.default_rng(55))
    )
    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=6,
            max_ensemble_size=12,
            convergence_tolerance=0.85,
            max_subspace_rank=8,
        ),
        root_seed=4,
    )
    network = aosn2_network(grid, layout, rng=np.random.default_rng(9))
    timeline = ExperimentTimeline(
        t0=background.time, period_length=0.25 * 86400.0, n_periods=3
    )
    cycle = RealTimeForecastCycle(driver, truth_model, network, timeline)
    records, final_state, final_subspace = cycle.run(
        background, truth0, subspace
    )
    return records, final_state, final_subspace


class TestCycle:
    def test_one_record_per_period(self, cycle_run):
        records, _, _ = cycle_run
        assert [r.period_index for r in records] == [0, 1, 2]

    def test_analysis_beats_forecast_each_cycle(self, cycle_run):
        records, _, _ = cycle_run
        for r in records:
            assert r.analysis_rms <= r.innovation_rms

    def test_error_contained_over_cycles(self, cycle_run):
        """Sequential assimilation keeps the state error bounded."""
        records, _, _ = cycle_run
        first, last = records[0], records[-1]
        assert last.analysis_error < 2.0 * first.forecast_error

    def test_mean_error_reduction_positive(self, cycle_run):
        records, _, _ = cycle_run
        reductions = [r.error_reduction for r in records]
        assert np.mean(reductions) > 0.0

    def test_final_state_valid(self, cycle_run):
        _, final_state, final_subspace = cycle_run
        assert final_subspace.rank >= 1
        assert np.all(np.isfinite(final_state.temp))

    def test_nowcast_times_advance(self, cycle_run):
        records, _, _ = cycle_run
        times = [r.nowcast_time for r in records]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
