"""Tests for forecast scoring, selection and the bulletin product."""

import numpy as np
import pytest

from repro.core import ESSEConfig, ESSEDriver, synthetic_initial_subspace
from repro.obs.network import aosn2_network
from repro.realtime.products import (
    CandidateScore,
    ForecastProduct,
    generate_product,
    score_candidates,
)


@pytest.fixture(scope="module")
def product_setup(small_model, spun_up_state):
    model = small_model
    layout = model.layout
    subspace = synthetic_initial_subspace(
        layout, model.grid.shape2d, model.grid.nz, rank=8, seed=2
    )
    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=6,
            max_ensemble_size=12,
            convergence_tolerance=0.9,
            max_subspace_rank=8,
        ),
        root_seed=11,
    )
    duration = 6 * model.config.dt
    forecast = driver.forecast(spun_up_state, subspace, duration=duration)
    # verification batch sampled from the (clean) evolved background itself
    verification = model.run(spun_up_state, duration)
    network = aosn2_network(model.grid, layout, rng=np.random.default_rng(3))
    batch = network.observe(verification)
    return model, forecast, batch


class TestScoring:
    def test_perfect_candidate_wins(self, product_setup):
        model, forecast, batch = product_setup
        truth_vec = None
        # reconstruct the verification state vector via a fresh clean run
        central = model.to_vector(forecast.central)
        candidates = {
            "central": central,
            "corrupted": central + 5.0,
        }
        scores = score_candidates(candidates, batch.operator)
        assert scores[0].label == "central"
        assert scores[0].weighted_rmse < scores[1].weighted_rmse

    def test_requires_candidates(self, product_setup):
        _, _, batch = product_setup
        with pytest.raises(ValueError, match="at least one"):
            score_candidates({}, batch.operator)

    def test_score_validation(self):
        with pytest.raises(ValueError):
            CandidateScore(label="x", weighted_rmse=-1.0)


class TestProduct:
    def test_standard_candidates_present(self, product_setup):
        model, forecast, batch = product_setup
        product = generate_product(model, forecast, batch.operator, cycle_index=2)
        labels = {s.label for s in product.scores}
        assert {"central", "ensemble-mean"} <= labels
        assert product.selected in labels
        assert product.cycle_index == 2

    def test_field_summary_sane(self, product_setup):
        model, forecast, batch = product_setup
        product = generate_product(model, forecast, batch.operator)
        assert product.sst_min <= product.sst_mean <= product.sst_max
        assert 0.0 < product.sst_sigma_median < 5.0
        assert product.ensemble_size == forecast.ensemble_size

    def test_extra_candidates_participate(self, product_setup):
        model, forecast, batch = product_setup
        bad = model.to_vector(forecast.central) + 10.0
        product = generate_product(
            model, forecast, batch.operator,
            extra_candidates={"persistence": bad},
        )
        ranking = [s.label for s in product.scores]
        assert "persistence" in ranking
        assert ranking[-1] == "persistence"  # the corrupted one ranks last

    def test_label_collision_rejected(self, product_setup):
        model, forecast, batch = product_setup
        with pytest.raises(ValueError, match="collide"):
            generate_product(
                model, forecast, batch.operator,
                extra_candidates={"central": model.to_vector(forecast.central)},
            )

    def test_render_bulletin(self, product_setup):
        model, forecast, batch = product_setup
        text = generate_product(model, forecast, batch.operator).render()
        assert "ESSE forecast bulletin" in text
        assert "candidate ranking" in text
        assert "SST" in text
