"""Tests for forecast scoring, selection and the bulletin product."""

import numpy as np
import pytest

from repro.core import ESSEConfig, ESSEDriver, synthetic_initial_subspace
from repro.obs.network import aosn2_network
from repro.realtime.products import (
    CandidateScore,
    ForecastProduct,
    generate_product,
    score_candidates,
)


@pytest.fixture(scope="module")
def product_setup(small_model, spun_up_state):
    model = small_model
    layout = model.layout
    subspace = synthetic_initial_subspace(
        layout, model.grid.shape2d, model.grid.nz, rank=8, seed=2
    )
    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=6,
            max_ensemble_size=12,
            convergence_tolerance=0.9,
            max_subspace_rank=8,
        ),
        root_seed=11,
    )
    duration = 6 * model.config.dt
    forecast = driver.forecast(spun_up_state, subspace, duration=duration)
    # verification batch sampled from the (clean) evolved background itself
    verification = model.run(spun_up_state, duration)
    network = aosn2_network(model.grid, layout, rng=np.random.default_rng(3))
    batch = network.observe(verification)
    return model, forecast, batch


class TestScoring:
    def test_perfect_candidate_wins(self, product_setup):
        model, forecast, batch = product_setup
        truth_vec = None
        # reconstruct the verification state vector via a fresh clean run
        central = model.to_vector(forecast.central)
        candidates = {
            "central": central,
            "corrupted": central + 5.0,
        }
        scores = score_candidates(candidates, batch.operator)
        assert scores[0].label == "central"
        assert scores[0].weighted_rmse < scores[1].weighted_rmse

    def test_requires_candidates(self, product_setup):
        _, _, batch = product_setup
        with pytest.raises(ValueError, match="at least one"):
            score_candidates({}, batch.operator)

    def test_score_validation(self):
        with pytest.raises(ValueError):
            CandidateScore(label="x", weighted_rmse=-1.0)


class _StubOperator:
    """A tiny (H, R, y) stand-in observing the state vector directly."""

    def __init__(self, values, noise_var):
        self.values = np.asarray(values, dtype=float)
        self.noise_var = np.asarray(noise_var, dtype=float)

    def innovation(self, state_vector):
        return self.values - np.asarray(state_vector, dtype=float)


class TestScoringEdgeCases:
    def test_single_candidate(self):
        operator = _StubOperator([1.0, 2.0], [0.25, 0.25])
        scores = score_candidates({"only": np.array([1.0, 2.0])}, operator)
        assert [s.label for s in scores] == ["only"]
        assert scores[0].weighted_rmse == 0.0

    def test_exact_ties_order_by_label(self):
        operator = _StubOperator([0.0, 0.0], [1.0, 1.0])
        tied = np.array([1.0, 1.0])
        forward = score_candidates({"zeta": tied, "alpha": tied.copy()}, operator)
        reverse = score_candidates({"alpha": tied.copy(), "zeta": tied}, operator)
        assert [s.label for s in forward] == ["alpha", "zeta"]
        assert [s.label for s in forward] == [s.label for s in reverse]
        assert forward[0].weighted_rmse == forward[1].weighted_rmse

    def test_near_zero_noise_var_stays_finite(self):
        operator = _StubOperator([1.0], [1e-12])
        scores = score_candidates(
            {"exact": np.array([1.0]), "off": np.array([2.0])}, operator
        )
        assert scores[0].label == "exact"
        assert scores[0].weighted_rmse == 0.0
        assert scores[1].weighted_rmse == pytest.approx(1e6)
        assert np.isfinite(scores[1].weighted_rmse)

    def test_near_zero_noise_dominates_mixed_batch(self):
        # matching the tiny-noise instrument wins even while badly missing
        # the noisy one -- the weighting is what selection is about
        operator = _StubOperator([0.0, 0.0], [1e-10, 100.0])
        close_on_precise = np.array([1e-4, 5.0])
        close_on_noisy = np.array([1.0, 0.0])
        scores = score_candidates(
            {"precise": close_on_precise, "noisy": close_on_noisy}, operator
        )
        assert scores[0].label == "precise"


class TestSerialization:
    def test_candidate_score_round_trip(self):
        score = CandidateScore(label="central", weighted_rmse=0.123456789)
        assert CandidateScore.from_dict(score.to_dict()) == score

    def test_product_round_trip_through_json(self, product_setup):
        import json

        model, forecast, batch = product_setup
        product = generate_product(model, forecast, batch.operator, cycle_index=3)
        wire = json.loads(json.dumps(product.to_dict()))
        assert ForecastProduct.from_dict(wire) == product

    def test_round_trip_preserves_ranking_and_render(self, product_setup):
        model, forecast, batch = product_setup
        product = generate_product(model, forecast, batch.operator)
        back = ForecastProduct.from_dict(product.to_dict())
        assert [s.label for s in back.scores] == [s.label for s in product.scores]
        assert back.render() == product.render()


class TestProduct:
    def test_standard_candidates_present(self, product_setup):
        model, forecast, batch = product_setup
        product = generate_product(model, forecast, batch.operator, cycle_index=2)
        labels = {s.label for s in product.scores}
        assert {"central", "ensemble-mean"} <= labels
        assert product.selected in labels
        assert product.cycle_index == 2

    def test_field_summary_sane(self, product_setup):
        model, forecast, batch = product_setup
        product = generate_product(model, forecast, batch.operator)
        assert product.sst_min <= product.sst_mean <= product.sst_max
        assert 0.0 < product.sst_sigma_median < 5.0
        assert product.ensemble_size == forecast.ensemble_size

    def test_extra_candidates_participate(self, product_setup):
        model, forecast, batch = product_setup
        bad = model.to_vector(forecast.central) + 10.0
        product = generate_product(
            model, forecast, batch.operator,
            extra_candidates={"persistence": bad},
        )
        ranking = [s.label for s in product.scores]
        assert "persistence" in ranking
        assert ranking[-1] == "persistence"  # the corrupted one ranks last

    def test_label_collision_rejected(self, product_setup):
        model, forecast, batch = product_setup
        with pytest.raises(ValueError, match="collide"):
            generate_product(
                model, forecast, batch.operator,
                extra_candidates={"central": model.to_vector(forecast.central)},
            )

    def test_render_bulletin(self, product_setup):
        model, forecast, batch = product_setup
        text = generate_product(model, forecast, batch.operator).render()
        assert "ESSE forecast bulletin" in text
        assert "candidate ranking" in text
        assert "SST" in text
