"""Unit tests for the Fig 1 timeline structures."""

import pytest

from repro.realtime.times import (
    ExperimentTimeline,
    ForecasterTask,
    ObservationPeriod,
    SimulationWindow,
)


class TestObservationPeriods:
    def test_contiguous_periods(self):
        tl = ExperimentTimeline(t0=100.0, period_length=50.0, n_periods=4)
        periods = tl.periods()
        assert len(periods) == 4
        for a, b in zip(periods[:-1], periods[1:]):
            assert a.end == b.start
        assert periods[0].start == 100.0
        assert tl.final_time == 300.0

    def test_period_duration(self):
        p = ObservationPeriod(index=0, start=0.0, end=10.0)
        assert p.duration == 10.0

    def test_period_validation(self):
        with pytest.raises(ValueError):
            ObservationPeriod(index=0, start=5.0, end=5.0)
        with pytest.raises(ValueError):
            ObservationPeriod(index=-1, start=0.0, end=1.0)

    def test_period_index_bounds(self):
        tl = ExperimentTimeline(n_periods=3)
        with pytest.raises(IndexError):
            tl.period(3)


class TestForecasterTasks:
    def test_stage_layout_covers_budget(self):
        tl = ExperimentTimeline()
        tasks = tl.forecaster_tasks(budget=100.0)
        assert [t.name for t in tasks] == [
            "processing",
            "simulation",
            "dissemination",
        ]
        assert tasks[0].start == 0.0
        assert tasks[-1].end == 100.0
        for a, b in zip(tasks[:-1], tasks[1:]):
            assert a.end == b.start

    def test_simulation_gets_the_bulk(self):
        tl = ExperimentTimeline()
        tasks = tl.forecaster_tasks(budget=100.0)
        sim = tasks[1]
        assert sim.end - sim.start > 50.0

    def test_fraction_validation(self):
        tl = ExperimentTimeline()
        with pytest.raises(ValueError, match="fractions"):
            tl.forecaster_tasks(processing_fraction=0.9, dissemination_fraction=0.2)

    def test_task_validation(self):
        with pytest.raises(ValueError):
            ForecasterTask("x", 5.0, 1.0)


class TestSimulationWindows:
    def test_assimilates_all_observed_periods(self):
        tl = ExperimentTimeline(period_length=10.0, n_periods=5)
        win = tl.simulation_window(k=2)
        assert [p.index for p in win.assimilation_periods] == [0, 1, 2]
        assert win.nowcast_time == 30.0

    def test_forecast_extends_past_nowcast(self):
        tl = ExperimentTimeline(
            period_length=10.0, n_periods=5, forecast_horizon_periods=2
        )
        win = tl.simulation_window(k=1)
        assert win.forecast_end == win.nowcast_time + 20.0
        assert win.forecast_horizon == 20.0

    def test_multiple_simulations_per_prediction(self):
        tl = ExperimentTimeline(n_simulations=3)
        wins = tl.simulation_windows(k=0)
        assert [w.simulation_index for w in wins] == [0, 1, 2]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SimulationWindow(
                simulation_index=0,
                assimilation_periods=(),
                nowcast_time=10.0,
                forecast_end=5.0,
            )

    def test_prediction_index_bounds(self):
        tl = ExperimentTimeline(n_periods=2)
        with pytest.raises(IndexError):
            tl.simulation_window(k=5)


class TestTimelineValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"period_length": 0.0},
            {"n_periods": 0},
            {"forecast_horizon_periods": 0},
            {"n_simulations": 0},
        ],
    )
    def test_rejects_bad_config(self, kw):
        with pytest.raises(ValueError):
            ExperimentTimeline(**kw)
