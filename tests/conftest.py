"""Shared fixtures: small grids and models sized for fast unit tests.

With ``REPRO_SANITIZE=1`` in the environment every test additionally
runs inside the runtime concurrency sanitizer (lockset race detection
plus lock-order witnessing; see docs/CONCURRENCY.md) and fails if it
produces a report.  Tests that *plant* a race clear their monitor
before returning.
"""

import os

import numpy as np
import pytest

from repro.ocean import (
    AtmosphericForcing,
    ModelConfig,
    PEModel,
    StochasticForcing,
)
from repro.ocean.bathymetry import monterey_grid
from repro.ocean.grid import demo_grid


@pytest.fixture(autouse=os.environ.get("REPRO_SANITIZE") == "1")
def _sanitize_test():
    """Run the test under the concurrency sanitizer (opt-in via env).

    Inert unless ``REPRO_SANITIZE=1``: autouse is False, so the fixture
    is never requested and plain runs pay nothing.
    """
    from repro.util.sanitizer import sanitized

    with sanitized() as monitor:
        yield
        reports = monitor.reports
    if reports:
        lines = "\n".join(f"  {r.describe()}" for r in reports)
        pytest.fail(
            f"concurrency sanitizer: {len(reports)} report(s):\n{lines}",
            pytrace=False,
        )


@pytest.fixture(scope="session")
def small_grid():
    """A small closed-basin grid (tests run in milliseconds)."""
    return demo_grid(nx=16, ny=14, nz=3)


@pytest.fixture(scope="session")
def small_monterey_grid():
    """A coarse Monterey-like grid with coastline and bay."""
    return monterey_grid(nx=24, ny=20, nz=4)


@pytest.fixture(scope="session")
def small_model(small_monterey_grid):
    """A deterministic model on the coarse Monterey grid."""
    return PEModel(grid=small_monterey_grid)


@pytest.fixture(scope="session")
def spun_up_state(small_model):
    """A 3-day spin-up state shared across tests (read-only; copy first)."""
    return small_model.run(small_model.rest_state(), 3 * 86400.0)


@pytest.fixture()
def noisy_model(small_monterey_grid):
    """A model with seeded stochastic forcing."""
    noise = StochasticForcing(
        small_monterey_grid, rng=np.random.default_rng(42)
    )
    return PEModel(grid=small_monterey_grid, noise=noise)
