"""Shared fixtures: small grids and models sized for fast unit tests."""

import numpy as np
import pytest

from repro.ocean import (
    AtmosphericForcing,
    ModelConfig,
    PEModel,
    StochasticForcing,
)
from repro.ocean.bathymetry import monterey_grid
from repro.ocean.grid import demo_grid


@pytest.fixture(scope="session")
def small_grid():
    """A small closed-basin grid (tests run in milliseconds)."""
    return demo_grid(nx=16, ny=14, nz=3)


@pytest.fixture(scope="session")
def small_monterey_grid():
    """A coarse Monterey-like grid with coastline and bay."""
    return monterey_grid(nx=24, ny=20, nz=4)


@pytest.fixture(scope="session")
def small_model(small_monterey_grid):
    """A deterministic model on the coarse Monterey grid."""
    return PEModel(grid=small_monterey_grid)


@pytest.fixture(scope="session")
def spun_up_state(small_model):
    """A 3-day spin-up state shared across tests (read-only; copy first)."""
    return small_model.run(small_model.rest_state(), 3 * 86400.0)


@pytest.fixture()
def noisy_model(small_monterey_grid):
    """A model with seeded stochastic forcing."""
    noise = StochasticForcing(
        small_monterey_grid, rng=np.random.default_rng(42)
    )
    return PEModel(grid=small_monterey_grid, noise=noise)
