"""Unit tests for the Mackenzie sound-speed equation."""

import numpy as np
import pytest

from repro.acoustics.soundspeed import mackenzie_sound_speed, sound_speed_profile


class TestMackenzie:
    def test_reference_value(self):
        """Mackenzie (1981) at T=10 degC, S=35 psu, D=1000 m.

        Term-by-term hand evaluation of the published nine-term equation
        gives 1506.26 m/s.
        """
        assert mackenzie_sound_speed(10.0, 35.0, 1000.0) == pytest.approx(
            1506.26, abs=0.05
        )

    def test_surface_value(self):
        assert mackenzie_sound_speed(10.0, 35.0, 0.0) == pytest.approx(1489.8, abs=0.2)

    def test_increases_with_temperature(self):
        c_cold = mackenzie_sound_speed(5.0, 34.0, 50.0)
        c_warm = mackenzie_sound_speed(15.0, 34.0, 50.0)
        assert c_warm > c_cold

    def test_increases_with_depth(self):
        c_shallow = mackenzie_sound_speed(8.0, 34.0, 10.0)
        c_deep = mackenzie_sound_speed(8.0, 34.0, 2000.0)
        assert c_deep > c_shallow

    def test_increases_with_salinity(self):
        assert mackenzie_sound_speed(8.0, 35.0, 10.0) > mackenzie_sound_speed(
            8.0, 33.0, 10.0
        )

    def test_broadcasting(self):
        t = np.array([5.0, 10.0, 15.0])
        c = mackenzie_sound_speed(t, 34.0, 0.0)
        assert c.shape == (3,)
        assert np.all(np.diff(c) > 0)

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError, match="depth"):
            mackenzie_sound_speed(10.0, 35.0, -5.0)


class TestProfile:
    def test_column_shape(self):
        z = np.array([5.0, 50.0, 200.0])
        c = sound_speed_profile(
            np.array([14.0, 10.0, 8.0]), np.array([33.5, 33.8, 34.1]), z
        )
        assert c.shape == (3,)

    def test_section_broadcast(self):
        z = np.array([5.0, 50.0, 200.0])
        temp = np.tile(np.array([14.0, 10.0, 8.0])[:, None], (1, 7))
        salt = np.full_like(temp, 34.0)
        c = sound_speed_profile(temp, salt, z)
        assert c.shape == (3, 7)
        assert np.allclose(c[:, 0], c[:, 6])

    def test_shape_mismatch(self):
        z = np.array([5.0, 50.0])
        with pytest.raises(ValueError, match="levels"):
            sound_speed_profile(np.zeros(3), np.zeros(3), z)
        with pytest.raises(ValueError, match="shapes differ"):
            sound_speed_profile(np.zeros(2), np.zeros(3), z)

    def test_typical_monterey_profile_has_thermocline_minimum_gradient(self):
        """Warm surface over cold deep: sound speed decreases initially."""
        z = np.linspace(0.0, 300.0, 31)
        temp = 15.0 - 8.0 * (1.0 - np.exp(-z / 60.0))
        salt = np.full_like(z, 33.8)
        c = sound_speed_profile(temp, salt, z)
        assert c[0] > c[10]  # downward-refracting upper ocean
