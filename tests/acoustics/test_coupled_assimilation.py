"""Tests for coupled physical-acoustical assimilation (paper Sec 2.2)."""

import numpy as np
import pytest

from repro.acoustics.coupled import coupled_uncertainty_modes


def coupled_twin(n=40, seed=0):
    """Ensemble with a known shared factor: warm anomalies lower TL."""
    rng = np.random.default_rng(seed)
    shared = rng.standard_normal((n, 1, 1))
    temps = 12.0 + shared * np.ones((1, 6, 5)) + 0.05 * rng.standard_normal((n, 6, 5))
    tls = 80.0 - 4.0 * shared * np.ones((1, 4, 7)) + 0.2 * rng.standard_normal(
        (n, 4, 7)
    )
    cov = coupled_uncertainty_modes(temps, tls)
    # truth: one more draw from the same statistics
    z = 1.3
    truth_temp = 12.0 + z * np.ones((6, 5))
    truth_tl = 80.0 - 4.0 * z * np.ones((4, 7))
    prior_temp = np.full((6, 5), 12.0)  # ensemble mean as prior
    prior_tl = np.full((4, 7), 80.0)
    return cov, prior_temp, prior_tl, truth_temp, truth_tl


class TestCoupledAssimilation:
    def test_tl_data_corrects_temperature(self):
        """Measuring TL at a few receivers must pull T toward the truth --
        the cross-disciplinary transfer the paper describes."""
        cov, pT, pA, tT, tA = coupled_twin()
        idx = np.array([0, 9, 17])
        obs = tA.ravel()[idx]  # perfect TL measurements
        aT, aA = cov.assimilate(pT, pA, idx, obs, noise_std=0.1, block="tl")
        err_prior = np.abs(pT - tT).mean()
        err_post = np.abs(aT - tT).mean()
        assert err_post < 0.5 * err_prior

    def test_temperature_data_corrects_tl(self):
        cov, pT, pA, tT, tA = coupled_twin()
        idx = np.array([2, 11, 23])
        obs = tT.ravel()[idx]
        aT, aA = cov.assimilate(pT, pA, idx, obs, noise_std=0.05, block="temp")
        assert np.abs(aA - tA).mean() < np.abs(pA - tA).mean()

    def test_noisy_obs_update_weaker(self):
        cov, pT, pA, tT, tA = coupled_twin()
        idx = np.array([0, 9])
        obs = tA.ravel()[idx]
        sharp_T, _ = cov.assimilate(pT, pA, idx, obs, noise_std=0.05, block="tl")
        dull_T, _ = cov.assimilate(pT, pA, idx, obs, noise_std=50.0, block="tl")
        # huge noise -> nearly no increment
        assert np.abs(dull_T - pT).max() < 0.1 * np.abs(sharp_T - pT).max()

    def test_shapes_preserved(self):
        cov, pT, pA, tT, tA = coupled_twin()
        aT, aA = cov.assimilate(
            pT, pA, np.array([0]), np.array([78.0]), noise_std=0.5
        )
        assert aT.shape == pT.shape
        assert aA.shape == pA.shape

    def test_validation(self):
        cov, pT, pA, tT, tA = coupled_twin()
        with pytest.raises(ValueError, match="noise_std"):
            cov.assimilate(pT, pA, np.array([0]), np.array([1.0]), noise_std=0.0)
        with pytest.raises(ValueError, match="block"):
            cov.assimilate(
                pT, pA, np.array([0]), np.array([1.0]), noise_std=1.0, block="x"
            )
        with pytest.raises(ValueError, match="out of range"):
            cov.assimilate(
                pT, pA, np.array([10**6]), np.array([1.0]), noise_std=1.0
            )
        with pytest.raises(ValueError, match="matching"):
            cov.assimilate(
                pT, pA, np.array([0, 1]), np.array([1.0]), noise_std=1.0
            )
        with pytest.raises(ValueError, match="blocks"):
            cov.assimilate(
                np.zeros((2, 2)), pA, np.array([0]), np.array([1.0]), noise_std=1.0
            )
