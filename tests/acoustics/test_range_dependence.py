"""Tests for bathymetry-aware (range-dependent) acoustic sections."""

import numpy as np
import pytest

from repro.acoustics import extract_section, transmission_loss
from repro.ocean.bathymetry import monterey_bathymetry


@pytest.fixture()
def bathy(small_monterey_grid):
    return monterey_bathymetry(
        nx=small_monterey_grid.nx, ny=small_monterey_grid.ny
    )


def shelf_section(model, state, bathy, **kw):
    grid = model.grid
    lx, ly = grid.nx * grid.dx, grid.ny * grid.dy
    defaults = dict(
        n_ranges=12,
        dz=4.0,
        max_depth=200.0,
        bathymetry=bathy.depth if bathy is not None else None,
    )
    defaults.update(kw)
    return extract_section(
        grid, state, (0.7 * lx, 0.2 * ly), (0.1 * lx, 0.2 * ly), **defaults
    )


class TestShelfBathymetry:
    def test_shelf_exists(self, bathy):
        wet_depths = bathy.depth[bathy.mask]
        assert wet_depths.min() == pytest.approx(120.0, rel=0.2)
        # a noticeable fraction of the ocean is shelf (< 300 m)
        assert np.mean(wet_depths < 300.0) > 0.05

    def test_canyon_still_deep(self, bathy):
        assert bathy.max_depth > 2000.0


class TestRangeDependentSections:
    def test_water_depth_varies_along_section(
        self, small_model, spun_up_state, bathy
    ):
        sec = shelf_section(small_model, spun_up_state, bathy)
        assert sec.water_depth.min() < sec.water_depth.max()
        assert sec.water_depth.min() == pytest.approx(120.0, rel=0.25)

    def test_flat_section_without_bathymetry(self, small_model, spun_up_state):
        sec = shelf_section(small_model, spun_up_state, None, bathymetry=None)
        assert np.all(sec.water_depth == sec.water_depth[0])

    def test_bathymetry_shape_validated(self, small_model, spun_up_state):
        with pytest.raises(ValueError, match="bathymetry shape"):
            shelf_section(
                small_model, spun_up_state, None, bathymetry=np.ones((3, 3))
            )

    def test_tl_differs_from_flat_bottom(self, small_model, spun_up_state, bathy):
        sec_rd = shelf_section(small_model, spun_up_state, bathy)
        sec_flat = shelf_section(small_model, spun_up_state, None, bathymetry=None)
        tl_rd = transmission_loss(sec_rd, 150.0, source_depth=30.0)
        tl_flat = transmission_loss(sec_flat, 150.0, source_depth=30.0)
        assert not np.allclose(tl_rd.tl, tl_flat.tl)
        assert np.all(np.isfinite(tl_rd.tl))

    def test_modes_vanish_below_the_seabed(self, small_model, spun_up_state, bathy):
        """Receivers below the local bottom sit in the TL floor."""
        sec = shelf_section(small_model, spun_up_state, bathy)
        tl = transmission_loss(sec, 150.0, source_depth=30.0)
        # first receiver column is over the 120 m shelf: below ~120 m the
        # padded modes are zero -> floor value
        shelf_cols = np.nonzero(sec.water_depth[1:] < 150.0)[0]
        if shelf_cols.size:
            below = sec.depths > sec.water_depth[1:][shelf_cols[0]] + 8.0
            assert np.all(tl.tl[below, shelf_cols[0]] >= 150.0)
