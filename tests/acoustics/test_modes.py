"""Unit tests for the normal-mode solver, including analytic checks."""

import numpy as np
import pytest

from repro.acoustics.modes import solve_modes


@pytest.fixture()
def iso_waveguide():
    z = np.arange(0.0, 200.1, 2.0)
    c = np.full_like(z, 1500.0)
    return z, c


class TestIsovelocityAnalytic:
    """Isovelocity waveguide (pressure-release top, rigid bottom):
    kr_m = sqrt(k^2 - ((m - 1/2) pi / H)^2)."""

    def test_wavenumbers_match_analytic(self, iso_waveguide):
        z, c = iso_waveguide
        freq, h = 100.0, 200.0
        ms = solve_modes(c, z, freq)
        k = 2 * np.pi * freq / 1500.0
        m_idx = np.arange(1, ms.n_modes + 1)
        arg = k**2 - ((m_idx - 0.5) * np.pi / h) ** 2
        kr_analytic = np.sqrt(arg[arg > 0])
        n = min(5, kr_analytic.size)
        assert np.allclose(ms.kr[:n], kr_analytic[:n], rtol=2e-4)

    def test_mode_count_scales_with_frequency(self, iso_waveguide):
        """Mode count ~ 2 H f / c, at frequencies the 2-m grid resolves."""
        z, c = iso_waveguide
        n50 = solve_modes(c, z, 50.0).n_modes
        n100 = solve_modes(c, z, 100.0).n_modes
        assert n50 == pytest.approx(2 * 200.0 * 50.0 / 1500.0, abs=2)
        assert n100 == pytest.approx(2 * n50, abs=3)

    def test_mode_shapes_are_sines(self, iso_waveguide):
        z, c = iso_waveguide
        ms = solve_modes(c, z, 50.0)
        h = 200.0
        analytic = np.sin(0.5 * np.pi * z / h)
        analytic /= np.sqrt(np.trapezoid(analytic**2, z))
        assert np.allclose(np.abs(ms.psi[:, 0]), np.abs(analytic), atol=5e-3)


class TestProperties:
    def test_surface_pressure_release(self, iso_waveguide):
        z, c = iso_waveguide
        ms = solve_modes(c, z, 150.0)
        assert np.allclose(ms.psi[0, :], 0.0)

    def test_orthonormal_modes(self, iso_waveguide):
        z, c = iso_waveguide
        ms = solve_modes(c, z, 150.0)
        dz = z[1] - z[0]
        gram = ms.psi.T @ ms.psi * dz
        # trapezoid-normalized, so diagonal ~1 (surface node ~0 effect)
        assert np.allclose(np.diag(gram), 1.0, atol=0.02)
        off = gram - np.diag(np.diag(gram))
        assert np.abs(off).max() < 0.02

    def test_wavenumbers_descending(self, iso_waveguide):
        z, c = iso_waveguide
        ms = solve_modes(c, z, 200.0)
        assert np.all(np.diff(ms.kr) < 0)

    def test_kr_bounded_by_max_k(self, iso_waveguide):
        z, c = iso_waveguide
        ms = solve_modes(c, z, 200.0)
        assert np.all(ms.kr <= 2 * np.pi * 200.0 / c.min() + 1e-9)

    def test_max_modes_cap(self, iso_waveguide):
        z, c = iso_waveguide
        ms = solve_modes(c, z, 400.0, max_modes=3)
        assert ms.n_modes == 3

    def test_ducted_profile_traps_low_modes(self):
        """A strong surface duct concentrates mode 1 near the duct axis."""
        z = np.arange(0.0, 300.1, 2.0)
        c = 1500.0 + 0.05 * np.abs(z - 60.0)  # minimum at 60 m
        ms = solve_modes(c, z, 200.0)
        peak_depth = z[np.argmax(np.abs(ms.psi[:, 0]))]
        assert 20.0 < peak_depth < 120.0

    def test_at_depth_interpolates(self, iso_waveguide):
        z, c = iso_waveguide
        ms = solve_modes(c, z, 100.0)
        vals = ms.at_depth(101.0)  # between nodes at 100 and 102
        assert vals.shape == (ms.n_modes,)
        expected = 0.5 * (ms.psi[50, 0] + ms.psi[51, 0])
        assert vals[0] == pytest.approx(expected, rel=1e-6)


class TestValidation:
    def test_rejects_bad_frequency(self, iso_waveguide):
        z, c = iso_waveguide
        with pytest.raises(ValueError, match="frequency"):
            solve_modes(c, z, 0.0)

    def test_rejects_nonuniform_grid(self):
        z = np.array([0.0, 1.0, 3.0, 7.0, 12.0])
        with pytest.raises(ValueError, match="uniform"):
            solve_modes(np.full(5, 1500.0), z, 100.0)

    def test_rejects_mismatched_arrays(self, iso_waveguide):
        z, c = iso_waveguide
        with pytest.raises(ValueError, match="matching"):
            solve_modes(c[:-1], z, 100.0)

    def test_rejects_nonpositive_speed(self, iso_waveguide):
        z, c = iso_waveguide
        c = c.copy()
        c[3] = -1.0
        with pytest.raises(ValueError, match="positive"):
            solve_modes(c, z, 100.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="4 grid points"):
            solve_modes(np.full(3, 1500.0), np.array([0.0, 1.0, 2.0]), 100.0)

    def test_no_propagating_modes_below_cutoff(self):
        """A very low frequency in a shallow duct has no trapped modes."""
        z = np.arange(0.0, 20.1, 1.0)
        c = np.full_like(z, 1500.0)
        ms = solve_modes(c, z, 5.0)  # cutoff ~ c/4H = 18 Hz
        assert ms.n_modes == 0
