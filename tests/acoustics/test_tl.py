"""Unit tests for sections, transmission loss and the acoustic climate."""

import numpy as np
import pytest

from repro.acoustics.environment import AcousticSection, extract_section
from repro.acoustics.tl import (
    TLField,
    broadband_transmission_loss,
    transmission_loss,
)
from repro.acoustics.climate import (
    AcousticClimate,
    AcousticTask,
    acoustic_climate_tasks,
)
from repro.acoustics.coupled import coupled_uncertainty_modes


def iso_section(nr=10, depth=200.0, dz=4.0, length=20000.0):
    depths = np.arange(0.0, depth + dz / 2, dz)
    ranges = np.linspace(0.0, length, nr)
    c = np.full((depths.size, nr), 1500.0)
    t = np.full((depths.size, nr), 10.0)
    return AcousticSection(
        ranges=ranges,
        depths=depths,
        sound_speed=c,
        temperature=t,
        water_depth=np.full(nr, depth),
    )


class TestSectionExtraction:
    def test_shapes(self, small_model, spun_up_state):
        sec = extract_section(
            small_model.grid,
            spun_up_state,
            (5000.0, 30000.0),
            (45000.0, 30000.0),
            n_ranges=12,
            dz=5.0,
            max_depth=150.0,
        )
        assert sec.sound_speed.shape == (sec.depths.size, 12)
        assert sec.length == pytest.approx(40000.0)

    def test_sound_speed_realistic(self, small_model, spun_up_state):
        sec = extract_section(
            small_model.grid,
            spun_up_state,
            (5000.0, 30000.0),
            (45000.0, 30000.0),
            max_depth=150.0,
        )
        assert np.all((1440.0 < sec.sound_speed) & (sec.sound_speed < 1560.0))

    def test_validation(self, small_model, spun_up_state):
        with pytest.raises(ValueError, match="two range"):
            extract_section(
                small_model.grid, spun_up_state, (0.0, 0.0), (1.0, 1.0), n_ranges=1
            )
        with pytest.raises(ValueError, match="dz"):
            extract_section(
                small_model.grid, spun_up_state, (0.0, 0.0), (1.0, 1.0), dz=0.0
            )

    def test_section_dataclass_validation(self):
        with pytest.raises(ValueError, match="ascending"):
            AcousticSection(
                ranges=np.array([0.0, 0.0]),
                depths=np.array([0.0, 4.0]),
                sound_speed=np.full((2, 2), 1500.0),
                temperature=np.full((2, 2), 10.0),
                water_depth=np.full(2, 100.0),
            )


class TestTransmissionLoss:
    def test_geometry(self):
        sec = iso_section()
        fld = transmission_loss(sec, 100.0, source_depth=50.0)
        assert fld.tl.shape == (sec.depths.size, sec.ranges.size - 1)
        assert np.all(np.isfinite(fld.tl))

    def test_loss_increases_with_range_on_average(self):
        sec = iso_section(nr=20, length=40000.0)
        fld = transmission_loss(sec, 150.0, source_depth=50.0)
        # modal interference wiggles, but column-mean TL grows with range
        col_mean = fld.tl.mean(axis=0)
        assert col_mean[-1] > col_mean[0]

    def test_cylindrical_spreading_scale(self):
        """In an ideal waveguide TL ~ 10 log r + const (cylindrical)."""
        sec = iso_section(nr=40, length=40000.0)
        fld = transmission_loss(sec, 150.0, source_depth=50.0)
        col_mean = fld.tl.mean(axis=0)
        r = fld.ranges
        slope = np.polyfit(np.log10(r), col_mean, 1)[0]
        assert 5.0 < slope < 20.0

    def test_source_depth_validated(self):
        sec = iso_section()
        with pytest.raises(ValueError, match="source depth"):
            transmission_loss(sec, 100.0, source_depth=500.0)

    def test_tl_positive_beyond_1m(self):
        sec = iso_section()
        fld = transmission_loss(sec, 100.0, source_depth=50.0)
        assert np.all(fld.tl > 20.0)

    def test_at_lookup(self):
        sec = iso_section()
        fld = transmission_loss(sec, 100.0, source_depth=50.0)
        v = fld.at(10000.0, 100.0)
        i = np.argmin(np.abs(fld.ranges - 10000.0))
        k = np.argmin(np.abs(fld.depths - 100.0))
        assert v == fld.tl[k, i]

    def test_field_shape_validation(self):
        with pytest.raises(ValueError, match="tl shape"):
            TLField(
                ranges=np.array([1.0, 2.0]),
                depths=np.array([0.0, 4.0]),
                tl=np.zeros((3, 3)),
                frequency=100.0,
                source_depth=10.0,
            )


class TestBroadband:
    def test_incoherent_average_smooths(self):
        sec = iso_section(nr=25, length=30000.0)
        single = transmission_loss(sec, 150.0, source_depth=50.0)
        broad = broadband_transmission_loss(
            sec, [130.0, 150.0, 170.0], source_depth=50.0
        )
        # broadband averaging reduces interference variance along range
        assert broad.tl.std(axis=1).mean() <= single.tl.std(axis=1).mean() + 1e-9

    def test_requires_frequencies(self):
        with pytest.raises(ValueError, match="frequency"):
            broadband_transmission_loss(iso_section(), [])


class TestAcousticClimate:
    def test_task_enumeration_size(self, small_model):
        tasks = acoustic_climate_tasks(
            small_model.grid,
            n_slices=4,
            frequencies=(100.0, 200.0),
            source_depths=(15.0,),
            n_members=3,
        )
        assert len(tasks) == 4 * 2 * 1 * 3
        assert len({t.task_id for t in tasks}) == len(tasks)

    def test_climate_runs_tasks(self, small_model, spun_up_state):
        tasks = acoustic_climate_tasks(
            small_model.grid, n_slices=2, frequencies=(100.0,), source_depths=(30.0,)
        )
        clim = AcousticClimate(small_model.grid, tasks).run(
            spun_up_state, n_ranges=8, max_depth=120.0
        )
        assert clim.completed == len(tasks)
        stats = clim.tl_statistics()
        assert 30.0 < stats["mean"] < 160.0

    def test_failures_tolerated(self, small_model, spun_up_state):
        bad = AcousticTask(
            task_id=0,
            slice_start=(0.0, 0.0),
            slice_end=(1.0, 1.0),
            frequency=-5.0,  # invalid: task fails
            source_depth=30.0,
        )
        clim = AcousticClimate(small_model.grid, [bad]).run(spun_up_state)
        assert clim.completed == 0
        assert 0 in clim.failures
        with pytest.raises(RuntimeError, match="no completed"):
            clim.tl_statistics()

    def test_requires_tasks(self, small_model):
        with pytest.raises(ValueError, match="at least one task"):
            AcousticClimate(small_model.grid, [])


class TestCoupledCovariance:
    def _ensemble(self, n=25, seed=0):
        rng = np.random.default_rng(seed)
        shared = rng.standard_normal((n, 1, 1))
        temps = shared * np.ones((1, 6, 5)) + 0.1 * rng.standard_normal((n, 6, 5))
        tls = 80.0 - 4.0 * shared * np.ones((1, 4, 7)) + 0.1 * rng.standard_normal(
            (n, 4, 7)
        )
        return temps, tls

    def test_dominant_mode_captures_coupling(self):
        temps, tls = self._ensemble()
        cc = coupled_uncertainty_modes(temps, tls)
        # one shared factor dominates: first mode carries most variance
        assert cc.variances[0] / cc.variances.sum() > 0.8
        # and splits energy between both blocks
        frac = cc.coupling_fraction()[0]
        assert 0.2 < frac < 0.8

    def test_cross_covariance_sign(self):
        temps, tls = self._ensemble()
        cc = coupled_uncertainty_modes(temps, tls)
        # warm anomalies -> lower TL (negative cross-covariance)
        assert cc.cross_covariance().mean() < 0

    def test_block_shapes(self):
        temps, tls = self._ensemble()
        cc = coupled_uncertainty_modes(temps, tls)
        assert cc.physical_block().shape[0] == 30
        assert cc.acoustic_block().shape[0] == 28

    def test_validation(self):
        temps, tls = self._ensemble()
        with pytest.raises(ValueError, match="at least 2"):
            coupled_uncertainty_modes(temps[:1], tls[:1])
        with pytest.raises(ValueError, match="members"):
            coupled_uncertainty_modes(temps, tls[:-1])

    def test_max_modes_cap(self):
        temps, tls = self._ensemble()
        cc = coupled_uncertainty_modes(temps, tls, max_modes=3)
        assert cc.n_modes == 3
