"""Every example script must be importable and expose a main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 3, "the repository promises >= 3 examples"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"
    assert module.__doc__, f"{path.name} lacks a module docstring"
