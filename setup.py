"""Setup shim for offline editable installs (no network, no wheel pkg)."""

from setuptools import setup

setup()
