"""Figs 5-6: ESSE uncertainty forecasts for SST and 30 m temperature.

The paper maps the ensemble standard deviation of sea-surface temperature
(Fig 5) and 30 m temperature (Fig 6) over Monterey Bay after a 2-day ESSE
forecast initialized from 600 posterior error modes.  Scaled down, the
reproduction asserts the field *shape*: positive, spatially structured
uncertainty of mesoscale magnitude (tenths of a degC), with the surface
field carrying more variance than the 30 m field on average (wind/heat
forcing acts at the surface).
"""

import numpy as np
import pytest

from conftest import print_table
from repro.core import ESSEConfig, ESSEDriver, synthetic_initial_subspace
from repro.ocean import PEModel
from repro.ocean.bathymetry import monterey_grid
from repro.ocean.diagnostics import ensemble_std


def run_uncertainty_forecast():
    # max_level_depth chosen so a level sits at ~30 m (Fig 6's depth)
    grid = monterey_grid(nx=24, ny=20, nz=5, max_level_depth=200.0)
    model = PEModel(grid=grid)
    subspace = synthetic_initial_subspace(
        model.layout, grid.shape2d, grid.nz, rank=16, seed=3
    )
    background = model.run(model.rest_state(), 3 * 86400.0)
    driver = ESSEDriver(
        model,
        ESSEConfig(
            initial_ensemble_size=12,
            max_ensemble_size=24,
            convergence_tolerance=0.95,
            max_subspace_rank=16,
        ),
        root_seed=2003,
    )
    forecast = driver.forecast(background, subspace, duration=86400.0)
    layout = model.layout
    sst = np.stack([layout.view(m, "temp")[0] for m in forecast.member_forecasts])
    lvl30 = grid.level_index(30.0)
    t30 = np.stack(
        [layout.view(m, "temp")[lvl30] for m in forecast.member_forecasts]
    )
    return grid, ensemble_std(sst), ensemble_std(t30), forecast


def test_fig56_uncertainty_maps(benchmark):
    grid, sst_sigma, t30_sigma, forecast = benchmark.pedantic(
        run_uncertainty_forecast, rounds=1, iterations=1
    )
    wet = grid.mask

    rows = []
    for name, sigma in (("Fig 5: SST", sst_sigma), ("Fig 6: 30 m temp", t30_sigma)):
        rows.append(
            [
                name,
                f"{sigma[wet].min():.3f}",
                f"{np.median(sigma[wet]):.3f}",
                f"{sigma[wet].max():.3f}",
            ]
        )
    print_table(
        f"Figs 5-6: ensemble std-dev of temperature (degC), "
        f"N={forecast.ensemble_size}",
        ["field", "min", "median", "max"],
        rows,
    )

    for sigma in (sst_sigma, t30_sigma):
        # positive everywhere over ocean, zero over land
        assert np.all(sigma[wet] > 0)
        assert np.all(sigma[~wet] == 0)
        # mesoscale-analysis magnitude: tenths of a degree, not degrees
        assert 0.01 < np.median(sigma[wet]) < 1.5
        # spatial structure, not a constant field
        assert sigma[wet].std() > 0.02 * sigma[wet].mean()
    # the uncertainty fields at the two depths differ in pattern
    corr = np.corrcoef(sst_sigma[wet], t30_sigma[wet])[0, 1]
    assert corr < 0.99
